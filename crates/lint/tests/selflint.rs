//! The linter eats its own dog food: the workspace must be clean under
//! the committed allowlist, with zero stale entries, and the JSON
//! report must be byte-identical at 1 and 8 lint threads — the same
//! checks `lint_gate` enforces in CI, kept in `cargo test` so a
//! violation fails fast during development.

use std::path::PathBuf;

use dbpal_lint::{allowlist, lint_workspace, report};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn committed_allowlist() -> Vec<allowlist::AllowEntry> {
    let text = std::fs::read_to_string(workspace_root().join("scripts/lint_allowlist.txt"))
        .expect("scripts/lint_allowlist.txt exists");
    allowlist::parse(&text).expect("allowlist parses")
}

#[test]
fn workspace_is_clean_under_committed_allowlist() {
    let entries = committed_allowlist();
    let run = lint_workspace(&workspace_root(), 8);
    assert!(run.files_scanned > 50, "suspiciously few files scanned");
    let applied = allowlist::apply(run.findings, &entries);
    assert!(
        applied.violations.is_empty(),
        "workspace has lint violations:\n{}",
        report::render_human(&applied, &entries)
    );
    assert!(
        applied.stale().is_empty(),
        "stale allowlist entries:\n{}",
        report::render_human(&applied, &entries)
    );
    // The allowlist is not a dumping ground: every entry silences at
    // least one real finding (checked above), and the documented debt
    // classes are present.
    assert!(!applied.allowed.is_empty());
}

#[test]
fn report_is_thread_count_invariant() {
    let entries = committed_allowlist();
    let root = workspace_root();
    let run1 = lint_workspace(&root, 1);
    let run8 = lint_workspace(&root, 8);
    let json1 = report::lints_json(
        run1.files_scanned,
        &allowlist::apply(run1.findings, &entries),
        &entries,
    )
    .pretty();
    let json8 = report::lints_json(
        run8.files_scanned,
        &allowlist::apply(run8.findings, &entries),
        &entries,
    )
    .pretty();
    assert_eq!(json1, json8, "lint report differs between 1 and 8 threads");
}
