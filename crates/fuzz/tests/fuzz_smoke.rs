//! Seeded fuzz smoke: a fixed budget of iterations must come back clean,
//! and the report must be byte-identical regardless of worker threads.

use dbpal_fuzz::{run_fuzz, run_iteration, FuzzConfig};

const SEED: u64 = 0xDBA1;
const ITERS: usize = 64;

#[test]
fn seeded_smoke_finds_nothing() {
    let report = run_fuzz(&FuzzConfig::new(SEED, ITERS, 2));
    let details: Vec<String> = report
        .findings
        .iter()
        .map(|f| format!("iter {} [{}]: {}", f.iteration, f.oracle, f.detail))
        .collect();
    assert!(
        report.findings.is_empty(),
        "fuzz smoke found violations:\n{}",
        details.join("\n")
    );
}

#[test]
fn report_is_thread_count_invariant() {
    let one = run_fuzz(&FuzzConfig::new(SEED, ITERS, 1));
    let three = run_fuzz(&FuzzConfig::new(SEED, ITERS, 3));
    assert_eq!(one.to_json(), three.to_json());
}

#[test]
fn report_records_into_shared_registry() {
    use dbpal_util::MetricsRegistry;
    let report = run_fuzz(&FuzzConfig::new(SEED, 16, 2));
    let reg = MetricsRegistry::new();
    report.record_metrics(&reg);
    assert_eq!(reg.counter("fuzz.iterations").get(), 16);
    assert_eq!(
        reg.counter("fuzz.findings").get(),
        report.findings.len() as u64
    );
    // The registry export is deterministic: recording the same report
    // into a fresh registry serializes identically.
    let reg2 = MetricsRegistry::new();
    report.record_metrics(&reg2);
    assert_eq!(
        reg.to_json_deterministic().pretty(),
        reg2.to_json_deterministic().pretty()
    );
}

#[test]
fn iterations_are_seed_reproducible() {
    for i in [0u64, 7, 33] {
        let a = run_iteration(SEED, i);
        let b = run_iteration(SEED, i);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.case.to_json(), y.case.to_json());
        }
    }
}

#[test]
fn config_from_env_defaults() {
    // Only assert on the compiled-in defaults; the env vars are not set
    // under `cargo test`.
    let cfg = FuzzConfig::from_env();
    assert_eq!(cfg.seed, dbpal_fuzz::driver::DEFAULT_SEED);
    assert_eq!(cfg.iters, dbpal_fuzz::driver::DEFAULT_ITERS);
    assert!(cfg.threads >= 1);
}
