use dbpal_fuzz::{run_fuzz, FuzzCase, FuzzConfig, SchemaSpec};
use dbpal_schema::{SqlType, Value};

#[test]
#[ignore]
fn explore() {
    let seed: u64 = std::env::var("SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xDBA1);
    let iters: usize = std::env::var("ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2000);
    let report = run_fuzz(&FuzzConfig::new(seed, iters, 8));
    println!(
        "== {} findings over {} iters (seed {seed:#x})",
        report.findings.len(),
        iters
    );
    for f in report.findings.iter().take(25) {
        println!("-- iter {} [{}]", f.iteration, f.oracle);
        println!("   sql: {}", f.sql);
        println!("   min: {}", f.minimized);
        println!("   why: {}", f.detail);
    }
}

fn users_tables() -> Vec<(String, Vec<(String, SqlType)>)> {
    vec![(
        "users".into(),
        vec![
            ("id".into(), SqlType::Integer),
            ("score".into(), SqlType::Integer),
            ("label".into(), SqlType::Text),
        ],
    )]
}

fn users_orders_tables() -> Vec<(String, Vec<(String, SqlType)>)> {
    let mut t = users_tables();
    t.push((
        "orders".into(),
        vec![
            ("id".into(), SqlType::Integer),
            ("users_id".into(), SqlType::Integer),
            ("qty".into(), SqlType::Integer),
            ("note".into(), SqlType::Text),
        ],
    ));
    t
}

fn users_rows(n: i64) -> (String, Vec<Vec<Value>>) {
    (
        "users".into(),
        (1..=n)
            .map(|i| vec![Value::Int(i), Value::Int(-i), Value::Text(format!("u{i}"))])
            .collect(),
    )
}

fn orders_rows(n: i64) -> (String, Vec<Vec<Value>>) {
    (
        "orders".into(),
        (1..=n)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Int(i),
                    Value::Int(10 + i),
                    Value::Text(format!("o{i}")),
                ]
            })
            .collect(),
    )
}

#[test]
#[ignore]
fn write_corpus() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/fuzz_corpus");
    std::fs::create_dir_all(dir).unwrap();
    let cases = vec![
        FuzzCase {
            name: "canonical-having-literal-left".into(),
            oracle: "canonical-pair".into(),
            schema: SchemaSpec {
                tables: users_tables(),
                foreign_keys: vec![],
            },
            rows: vec![users_rows(4)],
            sql: "SELECT score, MAX(label) FROM users GROUP BY score HAVING MAX(id) = -2".into(),
            sql_b: "SELECT MAX(label), score FROM users GROUP BY score HAVING -2 = MAX(id)".into(),
            note: "canonical_pred only anchored Scalar::Column, so a literal-vs-aggregate \
                   HAVING comparison was never flipped and the two spellings canonicalized \
                   differently."
                .into(),
        },
        FuzzCase {
            name: "canonical-star-from-order".into(),
            oracle: "canonical".into(),
            schema: SchemaSpec {
                tables: users_orders_tables(),
                foreign_keys: vec![(
                    "orders".into(),
                    "users_id".into(),
                    "users".into(),
                    "id".into(),
                )],
            },
            rows: vec![users_rows(2), orders_rows(2)],
            sql: "SELECT * FROM users, orders".into(),
            sql_b: String::new(),
            note: "canonicalize unconditionally sorted FROM tables; under SELECT * the \
                   expanded column order follows FROM order, so the canonical query \
                   returned a different result schema."
                .into(),
        },
        FuzzCase {
            name: "canonical-limit-from-order".into(),
            oracle: "canonical".into(),
            schema: SchemaSpec {
                tables: users_orders_tables(),
                foreign_keys: vec![(
                    "orders".into(),
                    "users_id".into(),
                    "users".into(),
                    "id".into(),
                )],
            },
            rows: vec![users_rows(3), orders_rows(2)],
            sql: "SELECT users.id FROM users, orders LIMIT 2".into(),
            sql_b: String::new(),
            note: "canonicalize sorted FROM tables under a LIMIT with no total order; the \
                   set of cross-product rows surviving the limit depends on FROM order, so \
                   the canonical query returned different rows."
                .into(),
        },
    ];
    for case in cases {
        case.replay().expect("regression case must replay green");
        let path = format!("{dir}/{}.json", case.name);
        std::fs::write(&path, case.to_json()).unwrap();
        println!("wrote {path}");
    }
}
