//! Replays every minimized case in `tests/fuzz_corpus/` as an ordinary
//! regression suite, plus named tests pinning the specific bugs the
//! fuzzer has found so far.

use dbpal_fuzz::FuzzCase;

fn corpus_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fuzz_corpus")
}

fn load(name: &str) -> FuzzCase {
    let path = corpus_dir().join(format!("{name}.json"));
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    FuzzCase::from_json(&text).unwrap_or_else(|e| panic!("parse {}: {e}", path.display()))
}

/// Every committed corpus case must replay green.
#[test]
fn whole_corpus_replays_green() {
    let mut paths: Vec<_> = std::fs::read_dir(corpus_dir())
        .expect("tests/fuzz_corpus exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "corpus must not be empty");
    for path in paths {
        let text = std::fs::read_to_string(&path).expect("readable case");
        let case =
            FuzzCase::from_json(&text).unwrap_or_else(|e| panic!("parse {}: {e}", path.display()));
        assert_eq!(
            format!("{}.json", case.name),
            path.file_name().unwrap().to_string_lossy(),
            "case name must match its file stem"
        );
        case.replay()
            .unwrap_or_else(|e| panic!("{} regressed: {e}", path.display()));
    }
}

/// Corpus files survive a parse→serialize roundtrip byte-for-byte, so
/// hand edits that drift from the canonical rendering are caught.
#[test]
fn corpus_files_are_canonical_json() {
    for entry in std::fs::read_dir(corpus_dir()).expect("tests/fuzz_corpus exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().is_none_or(|x| x != "json") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("readable case");
        let case = FuzzCase::from_json(&text).expect("parseable case");
        assert_eq!(
            text,
            case.to_json(),
            "{} is not in canonical JSON form",
            path.display()
        );
    }
}

/// The canonicalizer used to anchor only `Scalar::Column` when
/// normalizing comparisons, so `-2 = MAX(id)` in HAVING survived with
/// the literal on the left and the two spellings canonicalized
/// differently.
#[test]
fn having_literal_left_is_normalized() {
    load("canonical-having-literal-left").replay().unwrap();
}

/// The canonicalizer used to sort FROM tables unconditionally; under
/// `SELECT *` the expanded column order follows FROM order, so the
/// canonical query returned a different result schema.
#[test]
fn star_select_keeps_from_order() {
    load("canonical-star-from-order").replay().unwrap();
}

/// The canonicalizer used to sort FROM tables under a LIMIT with no
/// total order; which cross-product rows survive the limit depends on
/// FROM order, so the canonical query returned different rows.
#[test]
fn limited_query_keeps_from_order() {
    load("canonical-limit-from-order").replay().unwrap();
}
