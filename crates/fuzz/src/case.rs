//! JSON persistence and replay of minimized fuzz cases.
//!
//! A [`FuzzCase`] is fully self-contained: the schema, the table data,
//! the SQL text(s), and which oracle to run. Minimized cases live in
//! `tests/fuzz_corpus/*.json` at the workspace root and are replayed as
//! ordinary `cargo test` regressions by `crates/fuzz/tests/corpus_replay.rs`.
//!
//! Values are encoded as tagged strings (`"i:42"`, `"f:2.5"`, `"t:red"`,
//! `"b:true"`, `"null"`) rather than raw JSON numbers so that 64-bit
//! integers and float bit patterns survive the trip exactly.

use dbpal_engine::Database;
use dbpal_schema::{Schema, SchemaBuilder, SqlType, Value};
use dbpal_sql::parse_query;
use dbpal_util::Json;

use crate::mutate::FaultKind;
use crate::oracles;

/// A persisted, self-contained regression case.
#[derive(Debug, Clone)]
pub struct FuzzCase {
    /// Stable case name (also the corpus file stem).
    pub name: String,
    /// Which oracle to replay: `roundtrip`, `canonical`, `canonical-pair`,
    /// `analyzer-clean`, or a fault name from [`FaultKind`].
    pub oracle: String,
    /// Schema description.
    pub schema: SchemaSpec,
    /// Rows per table, in schema table order.
    pub rows: Vec<(String, Vec<Vec<Value>>)>,
    /// The query under test, as SQL text.
    pub sql: String,
    /// Second query for pair oracles (empty when unused).
    pub sql_b: String,
    /// Why this case exists (bug reference, what it used to break).
    pub note: String,
}

/// Plain-data schema description, independent of builder internals.
#[derive(Debug, Clone, Default)]
pub struct SchemaSpec {
    /// Tables: name plus (column name, type) pairs; first column is the
    /// primary key by corpus convention.
    pub tables: Vec<(String, Vec<(String, SqlType)>)>,
    /// Foreign keys: (child table, child column, parent table, parent column).
    pub foreign_keys: Vec<(String, String, String, String)>,
}

impl SchemaSpec {
    /// Capture a spec from a built schema.
    pub fn from_schema(schema: &Schema) -> Self {
        let tables = schema
            .tables()
            .iter()
            .map(|t| {
                (
                    t.name().to_string(),
                    t.columns()
                        .iter()
                        .map(|c| (c.name().to_string(), c.sql_type()))
                        .collect(),
                )
            })
            .collect();
        let foreign_keys = schema
            .foreign_keys()
            .iter()
            .map(|fk| {
                (
                    schema.table(fk.from.table).name().to_string(),
                    schema.column(fk.from).name().to_string(),
                    schema.table(fk.to.table).name().to_string(),
                    schema.column(fk.to).name().to_string(),
                )
            })
            .collect();
        SchemaSpec {
            tables,
            foreign_keys,
        }
    }

    /// Rebuild a real schema from the spec.
    pub fn build(&self) -> Schema {
        let mut b = SchemaBuilder::new("fuzz_case");
        for (name, cols) in &self.tables {
            let cols = cols.clone();
            b = b.table(name, |mut t| {
                for (cn, ct) in &cols {
                    t = t.column(cn, *ct);
                }
                if let Some((first, _)) = cols.first() {
                    t = t.primary_key(first);
                }
                t
            });
        }
        for (ct, cc, pt, pc) in &self.foreign_keys {
            b = b.foreign_key(ct, cc, pt, pc);
        }
        b.build().expect("corpus schema spec is valid")
    }
}

fn type_name(t: SqlType) -> &'static str {
    match t {
        SqlType::Integer => "integer",
        SqlType::Float => "float",
        SqlType::Text => "text",
        SqlType::Boolean => "boolean",
    }
}

fn type_from_name(s: &str) -> Result<SqlType, String> {
    match s {
        "integer" => Ok(SqlType::Integer),
        "float" => Ok(SqlType::Float),
        "text" => Ok(SqlType::Text),
        "boolean" => Ok(SqlType::Boolean),
        other => Err(format!("unknown sql type `{other}`")),
    }
}

/// Encode a value as a tagged string. Floats use Rust's shortest
/// round-trippable `{:?}` rendering, so parsing recovers the exact bits.
fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Null => Json::str("null"),
        Value::Int(i) => Json::str(format!("i:{i}")),
        Value::Float(f) => Json::str(format!("f:{f:?}")),
        Value::Text(s) => Json::str(format!("t:{s}")),
        Value::Bool(b) => Json::str(format!("b:{b}")),
    }
}

fn value_from_json(j: &Json) -> Result<Value, String> {
    let s = j.as_str().ok_or("value must be a tagged string")?;
    if s == "null" {
        return Ok(Value::Null);
    }
    if let Some(rest) = s.strip_prefix("i:") {
        return rest
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|e| format!("bad int `{rest}`: {e}"));
    }
    if let Some(rest) = s.strip_prefix("f:") {
        return rest
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|e| format!("bad float `{rest}`: {e}"));
    }
    if let Some(rest) = s.strip_prefix("t:") {
        return Ok(Value::Text(rest.to_string()));
    }
    if let Some(rest) = s.strip_prefix("b:") {
        return rest
            .parse::<bool>()
            .map(Value::Bool)
            .map_err(|e| format!("bad bool `{rest}`: {e}"));
    }
    Err(format!("unrecognized value encoding `{s}`"))
}

impl FuzzCase {
    /// Serialize to pretty JSON (stable key order, deterministic bytes).
    pub fn to_json(&self) -> String {
        let tables = Json::Arr(
            self.schema
                .tables
                .iter()
                .map(|(name, cols)| {
                    Json::Obj(vec![
                        ("name".into(), Json::str(name.clone())),
                        (
                            "columns".into(),
                            Json::Arr(
                                cols.iter()
                                    .map(|(cn, ct)| {
                                        Json::Arr(vec![
                                            Json::str(cn.clone()),
                                            Json::str(type_name(*ct)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        );
        let fks = Json::Arr(
            self.schema
                .foreign_keys
                .iter()
                .map(|(a, b, c, d)| {
                    Json::Arr(vec![
                        Json::str(a.clone()),
                        Json::str(b.clone()),
                        Json::str(c.clone()),
                        Json::str(d.clone()),
                    ])
                })
                .collect(),
        );
        let rows = Json::Obj(
            self.rows
                .iter()
                .map(|(table, rows)| {
                    (
                        table.clone(),
                        Json::Arr(
                            rows.iter()
                                .map(|r| Json::Arr(r.iter().map(value_to_json).collect()))
                                .collect(),
                        ),
                    )
                })
                .collect(),
        );
        Json::Obj(vec![
            ("name".into(), Json::str(self.name.clone())),
            ("oracle".into(), Json::str(self.oracle.clone())),
            ("tables".into(), tables),
            ("foreign_keys".into(), fks),
            ("rows".into(), rows),
            ("sql".into(), Json::str(self.sql.clone())),
            ("sql_b".into(), Json::str(self.sql_b.clone())),
            ("note".into(), Json::str(self.note.clone())),
        ])
        .pretty()
    }

    /// Parse a case back from JSON text.
    pub fn from_json(text: &str) -> Result<FuzzCase, String> {
        let j = Json::parse(text).map_err(|e| format!("bad case JSON: {e}"))?;
        let get_str = |key: &str| -> Result<String, String> {
            j.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field `{key}`"))
        };
        let mut tables = Vec::new();
        for t in j
            .get("tables")
            .and_then(Json::as_arr)
            .ok_or("missing `tables`")?
        {
            let name = t
                .get("name")
                .and_then(Json::as_str)
                .ok_or("table missing name")?
                .to_string();
            let mut cols = Vec::new();
            for c in t
                .get("columns")
                .and_then(Json::as_arr)
                .ok_or("table missing columns")?
            {
                let pair = c.as_arr().ok_or("column must be [name, type]")?;
                let cn = pair
                    .first()
                    .and_then(Json::as_str)
                    .ok_or("column name missing")?;
                let ct = pair
                    .get(1)
                    .and_then(Json::as_str)
                    .ok_or("column type missing")?;
                cols.push((cn.to_string(), type_from_name(ct)?));
            }
            tables.push((name, cols));
        }
        let mut foreign_keys = Vec::new();
        for fk in j
            .get("foreign_keys")
            .and_then(Json::as_arr)
            .ok_or("missing `foreign_keys`")?
        {
            let parts = fk.as_arr().ok_or("fk must be a 4-array")?;
            let mut it = parts.iter().filter_map(Json::as_str);
            match (it.next(), it.next(), it.next(), it.next()) {
                (Some(a), Some(b), Some(c), Some(d)) => {
                    foreign_keys.push((a.into(), b.into(), c.into(), d.into()));
                }
                _ => return Err("fk must be a 4-array of strings".into()),
            }
        }
        let mut rows = Vec::new();
        for (table, rj) in j
            .get("rows")
            .and_then(Json::as_obj)
            .ok_or("missing `rows`")?
        {
            let mut trows = Vec::new();
            for r in rj.as_arr().ok_or("rows must be arrays")? {
                let mut row = Vec::new();
                for v in r.as_arr().ok_or("row must be an array")? {
                    row.push(value_from_json(v)?);
                }
                trows.push(row);
            }
            rows.push((table.clone(), trows));
        }
        Ok(FuzzCase {
            name: get_str("name")?,
            oracle: get_str("oracle")?,
            schema: SchemaSpec {
                tables,
                foreign_keys,
            },
            rows,
            sql: get_str("sql")?,
            sql_b: get_str("sql_b")?,
            note: get_str("note")?,
        })
    }

    /// Build the case's database.
    pub fn database(&self) -> Database {
        let schema = self.schema.build();
        let mut db = Database::new(schema);
        for (table, rows) in &self.rows {
            for row in rows {
                db.insert(table, row.clone())
                    .expect("corpus row matches its schema");
            }
        }
        db
    }

    /// Replay the case's oracle; `Ok(())` means the regression stays fixed.
    pub fn replay(&self) -> Result<(), String> {
        let db = self.database();
        let schema = db.schema().clone();
        let q = parse_query(&self.sql)
            .map_err(|e| format!("case `{}`: sql does not parse: {e}", self.name))?;
        match self.oracle.as_str() {
            "roundtrip" => oracles::check_roundtrip(&q),
            "canonical" => oracles::check_canonical_preserves(&db, &q),
            "canonical-pair" => {
                let b = parse_query(&self.sql_b)
                    .map_err(|e| format!("case `{}`: sql_b does not parse: {e}", self.name))?;
                oracles::check_canonical_pair(&db, &q, &b, true)
            }
            "analyzer-clean" => oracles::check_analyzer_clean(&schema, &q),
            other => {
                let fault = [
                    FaultKind::BadColumn,
                    FaultKind::BadTable,
                    FaultKind::TypeMismatch,
                    FaultKind::BrokenJoin,
                ]
                .into_iter()
                .find(|f| f.name() == other)
                .ok_or_else(|| format!("case `{}`: unknown oracle `{other}`", self.name))?;
                oracles::check_mutation_flagged(&schema, &q, fault)
            }
        }
    }
}
