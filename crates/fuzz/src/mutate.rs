//! Fault seeding and equivalence-preserving shuffles.
//!
//! [`seed_faults`] injects deliberate semantic breakage into a
//! well-formed query; the analyzer-coherence oracle demands a diagnostic
//! with one of the expected codes for each. [`shuffle_equivalent`]
//! reorders commutative structure (AND/OR operands, IN lists, FROM
//! tables, select lists, comparison sides) without changing meaning; the
//! canonicalizer oracle demands the shuffle's canonical form — and its
//! result multiset — stay identical to the original's.

use dbpal_schema::{SqlType, Value};
use dbpal_sql::{FromClause, Pred, Query, Scalar, SelectItem};
use dbpal_util::{Rng, SliceRandom};

/// The kinds of fault the mutator can seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Rename a referenced column to one the schema does not have.
    BadColumn,
    /// Rename a FROM table to one the schema does not have.
    BadTable,
    /// Replace a comparison literal with an incompatible type.
    TypeMismatch,
    /// Remove the equi-join predicate from a two-table query.
    BrokenJoin,
}

impl FaultKind {
    /// Short stable name used in corpus cases and findings.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::BadColumn => "bad-column",
            FaultKind::BadTable => "bad-table",
            FaultKind::TypeMismatch => "type-mismatch",
            FaultKind::BrokenJoin => "broken-join",
        }
    }

    /// Diagnostic codes (by id) that legitimately flag this fault.
    pub fn expected_codes(self) -> &'static [&'static str] {
        match self {
            // A bad name can surface as unresolved or (if qualified with a
            // now-unknown table) as table-not-in-scope.
            FaultKind::BadColumn => &["E0101", "E0104"],
            FaultKind::BadTable => &["E0102", "E0104", "E0101"],
            FaultKind::TypeMismatch => &["E0201"],
            FaultKind::BrokenJoin => &["W0301", "E0301", "E0302"],
        }
    }
}

/// First column reference in select order, if any.
fn first_select_col(q: &Query) -> Option<usize> {
    q.select
        .iter()
        .position(|s| matches!(s, SelectItem::Column(_)))
}

/// Seed every applicable fault into `q`, returning the mutated queries
/// with the kind that was injected. Deterministic: no RNG involved.
pub fn seed_faults(q: &Query) -> Vec<(Query, FaultKind)> {
    let mut out = Vec::new();

    // Bad column: rename the first selected column, or the first group-by
    // key when the select is all stars/aggregates.
    if let Some(i) = first_select_col(q) {
        let mut m = q.clone();
        if let SelectItem::Column(c) = &mut m.select[i] {
            c.column = "zzz_missing".to_string();
        }
        out.push((m, FaultKind::BadColumn));
    } else if !q.group_by.is_empty() {
        let mut m = q.clone();
        m.group_by[0].column = "zzz_missing".to_string();
        out.push((m, FaultKind::BadColumn));
    }

    // Bad table: rename the first FROM table.
    if let FromClause::Tables(ts) = &q.from {
        if !ts.is_empty() {
            let mut m = q.clone();
            if let FromClause::Tables(ts) = &mut m.from {
                ts[0] = "zzz_table".to_string();
            }
            out.push((m, FaultKind::BadTable));
        }
    }

    // Type mismatch: swap the first typed comparison literal for a value
    // of a guaranteed-incompatible type.
    if let Some(p) = &q.where_pred {
        let mut mutated = p.clone();
        if poison_first_literal(&mut mutated) {
            let mut m = q.clone();
            m.where_pred = Some(mutated);
            out.push((m, FaultKind::TypeMismatch));
        }
    }

    // Broken join: drop the column=column equi-join from a two-table query.
    if q.from.tables().len() >= 2 {
        if let Some(p) = &q.where_pred {
            if let Some(stripped) = strip_equijoin(p) {
                let mut m = q.clone();
                m.where_pred = stripped;
                out.push((m, FaultKind::BrokenJoin));
            }
        }
    }

    out
}

/// Replace the first `col <op> literal` literal with an incompatible
/// type. Returns false when the predicate has no such comparison.
fn poison_first_literal(p: &mut Pred) -> bool {
    match p {
        Pred::And(ps) | Pred::Or(ps) => ps.iter_mut().any(poison_first_literal),
        Pred::Not(p) => poison_first_literal(p),
        Pred::Compare { left, right, .. } => {
            let lit_side = match (&*left, &*right) {
                (Scalar::Column(_), Scalar::Literal(v)) => v.sql_type().map(|t| (false, t)),
                (Scalar::Literal(v), Scalar::Column(_)) => v.sql_type().map(|t| (true, t)),
                _ => None,
            };
            match lit_side {
                Some((poison_left, ty)) => {
                    let poison = if ty == SqlType::Text {
                        Scalar::Literal(Value::Int(1))
                    } else {
                        Scalar::Literal(Value::Text("oops".into()))
                    };
                    if poison_left {
                        *left = poison;
                    } else {
                        *right = poison;
                    }
                    true
                }
                None => false,
            }
        }
        _ => false,
    }
}

/// Remove the first column=column comparison from the top-level
/// conjunction. `Some(None)` means the whole WHERE clause was the join.
fn strip_equijoin(p: &Pred) -> Option<Option<Pred>> {
    let is_equijoin = |p: &Pred| {
        matches!(
            p,
            Pred::Compare {
                left: Scalar::Column(_),
                op: dbpal_sql::CmpOp::Eq,
                right: Scalar::Column(_),
            }
        )
    };
    match p {
        Pred::And(ps) => {
            let idx = ps.iter().position(is_equijoin)?;
            let rest: Vec<Pred> = ps
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != idx)
                .map(|(_, p)| p.clone())
                .collect();
            Some(Some(Pred::and(rest)))
        }
        p if is_equijoin(p) => Some(None),
        _ => None,
    }
}

/// Produce a semantically identical query by shuffling commutative
/// structure. The canonicalizer must map the result to the same
/// [`dbpal_sql::CanonicalForm`] as the input.
pub fn shuffle_equivalent(rng: &mut Rng, q: &Query) -> Query {
    let mut m = q.clone();
    if m.select.len() > 1 {
        m.select.shuffle(rng);
    }
    // FROM order is semantic under `SELECT *` (it fixes the expanded
    // column order) and under LIMIT (it picks which cross-product rows
    // survive), so only shuffle it when neither applies.
    let from_order_semantic =
        m.select.iter().any(|s| matches!(s, SelectItem::Star)) || m.limit.is_some();
    if let FromClause::Tables(ts) = &mut m.from {
        if ts.len() > 1 && !from_order_semantic {
            ts.shuffle(rng);
        }
    }
    if m.group_by.len() > 1 {
        m.group_by.shuffle(rng);
    }
    if let Some(p) = &mut m.where_pred {
        shuffle_pred(rng, p);
    }
    if let Some(p) = &mut m.having {
        shuffle_pred(rng, p);
    }
    m
}

fn shuffle_pred(rng: &mut Rng, p: &mut Pred) {
    match p {
        Pred::And(ps) | Pred::Or(ps) => {
            ps.shuffle(rng);
            for p in ps {
                shuffle_pred(rng, p);
            }
        }
        Pred::Not(p) => shuffle_pred(rng, p),
        Pred::Compare { left, op, right } => {
            shuffle_scalar(rng, left);
            shuffle_scalar(rng, right);
            if rng.gen_bool(0.4) {
                std::mem::swap(left, right);
                *op = op.flipped();
            }
        }
        Pred::InList { values, .. } => values.shuffle(rng),
        Pred::InSubquery { query, .. } | Pred::Exists { query, .. } => {
            let shuffled = shuffle_equivalent(rng, query);
            **query = shuffled;
        }
        Pred::Between { low, high, .. } => {
            shuffle_scalar(rng, low);
            shuffle_scalar(rng, high);
        }
        Pred::Like { .. } | Pred::IsNull { .. } => {}
    }
}

fn shuffle_scalar(rng: &mut Rng, s: &mut Scalar) {
    if let Scalar::Subquery(q) = s {
        let shuffled = shuffle_equivalent(rng, q);
        **q = shuffled;
    }
}
