#![warn(missing_docs)]
//! Deterministic fuzzing and differential testing for the DBPal SQL stack.
//!
//! DBPal's correctness story rests on three contracts that ordinary
//! example-based tests cannot stress adversarially:
//!
//! 1. **Roundtrip** — the printer and parser agree: for every query `q`,
//!    `parse_query(&q.to_string()) == Ok(q)`. Exact-match scoring
//!    (paper §6.2.1) silently breaks if this drifts.
//! 2. **Canonicalizer soundness** — canonicalization never changes a
//!    query's results, and two queries with equal [`CanonicalForm`]s
//!    return identical result multisets on any database. The
//!    semantic-equivalence scorer depends on both directions.
//! 3. **Analyzer coherence** — every well-formed query the generator can
//!    produce is clean under `AnalyzerPolicy::Reject`, while fault-seeded
//!    mutations (bad column, bad table, type mismatch, broken join path)
//!    always trip a diagnostic.
//!
//! This crate generates arbitrary valid schemas, populated in-memory
//! databases, and well-typed SQL ASTs — driven entirely by the in-repo
//! [`dbpal_util::Rng`], so every run is reproducible from a seed — and
//! checks the three oracles differentially. Failing inputs are passed
//! through a minimizing shrinker ([`shrink`]) and serialized as JSON
//! ([`case`]) into `tests/fuzz_corpus/` at the workspace root, where a
//! replay harness runs them as ordinary `cargo test` regressions.
//!
//! The driver fans iterations out with `par_map_indexed`, seeding each
//! iteration with `Rng::for_stream(seed, i)`: findings are byte-identical
//! at any worker-thread count.
//!
//! [`CanonicalForm`]: dbpal_sql::CanonicalForm

pub mod case;
pub mod driver;
pub mod gen;
pub mod mutate;
pub mod oracles;
pub mod shrink;

pub use case::{FuzzCase, SchemaSpec};
pub use driver::{run_fuzz, run_iteration, Finding, FuzzConfig, FuzzReport};
pub use gen::{gen_database, gen_query, gen_rows, gen_schema};
pub use mutate::{seed_faults, shuffle_equivalent, FaultKind};
pub use oracles::{
    check_analyzer_clean, check_canonical_pair, check_canonical_preserves, check_mutation_flagged,
    check_roundtrip,
};
pub use shrink::shrink_query;
