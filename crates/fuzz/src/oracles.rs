//! The three differential oracles.
//!
//! Each check returns `Ok(())` or a human-readable violation description
//! (the driver attaches query text and iteration metadata). Checks never
//! panic on well-formed input; a panic in the stack under test is itself
//! a finding, surfaced loudly with the failing seed by the driver's
//! caller.

use dbpal_analyze::Analyzer;
use dbpal_engine::{Database, ResultSet};
use dbpal_schema::Schema;
use dbpal_sql::{parse_query, CanonicalForm, Query};

use crate::mutate::FaultKind;

/// Oracle 1 — roundtrip: printing and reparsing must reproduce the AST
/// exactly. (The generator never emits nested same-connective AND/OR, so
/// the usual "up to `Pred::and` flattening" caveat does not apply.)
pub fn check_roundtrip(q: &Query) -> Result<(), String> {
    let printed = q.to_string();
    match parse_query(&printed) {
        Err(e) => Err(format!("printed SQL fails to reparse ({e}): `{printed}`")),
        Ok(reparsed) if &reparsed != q => Err(format!(
            "reparse produced a different AST for `{printed}`: {reparsed:?} vs {q:?}"
        )),
        Ok(_) => Ok(()),
    }
}

/// Oracle 2a — canonicalization must not change a query's results: the
/// canonical query executes successfully and returns a result multiset
/// semantically equal (modulo column order) to the original's.
pub fn check_canonical_preserves(db: &Database, q: &Query) -> Result<(), String> {
    let base = execute(db, q)?;
    let canon = CanonicalForm::of(q);
    let canon_res = db
        .execute(canon.query())
        .map_err(|e| format!("canonical form fails to execute ({e}): `{}`", canon.query()))?;
    if !base.semantically_equal(&canon_res) {
        return Err(format!(
            "canonicalization changed results: `{q}` vs canonical `{}` ({} vs {} rows)",
            canon.query(),
            base.row_count(),
            canon_res.row_count()
        ));
    }
    Ok(())
}

/// Oracle 2b — two queries with equal canonical forms must return
/// semantically equal results. `expect_equal_forms` additionally demands
/// the forms match (used for shuffle-derived pairs, where inequality is
/// itself a canonicalizer bug).
pub fn check_canonical_pair(
    db: &Database,
    a: &Query,
    b: &Query,
    expect_equal_forms: bool,
) -> Result<(), String> {
    let fa = CanonicalForm::of(a);
    let fb = CanonicalForm::of(b);
    if fa != fb {
        if expect_equal_forms {
            return Err(format!(
                "equivalent shuffle canonicalizes differently: `{a}` -> `{}` but `{b}` -> `{}`",
                fa.rendered(),
                fb.rendered()
            ));
        }
        return Ok(());
    }
    let ra = execute(db, a)?;
    let rb = execute(db, b)?;
    if !ra.semantically_equal(&rb) {
        return Err(format!(
            "same canonical form, different results: `{a}` ({} rows) vs `{b}` ({} rows)",
            ra.row_count(),
            rb.row_count()
        ));
    }
    Ok(())
}

/// Oracle 3a — generator-produced queries analyze completely clean
/// (no errors *and* no warnings) against their schema.
pub fn check_analyzer_clean(schema: &Schema, q: &Query) -> Result<(), String> {
    let diags = Analyzer::new(schema).analyze(q);
    if diags.is_empty() {
        Ok(())
    } else {
        let codes: Vec<String> = diags
            .iter()
            .map(|d| format!("{} {}", d.code.id(), d.message))
            .collect();
        Err(format!(
            "well-formed query drew diagnostics [{}]: `{q}`",
            codes.join("; ")
        ))
    }
}

/// Oracle 3b — a fault-seeded mutation must trip at least one diagnostic
/// with a code the fault kind expects.
pub fn check_mutation_flagged(
    schema: &Schema,
    mutated: &Query,
    fault: FaultKind,
) -> Result<(), String> {
    let diags = Analyzer::new(schema).analyze(mutated);
    let expected = fault.expected_codes();
    if diags.iter().any(|d| expected.contains(&d.code.id())) {
        Ok(())
    } else {
        let got: Vec<&str> = diags.iter().map(|d| d.code.id()).collect();
        Err(format!(
            "{} mutation not flagged (expected one of {expected:?}, got {got:?}): `{mutated}`",
            fault.name()
        ))
    }
}

/// Execute, mapping engine errors to violations: the generator's
/// well-formedness invariant says every generated query runs.
fn execute(db: &Database, q: &Query) -> Result<ResultSet, String> {
    db.execute(q)
        .map_err(|e| format!("engine rejected well-formed query ({e}): `{q}`"))
}
