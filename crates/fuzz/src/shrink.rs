//! Greedy minimizing shrinker for failing queries.
//!
//! Strategy: repeatedly generate simplification candidates in a fixed
//! deterministic order — drop whole clauses first (LIMIT, ORDER BY,
//! HAVING, DISTINCT, WHERE), then structural reductions (replace a
//! connective by one operand, unwrap NOT, drop select items, IN-list
//! values, FROM tables, join predicates), then literal shrinking (toward
//! `0` / `0.0` / `""`) — and greedily accept the first candidate that
//! still fails the oracle. Fixpoint iteration with a bounded attempt
//! budget keeps worst-case shrinking cheap.

use dbpal_schema::Value;
use dbpal_sql::{FromClause, Pred, Query, Scalar};

/// Shrink `q` while `fails` keeps returning true, returning the smallest
/// failing query found. `fails(&q)` is assumed true on entry.
pub fn shrink_query(q: &Query, mut fails: impl FnMut(&Query) -> bool) -> Query {
    let mut current = q.clone();
    let mut budget = 500usize;
    'outer: loop {
        for cand in candidates(&current) {
            if budget == 0 {
                break 'outer;
            }
            budget -= 1;
            if cand != current && fails(&cand) {
                current = cand;
                continue 'outer;
            }
        }
        break;
    }
    current
}

/// All one-step simplifications of `q`, most aggressive first.
fn candidates(q: &Query) -> Vec<Query> {
    let mut out = Vec::new();

    if q.limit.is_some() {
        let mut c = q.clone();
        c.limit = None;
        out.push(c);
    }
    if !q.order_by.is_empty() {
        let mut c = q.clone();
        c.order_by.clear();
        out.push(c);
    }
    if q.having.is_some() {
        let mut c = q.clone();
        c.having = None;
        out.push(c);
    }
    if q.distinct {
        let mut c = q.clone();
        c.distinct = false;
        out.push(c);
    }
    if q.where_pred.is_some() {
        let mut c = q.clone();
        c.where_pred = None;
        out.push(c);
    }

    // Replace the WHERE/HAVING predicate by each structural reduction.
    if let Some(p) = &q.where_pred {
        for r in pred_reductions(p) {
            let mut c = q.clone();
            c.where_pred = Some(r);
            out.push(c);
        }
    }
    if let Some(p) = &q.having {
        for r in pred_reductions(p) {
            let mut c = q.clone();
            c.having = Some(r);
            out.push(c);
        }
    }

    // Drop select items (keep at least one).
    if q.select.len() > 1 {
        for i in 0..q.select.len() {
            let mut c = q.clone();
            c.select.remove(i);
            out.push(c);
        }
    }

    // Drop FROM tables (keep at least one).
    if let FromClause::Tables(ts) = &q.from {
        if ts.len() > 1 {
            for i in 0..ts.len() {
                let mut c = q.clone();
                if let FromClause::Tables(ts) = &mut c.from {
                    ts.remove(i);
                }
                out.push(c);
            }
        }
    }

    // Shrink one literal at a time toward a zero value.
    let n_lits = count_literals(q);
    for i in 0..n_lits {
        if let Some(c) = shrink_literal_at(q, i) {
            out.push(c);
        }
    }

    out
}

/// Structural reductions of a predicate: replace connectives by single
/// operands, unwrap NOT, shorten IN lists, and recurse one level.
fn pred_reductions(p: &Pred) -> Vec<Pred> {
    let mut out = Vec::new();
    match p {
        Pred::And(ps) | Pred::Or(ps) => {
            for op in ps {
                out.push(op.clone());
            }
            if ps.len() > 2 {
                for i in 0..ps.len() {
                    let rest: Vec<Pred> = ps
                        .iter()
                        .enumerate()
                        .filter(|(j, _)| *j != i)
                        .map(|(_, p)| p.clone())
                        .collect();
                    out.push(match p {
                        Pred::And(_) => Pred::And(rest),
                        _ => Pred::Or(rest),
                    });
                }
            }
            // Recurse: reduce one operand in place.
            for (i, op) in ps.iter().enumerate() {
                for r in pred_reductions(op) {
                    let mut ops: Vec<Pred> = ps.clone();
                    ops[i] = r;
                    out.push(match p {
                        Pred::And(_) => Pred::And(ops),
                        _ => Pred::Or(ops),
                    });
                }
            }
        }
        Pred::Not(inner) => {
            out.push((**inner).clone());
            for r in pred_reductions(inner) {
                out.push(Pred::Not(Box::new(r)));
            }
        }
        Pred::InList {
            col,
            values,
            negated,
        } if values.len() > 1 => {
            for i in 0..values.len() {
                let mut vs = values.clone();
                vs.remove(i);
                out.push(Pred::InList {
                    col: col.clone(),
                    values: vs,
                    negated: *negated,
                });
            }
        }
        _ => {}
    }
    out
}

/// Walk every literal in the query in deterministic order, applying `f`
/// to literal number `target`; returns whether the target was reached.
fn visit_literals(q: &mut Query, counter: &mut usize, target: usize, changed: &mut bool) {
    fn scalar(s: &mut Scalar, counter: &mut usize, target: usize, changed: &mut bool) {
        match s {
            Scalar::Literal(v) => {
                if *counter == target {
                    if let Some(smaller) = shrink_value(v) {
                        *v = smaller;
                        *changed = true;
                    }
                }
                *counter += 1;
            }
            Scalar::Subquery(q) => visit_literals(q, counter, target, changed),
            _ => {}
        }
    }
    fn pred(p: &mut Pred, counter: &mut usize, target: usize, changed: &mut bool) {
        match p {
            Pred::And(ps) | Pred::Or(ps) => {
                for p in ps {
                    pred(p, counter, target, changed);
                }
            }
            Pred::Not(p) => pred(p, counter, target, changed),
            Pred::Compare { left, right, .. } => {
                scalar(left, counter, target, changed);
                scalar(right, counter, target, changed);
            }
            Pred::Between { low, high, .. } => {
                scalar(low, counter, target, changed);
                scalar(high, counter, target, changed);
            }
            Pred::InList { values, .. } => {
                for v in values {
                    scalar(v, counter, target, changed);
                }
            }
            Pred::InSubquery { query, .. } | Pred::Exists { query, .. } => {
                visit_literals(query, counter, target, changed);
            }
            Pred::Like { pattern, .. } => scalar(pattern, counter, target, changed),
            Pred::IsNull { .. } => {}
        }
    }
    if let Some(p) = &mut q.where_pred {
        pred(p, counter, target, changed);
    }
    if let Some(p) = &mut q.having {
        pred(p, counter, target, changed);
    }
}

fn count_literals(q: &Query) -> usize {
    let mut c = q.clone();
    let mut counter = 0usize;
    let mut changed = false;
    // target = usize::MAX never matches, so this only counts.
    visit_literals(&mut c, &mut counter, usize::MAX, &mut changed);
    counter
}

fn shrink_literal_at(q: &Query, target: usize) -> Option<Query> {
    let mut c = q.clone();
    let mut counter = 0usize;
    let mut changed = false;
    visit_literals(&mut c, &mut counter, target, &mut changed);
    changed.then_some(c)
}

/// One shrinking step for a literal value; `None` when already minimal.
fn shrink_value(v: &Value) -> Option<Value> {
    match v {
        Value::Int(0) | Value::Null | Value::Bool(false) => None,
        // saturating_abs: i64::MIN is a legal literal and must not panic.
        Value::Int(n) => Some(if n.saturating_abs() > 16 {
            Value::Int(n / 2)
        } else {
            Value::Int(0)
        }),
        Value::Float(f) if *f == 0.0 => None,
        Value::Float(f) => Some(if f.abs() > 16.0 {
            Value::Float(f / 2.0)
        } else {
            Value::Float(0.0)
        }),
        Value::Text(s) if s.is_empty() => None,
        Value::Text(_) => Some(Value::Text(String::new())),
        Value::Bool(true) => Some(Value::Bool(false)),
    }
}
