//! Schema-aware random generation of schemas, databases, and queries.
//!
//! The generator's contract is the *well-formedness invariant*: every
//! query it produces must (a) print to SQL the parser accepts, (b)
//! execute without error on any database over its schema, and (c)
//! analyze completely clean (zero diagnostics, warnings included) under
//! the schema it was generated for. The oracles in [`crate::oracles`]
//! assume this invariant; anything it misses is either a generator bug
//! or a real stack bug, and the shrinker decides which.

use dbpal_engine::Database;
use dbpal_schema::{Schema, SchemaBuilder, SqlType, Value};
use dbpal_sql::{
    AggArg, AggFunc, CmpOp, ColumnRef, FromClause, OrderDir, OrderKey, Pred, Query, Scalar,
    SelectItem,
};
use dbpal_util::{Rng, SliceRandom};

/// Fixed table-name pool; table `i` of a generated schema is `TABLES[i]`.
const TABLES: [&str; 3] = ["users", "orders", "events"];

/// Optional extra columns: name and type, drawn per table.
const EXTRAS: [(&str, SqlType); 4] = [
    ("qty", SqlType::Integer),
    ("price", SqlType::Float),
    ("note", SqlType::Text),
    ("active", SqlType::Boolean),
];

/// Text-value pool for both data and literals; exercises quoting (`it's`),
/// LIKE metacharacters stored as data (`100%`), and the empty string.
const TEXTS: [&str; 6] = ["red", "blue", "green", "it's", "100%", ""];

/// Generate a random valid schema: 1–3 tables, each with an `id` integer
/// primary key, a numeric `score`, a text `label`, up to three extras,
/// and (for non-first tables) an integer foreign key into an earlier
/// table, so join queries always have a real FK path.
pub fn gen_schema(rng: &mut Rng) -> Schema {
    let n_tables = rng.gen_range(1..=TABLES.len());
    let mut builder = SchemaBuilder::new("fuzz");
    let mut fks: Vec<(String, String, String)> = Vec::new();
    for i in 0..n_tables {
        let name = TABLES[i];
        let score_type = if rng.gen_bool(0.5) {
            SqlType::Float
        } else {
            SqlType::Integer
        };
        let n_extras = rng.gen_range(0..=EXTRAS.len() - 1);
        let extras: Vec<(&str, SqlType)> = EXTRAS
            .choose_multiple(rng, n_extras)
            .map(|&(n, t)| (n, t))
            .collect();
        let parent = if i > 0 {
            Some(TABLES[rng.gen_range(0..i)])
        } else {
            None
        };
        builder = builder.table(name, |mut t| {
            t = t
                .column("id", SqlType::Integer)
                .column("score", score_type)
                .column("label", SqlType::Text);
            for (n, ty) in &extras {
                t = t.column(*n, *ty);
            }
            if let Some(p) = parent {
                t = t.column(format!("{p}_id"), SqlType::Integer);
            }
            t.primary_key("id")
        });
        if let Some(p) = parent {
            fks.push((name.to_string(), format!("{p}_id"), p.to_string()));
        }
    }
    for (child, col, parent) in fks {
        builder = builder.foreign_key(child, col, parent, "id");
    }
    builder.build().expect("generated schema is always valid")
}

/// Populate a database over `schema` with 0–10 rows per table.
///
/// Non-key cells are NULL with ~10% probability; foreign-key cells point
/// at existing parent ids most of the time but may dangle or be NULL, so
/// joins see both matching and non-matching rows. Empty tables are a
/// deliberate part of the distribution.
pub fn gen_database(rng: &mut Rng, schema: &Schema) -> Database {
    let mut db = Database::new(schema.clone());
    for (table, rows) in gen_rows(rng, schema) {
        for row in rows {
            db.insert(&table, row).expect("generated row is valid");
        }
    }
    db
}

/// The raw rows behind [`gen_database`], per table in schema order.
///
/// Exposed separately so the driver can persist the exact data of a
/// failing iteration into a corpus case.
pub fn gen_rows(rng: &mut Rng, schema: &Schema) -> Vec<(String, Vec<Vec<Value>>)> {
    let mut out: Vec<(String, Vec<Vec<Value>>)> = Vec::with_capacity(schema.table_count());
    let mut row_counts: Vec<i64> = Vec::with_capacity(schema.table_count());
    for table in schema.tables() {
        let rows = rng.gen_range(0..=10usize) as i64;
        let mut trows = Vec::with_capacity(rows as usize);
        for r in 0..rows {
            let mut row = Vec::with_capacity(table.column_count());
            for col in table.columns() {
                let v = if col.name() == "id" {
                    Value::Int(r + 1)
                } else if col.name().ends_with("_id") {
                    // FK into an earlier table; earlier tables are already
                    // counted in row_counts (schema order = insertion order).
                    let parent = col.name().trim_end_matches("_id");
                    let parent_rows = TABLES
                        .iter()
                        .position(|t| *t == parent)
                        .and_then(|i| row_counts.get(i).copied())
                        .unwrap_or(0);
                    if rng.gen_bool(0.1) {
                        Value::Null
                    } else {
                        // 0 and parent_rows + 1 are deliberate misses.
                        Value::Int(rng.gen_range(0..=parent_rows + 1))
                    }
                } else if rng.gen_bool(0.1) {
                    Value::Null
                } else {
                    match col.sql_type() {
                        SqlType::Integer => Value::Int(rng.gen_range(-9..=9i64)),
                        SqlType::Float => Value::Float(rng.gen_range(-8..=8i64) as f64 * 0.5),
                        SqlType::Text => {
                            Value::Text(TEXTS.choose(rng).expect("non-empty").to_string())
                        }
                        SqlType::Boolean => Value::Bool(rng.gen_bool(0.5)),
                    }
                };
                row.push(v);
            }
            trows.push(row);
        }
        row_counts.push(rows);
        out.push((table.name().to_string(), trows));
    }
    out
}

/// A column of a concrete table, with the reference form queries use.
#[derive(Clone)]
struct ColInfo {
    cref: ColumnRef,
    ty: SqlType,
}

fn table_cols(schema: &Schema, table: &str, qualified: bool) -> Vec<ColInfo> {
    let t = schema.table_by_name(table).expect("known table");
    t.columns()
        .iter()
        .map(|c| ColInfo {
            cref: if qualified {
                ColumnRef::qualified(table, c.name())
            } else {
                ColumnRef::unqualified(c.name())
            },
            ty: c.sql_type(),
        })
        .collect()
}

/// A literal whose type matches `ty` exactly (the analyzer warns on
/// cross-type numeric comparisons, and the well-formedness invariant
/// demands zero warnings). The float pool deliberately includes values
/// whose shortest decimal rendering is long or non-obvious.
pub(crate) fn literal(rng: &mut Rng, ty: SqlType) -> Value {
    match ty {
        SqlType::Integer => {
            if rng.gen_bool(0.85) {
                Value::Int(rng.gen_range(-9..=9i64))
            } else {
                [
                    Value::Int(i64::MAX),
                    Value::Int(i64::MIN),
                    Value::Int(1_000_000_007),
                    Value::Int(-999_999_937),
                ]
                .choose(rng)
                .expect("non-empty")
                .clone()
            }
        }
        SqlType::Float => {
            if rng.gen_bool(0.8) {
                Value::Float(rng.gen_range(-8..=8i64) as f64 * 0.5)
            } else {
                [
                    Value::Float(0.1 + 0.2),
                    Value::Float(1e-7),
                    Value::Float(f64::EPSILON),
                    Value::Float(1e19),
                    Value::Float(-2.5e16),
                ]
                .choose(rng)
                .expect("non-empty")
                .clone()
            }
        }
        SqlType::Text => Value::Text(TEXTS.choose(rng).expect("non-empty").to_string()),
        SqlType::Boolean => Value::Bool(rng.gen_bool(0.5)),
    }
}

fn cmp_op(rng: &mut Rng, ty: SqlType) -> CmpOp {
    if ty.is_numeric() || ty.is_text() {
        // Text ordering comparisons are legal in the dialect (lexicographic)
        // but we keep text to Eq/NotEq to match the analyzer's notion of
        // typical queries; numerics get the full operator set.
        if ty.is_numeric() {
            *[
                CmpOp::Eq,
                CmpOp::NotEq,
                CmpOp::Lt,
                CmpOp::LtEq,
                CmpOp::Gt,
                CmpOp::GtEq,
            ]
            .choose(rng)
            .expect("non-empty")
        } else {
            *[CmpOp::Eq, CmpOp::NotEq].choose(rng).expect("non-empty")
        }
    } else {
        *[CmpOp::Eq, CmpOp::NotEq].choose(rng).expect("non-empty")
    }
}

/// One leaf predicate over a random column from `cols`.
fn leaf_pred(rng: &mut Rng, cols: &[ColInfo]) -> Pred {
    let c = cols.choose(rng).expect("non-empty cols").clone();
    let choice = rng.gen_range(0..100u32);
    match c.ty {
        SqlType::Text if choice < 25 => Pred::Like {
            col: c.cref,
            pattern: Scalar::Literal(Value::Text(
                ["%e%", "r_d", "%", "%'s", "1__%"]
                    .choose(rng)
                    .expect("non-empty")
                    .to_string(),
            )),
            negated: rng.gen_bool(0.3),
        },
        _ if choice < 15 => Pred::IsNull {
            col: c.cref,
            negated: rng.gen_bool(0.5),
        },
        _ if choice < 35 && c.ty.is_numeric() => {
            let low = literal(rng, c.ty);
            let high = literal(rng, c.ty);
            Pred::Between {
                col: c.cref,
                low: Scalar::Literal(low),
                high: Scalar::Literal(high),
            }
        }
        _ if choice < 55 => {
            let n = rng.gen_range(1..=3usize);
            let values = (0..n)
                .map(|_| Scalar::Literal(literal(rng, c.ty)))
                .collect();
            Pred::InList {
                col: c.cref,
                values,
                negated: rng.gen_bool(0.3),
            }
        }
        _ => {
            let op = cmp_op(rng, c.ty);
            let lit = Scalar::Literal(literal(rng, c.ty));
            let col = Scalar::Column(c.cref);
            if rng.gen_bool(0.12) {
                // Literal-on-the-left form: printable, parseable, and
                // normalized by the canonicalizer's compare flip.
                Pred::Compare {
                    left: lit,
                    op: op.flipped(),
                    right: col,
                }
            } else {
                Pred::Compare {
                    left: col,
                    op,
                    right: lit,
                }
            }
        }
    }
}

/// A WHERE predicate: a leaf, or one level of AND/OR/NOT composition
/// (never a same-connective nesting, so the parse tree is exact).
fn where_pred(rng: &mut Rng, cols: &[ColInfo]) -> Pred {
    match rng.gen_range(0..100u32) {
        0..=54 => leaf_pred(rng, cols),
        55..=69 => Pred::And(vec![leaf_pred(rng, cols), leaf_pred(rng, cols)]),
        70..=79 => Pred::Or(vec![leaf_pred(rng, cols), leaf_pred(rng, cols)]),
        80..=87 => Pred::Not(Box::new(leaf_pred(rng, cols))),
        88..=93 => Pred::And(vec![
            leaf_pred(rng, cols),
            Pred::Or(vec![leaf_pred(rng, cols), leaf_pred(rng, cols)]),
        ]),
        _ => Pred::Or(vec![
            Pred::And(vec![leaf_pred(rng, cols), leaf_pred(rng, cols)]),
            leaf_pred(rng, cols),
        ]),
    }
}

/// Distinct plain columns for a select list.
fn pick_select_cols(rng: &mut Rng, cols: &[ColInfo], max: usize) -> Vec<ColInfo> {
    let n = rng.gen_range(1..=max.min(cols.len()));
    cols.choose_multiple(rng, n).cloned().collect()
}

/// Generate one well-formed query against `schema`.
///
/// Shapes: plain single-table selects (with DISTINCT / ORDER BY / LIMIT
/// flavors), grouped and global aggregates, FK equi-joins, and the three
/// subquery forms the dialect supports (scalar-aggregate comparison,
/// `IN (subquery)`, `EXISTS`).
pub fn gen_query(rng: &mut Rng, schema: &Schema) -> Query {
    let has_fk = !schema.foreign_keys().is_empty();
    let shape = rng.gen_range(0..100u32);
    if shape < 40 {
        plain_query(rng, schema)
    } else if shape < 60 {
        aggregate_query(rng, schema)
    } else if shape < 75 && has_fk {
        join_query(rng, schema)
    } else if shape < 90 {
        subquery_query(rng, schema)
    } else {
        plain_query(rng, schema)
    }
}

fn pick_table<'a>(rng: &mut Rng, schema: &'a Schema) -> &'a str {
    schema
        .tables()
        .choose(rng)
        .expect("schema has tables")
        .name()
}

fn plain_query(rng: &mut Rng, schema: &Schema) -> Query {
    let table = pick_table(rng, schema).to_string();
    let cols = table_cols(schema, &table, false);
    let star = rng.gen_bool(0.3);
    let select: Vec<SelectItem> = if star {
        vec![SelectItem::Star]
    } else {
        pick_select_cols(rng, &cols, 2)
            .into_iter()
            .map(|c| SelectItem::Column(c.cref))
            .collect()
    };
    // DISTINCT with `SELECT *` would make every ORDER BY key "not in the
    // select list" for the analyzer, so DISTINCT implies named columns.
    let distinct = !star && rng.gen_bool(0.15);
    let mut q = Query {
        distinct,
        select: select.clone(),
        from: FromClause::table(&table),
        where_pred: rng.gen_bool(0.7).then(|| where_pred(rng, &cols)),
        group_by: Vec::new(),
        having: None,
        order_by: Vec::new(),
        limit: None,
    };
    if rng.gen_bool(0.4) {
        // Under DISTINCT, order keys must come from the select list.
        let pool: Vec<ColumnRef> = if distinct {
            select
                .iter()
                .filter_map(|s| match s {
                    SelectItem::Column(c) => Some(c.clone()),
                    _ => None,
                })
                .collect()
        } else {
            cols.iter().map(|c| c.cref.clone()).collect()
        };
        let n = rng.gen_range(1..=2usize.min(pool.len()));
        for c in pool.choose_multiple(rng, n) {
            let dir = if rng.gen_bool(0.5) {
                OrderDir::Asc
            } else {
                OrderDir::Desc
            };
            q.order_by.push((OrderKey::Column(c.clone()), dir));
        }
    }
    if rng.gen_bool(0.25) {
        // LIMIT 0 is engine-legal but draws the analyzer's W0501; the
        // well-formedness invariant is "zero diagnostics", so start at 1.
        q.limit = Some(rng.gen_range(1..=5u64));
    }
    q
}

/// An aggregate whose output type is known, for HAVING literal matching.
fn pick_aggregate(rng: &mut Rng, cols: &[ColInfo]) -> (SelectItem, SqlType) {
    let numeric: Vec<&ColInfo> = cols.iter().filter(|c| c.ty.is_numeric()).collect();
    match rng.gen_range(0..5u32) {
        0 => (
            SelectItem::Aggregate(AggFunc::Count, AggArg::Star),
            SqlType::Integer,
        ),
        1 => {
            let c = cols.choose(rng).expect("non-empty");
            (
                SelectItem::Aggregate(AggFunc::Count, AggArg::Column(c.cref.clone())),
                SqlType::Integer,
            )
        }
        2 => {
            let c = numeric.choose(rng).expect("always has id");
            (
                SelectItem::Aggregate(AggFunc::Sum, AggArg::Column(c.cref.clone())),
                c.ty,
            )
        }
        3 => {
            let c = numeric.choose(rng).expect("always has id");
            (
                SelectItem::Aggregate(AggFunc::Avg, AggArg::Column(c.cref.clone())),
                SqlType::Float,
            )
        }
        _ => {
            let f = if rng.gen_bool(0.5) {
                AggFunc::Min
            } else {
                AggFunc::Max
            };
            let c = cols.choose(rng).expect("non-empty");
            (
                SelectItem::Aggregate(f, AggArg::Column(c.cref.clone())),
                c.ty,
            )
        }
    }
}

fn aggregate_query(rng: &mut Rng, schema: &Schema) -> Query {
    let table = pick_table(rng, schema).to_string();
    let cols = table_cols(schema, &table, false);
    let (agg, agg_ty) = pick_aggregate(rng, &cols);
    let grouped = rng.gen_bool(0.55);
    if !grouped {
        // Global aggregate: a single aggregate select, nothing else.
        return Query {
            distinct: false,
            select: vec![agg],
            from: FromClause::table(&table),
            where_pred: rng.gen_bool(0.5).then(|| where_pred(rng, &cols)),
            group_by: Vec::new(),
            having: None,
            order_by: Vec::new(),
            limit: None,
        };
    }
    let key = cols.choose(rng).expect("non-empty").clone();
    let mut select = vec![SelectItem::Column(key.cref.clone()), agg.clone()];
    if rng.gen_bool(0.3) {
        select.swap(0, 1);
    }
    let having = rng.gen_bool(0.35).then(|| {
        let (SelectItem::Aggregate(f, arg), ty) = pick_aggregate(rng, &cols) else {
            unreachable!("pick_aggregate returns aggregates");
        };
        Pred::Compare {
            left: Scalar::Aggregate(f, arg),
            op: cmp_op(rng, ty),
            right: Scalar::Literal(literal(rng, ty)),
        }
    });
    let mut order_by = Vec::new();
    if rng.gen_bool(0.4) {
        let dir = if rng.gen_bool(0.5) {
            OrderDir::Asc
        } else {
            OrderDir::Desc
        };
        let key_order = rng.gen_bool(0.5);
        if key_order {
            order_by.push((OrderKey::Column(key.cref.clone()), dir));
        } else if let SelectItem::Aggregate(f, arg) = &agg {
            order_by.push((OrderKey::Aggregate(*f, arg.clone()), dir));
        }
    }
    let _ = agg_ty;
    Query {
        distinct: false,
        select,
        from: FromClause::table(&table),
        where_pred: rng.gen_bool(0.5).then(|| where_pred(rng, &cols)),
        group_by: vec![key.cref],
        having,
        order_by,
        limit: rng.gen_bool(0.25).then(|| rng.gen_range(1..=5u64)),
    }
}

fn join_query(rng: &mut Rng, schema: &Schema) -> Query {
    let fk = schema
        .foreign_keys()
        .choose(rng)
        .expect("caller checked has_fk");
    let child_t = schema.table(fk.from.table).name().to_string();
    let child_c = schema.column(fk.from).name().to_string();
    let parent_t = schema.table(fk.to.table).name().to_string();
    let parent_c = schema.column(fk.to).name().to_string();

    let mut tables = vec![child_t.clone(), parent_t.clone()];
    if rng.gen_bool(0.5) {
        tables.swap(0, 1);
    }
    let mut all_cols = table_cols(schema, &child_t, true);
    all_cols.extend(table_cols(schema, &parent_t, true));

    let equi = {
        let left = Scalar::Column(ColumnRef::qualified(&child_t, &child_c));
        let right = Scalar::Column(ColumnRef::qualified(&parent_t, &parent_c));
        if rng.gen_bool(0.5) {
            Pred::Compare {
                left: right.clone(),
                op: CmpOp::Eq,
                right: left,
            }
        } else {
            Pred::Compare {
                left,
                op: CmpOp::Eq,
                right,
            }
        }
    };
    let where_pred = if rng.gen_bool(0.6) {
        Pred::and(vec![equi, leaf_pred(rng, &all_cols)])
    } else {
        equi
    };

    let select: Vec<SelectItem> = if rng.gen_bool(0.15) {
        vec![SelectItem::Star]
    } else {
        pick_select_cols(rng, &all_cols, 2)
            .into_iter()
            .map(|c| SelectItem::Column(c.cref))
            .collect()
    };
    let mut order_by = Vec::new();
    if rng.gen_bool(0.3) {
        let c = all_cols.choose(rng).expect("non-empty");
        let dir = if rng.gen_bool(0.5) {
            OrderDir::Asc
        } else {
            OrderDir::Desc
        };
        order_by.push((OrderKey::Column(c.cref.clone()), dir));
    }
    Query {
        distinct: false,
        select,
        from: FromClause::Tables(tables),
        where_pred: Some(where_pred),
        group_by: Vec::new(),
        having: None,
        order_by,
        limit: rng.gen_bool(0.2).then(|| rng.gen_range(1..=5u64)),
    }
}

fn subquery_query(rng: &mut Rng, schema: &Schema) -> Query {
    let outer_t = pick_table(rng, schema).to_string();
    let outer_cols = table_cols(schema, &outer_t, false);
    let inner_t = pick_table(rng, schema).to_string();
    let inner_cols = table_cols(schema, &inner_t, false);

    let inner_where = |rng: &mut Rng| rng.gen_bool(0.6).then(|| leaf_pred(rng, &inner_cols));

    let sub_pred = match rng.gen_range(0..3u32) {
        0 => {
            // Scalar-aggregate comparison: the aggregate's output type must
            // exactly match the outer column's type (W0201 otherwise).
            let outer_c = outer_cols
                .iter()
                .filter(|c| c.ty.is_numeric())
                .collect::<Vec<_>>()
                .choose(rng)
                .map(|c| (*c).clone())
                .expect("id is always numeric");
            let inner_numeric: Vec<&ColInfo> =
                inner_cols.iter().filter(|c| c.ty.is_numeric()).collect();
            let (f, arg) = if outer_c.ty == SqlType::Float {
                let c = inner_numeric.choose(rng).expect("id is numeric");
                (AggFunc::Avg, AggArg::Column(c.cref.clone()))
            } else {
                let int_cols: Vec<&&ColInfo> = inner_numeric
                    .iter()
                    .filter(|c| c.ty == SqlType::Integer)
                    .collect();
                let c = **int_cols.choose(rng).expect("id is Integer");
                match rng.gen_range(0..3u32) {
                    0 => (AggFunc::Count, AggArg::Star),
                    1 => (AggFunc::Sum, AggArg::Column(c.cref.clone())),
                    _ => (
                        if rng.gen_bool(0.5) {
                            AggFunc::Min
                        } else {
                            AggFunc::Max
                        },
                        AggArg::Column(c.cref.clone()),
                    ),
                }
            };
            let inner = Query {
                distinct: false,
                select: vec![SelectItem::Aggregate(f, arg)],
                from: FromClause::table(&inner_t),
                where_pred: inner_where(rng),
                group_by: Vec::new(),
                having: None,
                order_by: Vec::new(),
                limit: None,
            };
            Pred::Compare {
                left: Scalar::Column(outer_c.cref),
                op: cmp_op(rng, outer_c.ty),
                right: Scalar::Subquery(Box::new(inner)),
            }
        }
        1 => {
            // col IN (SELECT col2 FROM inner): types must match exactly.
            let pairs: Vec<(ColInfo, ColInfo)> = outer_cols
                .iter()
                .flat_map(|oc| {
                    inner_cols
                        .iter()
                        .filter(|ic| ic.ty == oc.ty)
                        .map(|ic| (oc.clone(), ic.clone()))
                        .collect::<Vec<_>>()
                })
                .collect();
            // Every table has an Integer id, so pairs is never empty.
            let (oc, ic) = pairs.choose(rng).expect("id pairs always exist").clone();
            let inner = Query {
                distinct: rng.gen_bool(0.2),
                select: vec![SelectItem::Column(ic.cref)],
                from: FromClause::table(&inner_t),
                where_pred: inner_where(rng),
                group_by: Vec::new(),
                having: None,
                order_by: Vec::new(),
                limit: None,
            };
            Pred::InSubquery {
                col: oc.cref,
                query: Box::new(inner),
                negated: rng.gen_bool(0.3),
            }
        }
        _ => {
            let inner = Query {
                distinct: false,
                select: vec![SelectItem::Star],
                from: FromClause::table(&inner_t),
                where_pred: inner_where(rng),
                group_by: Vec::new(),
                having: None,
                order_by: Vec::new(),
                limit: None,
            };
            Pred::Exists {
                query: Box::new(inner),
                negated: rng.gen_bool(0.3),
            }
        }
    };

    let where_pred = if rng.gen_bool(0.4) {
        Pred::and(vec![sub_pred, leaf_pred(rng, &outer_cols)])
    } else {
        sub_pred
    };
    let select = pick_select_cols(rng, &outer_cols, 2)
        .into_iter()
        .map(|c| SelectItem::Column(c.cref))
        .collect();
    Query {
        distinct: false,
        select,
        from: FromClause::table(&outer_t),
        where_pred: Some(where_pred),
        group_by: Vec::new(),
        having: None,
        order_by: Vec::new(),
        limit: rng.gen_bool(0.2).then(|| rng.gen_range(1..=5u64)),
    }
}
