//! The fuzzing driver: seeded iteration fan-out, the oracle battery,
//! shrink-on-failure, and a deterministic report.
//!
//! One iteration is a pure function of `(base_seed, iteration_index)`:
//! the RNG is `Rng::for_stream(seed, i)`, so any schedule of iterations
//! across any number of worker threads produces byte-identical findings.
//! [`run_fuzz`] fans iterations out with `par_map_indexed` and merges
//! results in input order; [`FuzzReport::to_json`] deliberately excludes
//! thread count and wall-clock so reports can be compared byte-for-byte
//! across worker configurations.

use dbpal_engine::Database;
use dbpal_schema::{Schema, Value};
use dbpal_sql::Query;
use dbpal_util::{auto_threads, pooled_map_indexed, MetricsRegistry, Rng};

use crate::case::{FuzzCase, SchemaSpec};
use crate::gen::{gen_query, gen_rows, gen_schema};
use crate::mutate::{seed_faults, shuffle_equivalent};
use crate::oracles;
use crate::shrink::shrink_query;

/// Default base seed when `DBPAL_FUZZ_SEED` is unset.
pub const DEFAULT_SEED: u64 = 0xDBA1;

/// Default iteration budget when `DBPAL_FUZZ_ITERS` is unset.
pub const DEFAULT_ITERS: usize = 200;

/// Fuzzing run parameters.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Base seed; each iteration derives its own stream from it.
    pub seed: u64,
    /// Number of iterations to run.
    pub iters: usize,
    /// Worker threads for the fan-out (results are thread-count invariant).
    pub threads: usize,
}

impl FuzzConfig {
    /// A config with explicit values.
    pub fn new(seed: u64, iters: usize, threads: usize) -> Self {
        FuzzConfig {
            seed,
            iters,
            threads: threads.max(1),
        }
    }

    /// Read `DBPAL_FUZZ_SEED`, `DBPAL_FUZZ_ITERS`, and
    /// `DBPAL_FUZZ_THREADS` from the environment, with defaults
    /// ([`DEFAULT_SEED`], [`DEFAULT_ITERS`], all cores).
    pub fn from_env() -> Self {
        let read = |key: &str| std::env::var(key).ok().and_then(|v| v.parse::<u64>().ok());
        FuzzConfig {
            seed: read("DBPAL_FUZZ_SEED").unwrap_or(DEFAULT_SEED),
            iters: read("DBPAL_FUZZ_ITERS").unwrap_or(DEFAULT_ITERS as u64) as usize,
            threads: read("DBPAL_FUZZ_THREADS")
                .map(|t| t.max(1) as usize)
                .unwrap_or_else(auto_threads),
        }
    }
}

/// One oracle violation, with the shrunk reproducer and a replayable case.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Iteration index the violation occurred in.
    pub iteration: u64,
    /// Oracle name (`roundtrip`, `canonical`, `canonical-pair`,
    /// `analyzer-clean`, or a fault name like `broken-join`).
    pub oracle: String,
    /// The original failing query, as SQL.
    pub sql: String,
    /// The minimized failing query, as SQL.
    pub minimized: String,
    /// The oracle's violation message (for the minimized query).
    pub detail: String,
    /// Self-contained regression case ready for `tests/fuzz_corpus/`.
    pub case: FuzzCase,
}

/// The outcome of a fuzzing run.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Base seed the run used.
    pub seed: u64,
    /// Iterations executed.
    pub iters: usize,
    /// All violations, in iteration order.
    pub findings: Vec<Finding>,
}

impl FuzzReport {
    /// Record this run into a [`MetricsRegistry`] (the export format
    /// shared with the training pipeline and the serving layer):
    /// iteration budget and total findings, plus one counter per oracle
    /// that produced a finding. Fully deterministic — the driver takes
    /// no wall-clock reads.
    pub fn record_metrics(&self, reg: &MetricsRegistry) {
        reg.counter("fuzz.iterations").add(self.iters as u64);
        reg.counter("fuzz.findings").add(self.findings.len() as u64);
        for f in &self.findings {
            reg.counter(&format!("fuzz.findings.{}", f.oracle)).inc();
        }
    }

    /// Deterministic JSON rendering. Thread count and timings are
    /// excluded on purpose: a run at 1 worker and a run at 8 workers
    /// must serialize to identical bytes.
    pub fn to_json(&self) -> String {
        use dbpal_util::Json;
        let findings = Json::Arr(
            self.findings
                .iter()
                .map(|f| {
                    Json::Obj(vec![
                        ("iteration".into(), Json::str(f.iteration.to_string())),
                        ("oracle".into(), Json::str(f.oracle.clone())),
                        ("sql".into(), Json::str(f.sql.clone())),
                        ("minimized".into(), Json::str(f.minimized.clone())),
                        ("detail".into(), Json::str(f.detail.clone())),
                    ])
                })
                .collect(),
        );
        Json::Obj(vec![
            ("seed".into(), Json::str(self.seed.to_string())),
            ("iters".into(), Json::Num(self.iters as f64)),
            ("findings".into(), findings),
        ])
        .pretty()
    }
}

/// Coarse failure class of an oracle message, used to keep the shrinker
/// from wandering onto a *different* bug: a candidate only counts as
/// "still failing" when its violation opens with the same word.
fn err_class(msg: &str) -> &str {
    msg.split_whitespace().next().unwrap_or("")
}

/// Shrink `q` under `check`, holding the failure class of `orig_err`
/// fixed, and return (minimized query, its violation message).
fn shrink_with(
    q: &Query,
    orig_err: &str,
    mut check: impl FnMut(&Query) -> Result<(), String>,
) -> (Query, String) {
    let class = err_class(orig_err).to_string();
    let min = shrink_query(q, |c| matches!(check(c), Err(e) if err_class(&e) == class));
    let detail = check(&min).err().unwrap_or_else(|| orig_err.to_string());
    (min, detail)
}

/// Everything one iteration generates, bundled for finding construction.
struct IterCtx {
    iteration: u64,
    spec: SchemaSpec,
    rows: Vec<(String, Vec<Vec<Value>>)>,
}

impl IterCtx {
    fn finding(&self, oracle: &str, sql: &Query, minimized: &Query, detail: String) -> Finding {
        Finding {
            iteration: self.iteration,
            oracle: oracle.to_string(),
            sql: sql.to_string(),
            minimized: minimized.to_string(),
            detail: detail.clone(),
            case: FuzzCase {
                name: format!("iter{}-{}", self.iteration, oracle),
                oracle: oracle.to_string(),
                schema: self.spec.clone(),
                rows: self.rows.clone(),
                sql: minimized.to_string(),
                sql_b: String::new(),
                note: detail,
            },
        }
    }
}

/// Run one fuzz iteration: generate a schema, database, and queries,
/// then run the full oracle battery in a fixed order. Pure in
/// `(seed, i)` — no other state feeds the RNG.
pub fn run_iteration(seed: u64, i: u64) -> Vec<Finding> {
    let mut rng = Rng::for_stream(seed, i);
    let schema: Schema = gen_schema(&mut rng);
    let rows = gen_rows(&mut rng, &schema);
    let mut db = Database::new(schema.clone());
    for (table, trows) in &rows {
        for row in trows {
            db.insert(table, row.clone())
                .expect("generated row is valid");
        }
    }
    let q1 = gen_query(&mut rng, &schema);
    let q2 = gen_query(&mut rng, &schema);
    let shuffled = shuffle_equivalent(&mut rng, &q1);

    let ctx = IterCtx {
        iteration: i,
        spec: SchemaSpec::from_schema(&schema),
        rows,
    };
    let mut findings = Vec::new();

    // Oracle 1: roundtrip, both queries.
    for q in [&q1, &q2] {
        if let Err(e) = oracles::check_roundtrip(q) {
            let (min, detail) = shrink_with(q, &e, oracles::check_roundtrip);
            findings.push(ctx.finding("roundtrip", q, &min, detail));
        }
    }

    // Oracle 3a: generated queries analyze clean.
    for q in [&q1, &q2] {
        if let Err(e) = oracles::check_analyzer_clean(&schema, q) {
            let (min, detail) = shrink_with(q, &e, |c| oracles::check_analyzer_clean(&schema, c));
            findings.push(ctx.finding("analyzer-clean", q, &min, detail));
        }
    }

    // Oracle 2a: canonicalization preserves results.
    for q in [&q1, &q2] {
        if let Err(e) = oracles::check_canonical_preserves(&db, q) {
            let (min, detail) = shrink_with(q, &e, |c| oracles::check_canonical_preserves(&db, c));
            findings.push(ctx.finding("canonical", q, &min, detail));
        }
    }

    // Oracle 2b: an equivalence-preserving shuffle keeps the canonical
    // form and the results; two arbitrary queries that happen to share a
    // form must agree on results. Pair findings are not shrunk (the two
    // queries would have to shrink in lockstep); the pair is persisted
    // verbatim.
    if let Err(e) = oracles::check_canonical_pair(&db, &q1, &shuffled, true) {
        let mut f = ctx.finding("canonical-pair", &q1, &q1, e);
        f.case.sql_b = shuffled.to_string();
        findings.push(f);
    }
    if let Err(e) = oracles::check_canonical_pair(&db, &q1, &q2, false) {
        let mut f = ctx.finding("canonical-pair", &q1, &q1, e);
        f.case.sql_b = q2.to_string();
        findings.push(f);
    }

    // Oracle 3b: every seeded fault must trip a matching diagnostic.
    for (mutated, fault) in seed_faults(&q1) {
        if let Err(e) = oracles::check_mutation_flagged(&schema, &mutated, fault) {
            let (min, detail) = shrink_with(&mutated, &e, |c| {
                oracles::check_mutation_flagged(&schema, c, fault)
            });
            findings.push(ctx.finding(fault.name(), &mutated, &min, detail));
        }
    }

    findings
}

/// Run `cfg.iters` iterations fanned out over `cfg.threads` workers.
/// Findings come back merged in iteration order, independent of thread
/// count or scheduling.
pub fn run_fuzz(cfg: &FuzzConfig) -> FuzzReport {
    let idxs: Vec<u64> = (0..cfg.iters as u64).collect();
    let per_iter = pooled_map_indexed(&idxs, cfg.threads, |_, &i| run_iteration(cfg.seed, i));
    FuzzReport {
        seed: cfg.seed,
        iters: cfg.iters,
        findings: per_iter.into_iter().flatten().collect(),
    }
}
