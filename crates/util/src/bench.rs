//! A tiny wall-clock benchmark harness.
//!
//! Each benchmark is calibrated (iterations per sample chosen so a
//! sample takes roughly [`Config::target_sample`]), warmed up, then
//! measured for [`Config::samples`] samples; the report shows the
//! median, minimum, and maximum per-iteration time. Results can also be
//! dumped as JSON — set `DBPAL_BENCH_JSON=<path>` (or `-` for stdout)
//! to get a machine-readable record of the run.
//!
//! This replaces `criterion` for this workspace: no statistics beyond
//! median-of-N, no plotting, no registry dependency — just `Instant`.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

use crate::json::Json;

/// Opaque identity function preventing the optimizer from deleting the
/// benchmarked computation. Re-exported so bench files need only
/// `dbpal_util::bench::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Harness tuning knobs.
#[derive(Debug, Clone)]
pub struct Config {
    /// Measured samples per benchmark (the median of these is reported).
    pub samples: usize,
    /// Warmup time before measurement starts.
    pub warmup: Duration,
    /// Target wall-clock duration of one sample; iteration count per
    /// sample is calibrated to roughly hit this.
    pub target_sample: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            samples: 15,
            warmup: Duration::from_millis(300),
            target_sample: Duration::from_millis(100),
        }
    }
}

impl Config {
    /// One iteration, one sample, no warmup — a smoke run that only
    /// proves the benchmark still executes.
    pub fn quick() -> Self {
        Config {
            samples: 1,
            warmup: Duration::ZERO,
            target_sample: Duration::ZERO,
        }
    }

    /// Full measurement when invoked by `cargo bench` (which passes
    /// `--bench` to `harness = false` targets), [`Config::quick`]
    /// otherwise — so `cargo test`, which runs bench binaries with no
    /// arguments, finishes in milliseconds. An explicit `--quick`
    /// forces the smoke profile even under `cargo bench`; CI uses this
    /// to emit machine-readable reports without paying for full
    /// measurement.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--quick") || !args.iter().any(|a| a == "--bench") {
            Config::quick()
        } else {
            Config::default()
        }
    }
}

/// Per-benchmark floors layered on top of the harness [`Config`].
///
/// Quick runs (`--quick`, `cargo test`, CI) calibrate to one iteration
/// and one sample, which for sub-millisecond routines records timer
/// noise instead of a meaningful median — and the committed
/// `BENCH_*.json` baselines are produced by exactly those runs. A
/// benchmark that knows it is fast declares floors here; full
/// `cargo bench` runs already exceed them and are unaffected.
#[derive(Debug, Clone, Copy, Default)]
pub struct BenchOpts {
    /// Minimum iterations per sample, applied after calibration.
    pub min_iters: u64,
    /// Minimum number of measured samples.
    pub min_samples: usize,
}

/// One benchmark's measured result.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name as passed to [`Harness::bench`].
    pub name: String,
    /// Median per-iteration time across samples.
    pub median: Duration,
    /// Fastest sample's per-iteration time.
    pub min: Duration,
    /// Slowest sample's per-iteration time.
    pub max: Duration,
    /// Iterations per sample after calibration.
    pub iters_per_sample: u64,
    /// Number of measured samples.
    pub samples: usize,
}

/// Collects measurements and renders the final report.
pub struct Harness {
    group: String,
    config: Config,
    results: Vec<Measurement>,
}

impl Harness {
    /// A harness with default [`Config`]; `group` names the run.
    pub fn new(group: impl Into<String>) -> Self {
        Harness::with_config(group, Config::default())
    }

    /// A harness with explicit tuning.
    pub fn with_config(group: impl Into<String>, config: Config) -> Self {
        Harness {
            group: group.into(),
            config,
            results: Vec::new(),
        }
    }

    /// Benchmark `f`, which is called once per iteration.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        self.bench_with_setup(name, || (), move |()| f());
    }

    /// [`Harness::bench`] with explicit per-benchmark floors.
    pub fn bench_opts<R>(&mut self, name: &str, opts: BenchOpts, mut f: impl FnMut() -> R) {
        self.bench_with_setup_opts(name, opts, || (), move |()| f());
    }

    /// Benchmark `routine` with a fresh, untimed `setup` value per
    /// iteration (the equivalent of criterion's `iter_batched`).
    pub fn bench_with_setup<S, R>(
        &mut self,
        name: &str,
        setup: impl FnMut() -> S,
        routine: impl FnMut(S) -> R,
    ) {
        self.bench_with_setup_opts(name, BenchOpts::default(), setup, routine);
    }

    /// [`Harness::bench_with_setup`] with explicit per-benchmark floors.
    pub fn bench_with_setup_opts<S, R>(
        &mut self,
        name: &str,
        opts: BenchOpts,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> R,
    ) {
        eprint!("bench {}/{name} ... ", self.group);
        let iters = self
            .calibrate(&mut setup, &mut routine)
            .max(opts.min_iters)
            .max(1);
        let samples = self.config.samples.max(opts.min_samples).max(1);
        self.warmup(iters, &mut setup, &mut routine);

        let mut per_iter: Vec<Duration> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let total = Self::sample(iters, &mut setup, &mut routine);
            per_iter.push(total / iters as u32);
        }
        per_iter.sort_unstable();
        let m = Measurement {
            name: name.to_string(),
            median: per_iter[per_iter.len() / 2],
            min: per_iter[0],
            max: per_iter[per_iter.len() - 1],
            iters_per_sample: iters,
            samples: per_iter.len(),
        };
        eprintln!(
            "{} (min {}, max {})",
            fmt_dur(m.median),
            fmt_dur(m.min),
            fmt_dur(m.max)
        );
        self.results.push(m);
    }

    /// Time one sample of `iters` iterations (setup excluded).
    fn sample<S, R>(
        iters: u64,
        setup: &mut impl FnMut() -> S,
        routine: &mut impl FnMut(S) -> R,
    ) -> Duration {
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            total += start.elapsed();
            drop(std_black_box(out));
        }
        total
    }

    /// Pick iterations-per-sample so one sample ≈ `target_sample`.
    fn calibrate<S, R>(
        &self,
        setup: &mut impl FnMut() -> S,
        routine: &mut impl FnMut(S) -> R,
    ) -> u64 {
        let mut iters = 1u64;
        loop {
            let took = Self::sample(iters, setup, routine);
            if took >= self.config.target_sample / 2 || iters >= 1 << 20 {
                let per_iter = took.as_secs_f64() / iters as f64;
                let want = self.config.target_sample.as_secs_f64() / per_iter.max(1e-12);
                return (want as u64).clamp(1, 1 << 24);
            }
            iters = iters.saturating_mul(4);
        }
    }

    fn warmup<S, R>(
        &self,
        iters: u64,
        setup: &mut impl FnMut() -> S,
        routine: &mut impl FnMut(S) -> R,
    ) {
        let deadline = Instant::now() + self.config.warmup;
        while Instant::now() < deadline {
            Self::sample(iters.min(16), setup, routine);
        }
    }

    /// The collected measurements so far.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }

    /// The whole run as a JSON document.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("group".into(), Json::str(self.group.clone())),
            (
                "benchmarks".into(),
                Json::Arr(
                    self.results
                        .iter()
                        .map(|m| {
                            Json::Obj(vec![
                                ("name".into(), Json::str(m.name.clone())),
                                ("median_ns".into(), Json::Num(m.median.as_nanos() as f64)),
                                ("min_ns".into(), Json::Num(m.min.as_nanos() as f64)),
                                ("max_ns".into(), Json::Num(m.max.as_nanos() as f64)),
                                (
                                    "iters_per_sample".into(),
                                    Json::Num(m.iters_per_sample as f64),
                                ),
                                ("samples".into(), Json::Num(m.samples as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// The machine-readable report path this run should write, if any:
    /// `DBPAL_BENCH_JSON=<path|->` wins, then a `--json` argument, which
    /// writes `BENCH_<group>.json` in the current directory. This is how
    /// the perf trajectory gets recorded — see DESIGN.md "Serving &
    /// observability" for the schema.
    fn json_path(&self) -> Option<String> {
        if let Ok(path) = std::env::var("DBPAL_BENCH_JSON") {
            return Some(path);
        }
        if std::env::args().any(|a| a == "--json") {
            return Some(format!("BENCH_{}.json", self.group));
        }
        None
    }

    /// Print the human-readable table and honor `DBPAL_BENCH_JSON` /
    /// `--json`. Call once at the end of a bench binary's `main`.
    pub fn finish(self) {
        println!("\n== {} ==", self.group);
        let name_w = self
            .results
            .iter()
            .map(|m| m.name.len())
            .max()
            .unwrap_or(4)
            .max(4);
        println!(
            "{:<name_w$}  {:>12}  {:>12}  {:>12}",
            "name", "median", "min", "max"
        );
        for m in &self.results {
            println!(
                "{:<name_w$}  {:>12}  {:>12}  {:>12}",
                m.name,
                fmt_dur(m.median),
                fmt_dur(m.min),
                fmt_dur(m.max),
            );
        }
        if let Some(path) = self.json_path() {
            let doc = self.to_json().pretty();
            if path == "-" {
                println!("{doc}");
            } else if let Err(e) = std::fs::write(&path, doc + "\n") {
                eprintln!("warning: could not write {path}: {e}");
            } else {
                eprintln!("bench report written to {path}");
            }
        }
    }
}

/// Render a duration with an auto-scaled unit (`ns`/`µs`/`ms`/`s`).
pub fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> Config {
        Config {
            samples: 3,
            warmup: Duration::from_millis(1),
            target_sample: Duration::from_micros(200),
        }
    }

    #[test]
    fn measures_something_positive() {
        let mut h = Harness::with_config("unit", fast_config());
        h.bench("sum", || (0..100u64).sum::<u64>());
        let m = &h.results()[0];
        assert_eq!(m.samples, 3);
        assert!(m.iters_per_sample >= 1);
        assert!(m.min <= m.median && m.median <= m.max);
    }

    #[test]
    fn setup_excluded_from_timing() {
        let mut h = Harness::with_config("unit", fast_config());
        h.bench_with_setup(
            "sort",
            || vec![5u32, 3, 1, 4, 2],
            |mut v| {
                v.sort_unstable();
                v
            },
        );
        assert_eq!(h.results().len(), 1);
    }

    #[test]
    fn json_report_shape() {
        let mut h = Harness::with_config("unit", fast_config());
        h.bench("noop", || black_box(1u8));
        let doc = h.to_json();
        assert_eq!(doc.get("group").unwrap().as_str(), Some("unit"));
        let benches = doc.get("benchmarks").unwrap().as_arr().unwrap();
        assert_eq!(benches.len(), 1);
        assert_eq!(benches[0].get("name").unwrap().as_str(), Some("noop"));
        assert!(benches[0].get("median_ns").unwrap().as_f64().unwrap() >= 0.0);
    }

    #[test]
    fn opts_floor_iters_and_samples() {
        let mut h = Harness::with_config("unit", Config::quick());
        h.bench_opts(
            "floored",
            BenchOpts {
                min_iters: 32,
                min_samples: 5,
            },
            || black_box(1u8),
        );
        let m = &h.results()[0];
        assert!(m.iters_per_sample >= 32, "iters {}", m.iters_per_sample);
        assert_eq!(m.samples, 5);
    }

    #[test]
    fn fmt_dur_scales_units() {
        assert_eq!(fmt_dur(Duration::from_nanos(250)), "250 ns");
        assert_eq!(fmt_dur(Duration::from_micros(2)), "2.00 µs");
        assert_eq!(fmt_dur(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(fmt_dur(Duration::from_secs(2)), "2.00 s");
    }
}
