//! FNV-1a hashing: the workspace's one stable content digest.
//!
//! Golden corpus pins, load-harness answer digests, and the streaming
//! corpus sinks all need the same property — a tiny, dependency-free
//! hash whose value is identical on every platform, forever. FNV-1a
//! over bytes is exactly that; this module is the single definition so
//! the digest a sink reports is the digest a test pins.

/// The FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// The FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x100_0000_01b3;

/// FNV-1a over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(bytes);
    h.finish()
}

/// Incremental FNV-1a hasher for streaming writers: feed bytes as they
/// are produced and read the digest at the end. `fnv1a(all_bytes)` and
/// any sequence of [`Fnv1a::update`] calls covering the same bytes
/// yield the same value.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a {
    state: u64,
}

impl Fnv1a {
    /// A hasher at the offset basis.
    pub fn new() -> Self {
        Fnv1a { state: FNV_OFFSET }
    }

    /// Absorb bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// The digest over everything absorbed so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data = b"streaming corpus digest bytes";
        let mut h = Fnv1a::new();
        for chunk in data.chunks(3) {
            h.update(chunk);
        }
        assert_eq!(h.finish(), fnv1a(data));
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(fnv1a(b"pair-1"), fnv1a(b"pair-2"));
    }
}
