//! Length-delimited message framing over byte streams.
//!
//! The wire format for `dbpal-server` (and anything else that wants to
//! pass discrete messages over TCP): each frame is a 4-byte big-endian
//! payload length followed by exactly that many payload bytes. There is
//! no escaping and no sentinel, so any byte sequence — in practice a
//! compact JSON document — rides unchanged.
//!
//! ```text
//!   +----------------+-------------------+
//!   | len: u32 (BE)  | payload: len bytes|
//!   +----------------+-------------------+
//! ```
//!
//! Reading distinguishes three failure shapes so a server can react with
//! a typed response instead of a panic or a wedged connection:
//!
//! * clean EOF *between* frames → `Ok(None)` (the peer hung up);
//! * EOF or I/O failure *inside* a frame → [`FrameError::Truncated`] /
//!   [`FrameError::Io`] (drop the connection — the stream is desynced);
//! * a declared length over the reader's cap → [`FrameError::TooLarge`]
//!   *before* any payload byte is read, so the server can still write
//!   one typed refusal on the intact write half and close.

use std::fmt;
use std::io::{self, Read, Write};

/// Bytes in the length prefix.
pub const HEADER_LEN: usize = 4;

/// Default cap on a single frame's payload (1 MiB) — far above any
/// legitimate request batch, far below an allocation-of-death.
pub const DEFAULT_MAX_FRAME_LEN: usize = 1 << 20;

/// A framing failure. `Io`/`Truncated` mean the stream is unusable;
/// `TooLarge` leaves the write half intact for one typed refusal.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying reader failed mid-frame.
    Io(io::Error),
    /// The stream ended inside a header or payload.
    Truncated {
        /// Bytes that were expected when the stream ended.
        expected: usize,
    },
    /// The header declared a payload over the configured cap. No
    /// payload bytes have been consumed.
    TooLarge {
        /// The declared payload length.
        declared: usize,
        /// The cap it exceeded.
        max: usize,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
            FrameError::Truncated { expected } => {
                write!(f, "truncated frame: stream ended {expected} bytes early")
            }
            FrameError::TooLarge { declared, max } => {
                write!(f, "oversized frame: {declared} bytes declared, cap {max}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Encode `payload`'s length prefix.
pub fn encode_len(payload_len: usize) -> [u8; HEADER_LEN] {
    (payload_len as u32).to_be_bytes()
}

/// Decode a length prefix.
pub fn decode_len(header: [u8; HEADER_LEN]) -> usize {
    u32::from_be_bytes(header) as usize
}

/// Write one frame (header + payload) and flush.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    w.write_all(&encode_len(payload.len()))?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame's payload after its 4-byte header has already been
/// consumed and decoded to `declared`. Checks `max` *before* reading.
pub fn read_payload(r: &mut impl Read, declared: usize, max: usize) -> Result<Vec<u8>, FrameError> {
    if declared > max {
        return Err(FrameError::TooLarge { declared, max });
    }
    let mut payload = vec![0u8; declared];
    read_fully(r, &mut payload)?;
    Ok(payload)
}

/// Read one whole frame. `Ok(None)` on clean EOF before any header
/// byte; `Truncated` if the stream ends anywhere after that.
pub fn read_frame(r: &mut impl Read, max: usize) -> Result<Option<Vec<u8>>, FrameError> {
    let mut header = [0u8; HEADER_LEN];
    // The first byte decides between "peer hung up" and "truncated".
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let [first_byte] = first;
    let [head, tail @ ..] = &mut header;
    *head = first_byte;
    read_fully(r, tail)?;
    let declared = decode_len(header);
    read_payload(r, declared, max).map(Some)
}

/// `read_exact` that maps EOF to [`FrameError::Truncated`].
fn read_fully(r: &mut impl Read, buf: &mut [u8]) -> Result<(), FrameError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::Truncated {
                expected: buf.len(),
            }
        } else {
            FrameError::Io(e)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn roundtrip(payload: &[u8]) -> Vec<u8> {
        let mut wire = Vec::new();
        write_frame(&mut wire, payload).unwrap();
        read_frame(&mut Cursor::new(wire), DEFAULT_MAX_FRAME_LEN)
            .unwrap()
            .unwrap()
    }

    #[test]
    fn frames_roundtrip() {
        assert_eq!(roundtrip(b""), b"");
        assert_eq!(roundtrip(b"{\"op\":\"health\"}"), b"{\"op\":\"health\"}");
        let big = vec![0xABu8; 70_000];
        assert_eq!(roundtrip(&big), big);
    }

    #[test]
    fn back_to_back_frames_stay_separate() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"one").unwrap();
        write_frame(&mut wire, b"two").unwrap();
        let mut cur = Cursor::new(wire);
        assert_eq!(read_frame(&mut cur, 64).unwrap().unwrap(), b"one");
        assert_eq!(read_frame(&mut cur, 64).unwrap().unwrap(), b"two");
        assert!(read_frame(&mut cur, 64).unwrap().is_none());
    }

    #[test]
    fn clean_eof_is_none() {
        let mut cur = Cursor::new(Vec::new());
        assert!(read_frame(&mut cur, 64).unwrap().is_none());
    }

    #[test]
    fn truncated_header_and_payload_are_typed() {
        // Header cut short.
        let mut cur = Cursor::new(vec![0u8, 0]);
        assert!(matches!(
            read_frame(&mut cur, 64),
            Err(FrameError::Truncated { .. })
        ));
        // Payload cut short.
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        wire.truncate(wire.len() - 2);
        let mut cur = Cursor::new(wire);
        assert!(matches!(
            read_frame(&mut cur, 64),
            Err(FrameError::Truncated { expected: 5 })
        ));
    }

    #[test]
    fn oversized_frame_rejected_before_payload_read() {
        let mut wire = Vec::from(encode_len(1 << 30));
        wire.extend_from_slice(b"only a few actual bytes");
        let mut cur = Cursor::new(wire);
        match read_frame(&mut cur, 1 << 10) {
            Err(FrameError::TooLarge { declared, max }) => {
                assert_eq!(declared, 1 << 30);
                assert_eq!(max, 1 << 10);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
        // Nothing past the header was consumed.
        assert_eq!(cur.position(), HEADER_LEN as u64);
    }

    #[test]
    fn len_codec_roundtrips() {
        for n in [0usize, 1, 255, 70_000, DEFAULT_MAX_FRAME_LEN] {
            assert_eq!(decode_len(encode_len(n)), n);
        }
    }
}
