//! A minimal JSON value model, serializer, and parser.
//!
//! Sufficient for corpus interchange (`dbpal_core::io`) and bench
//! reports: the full JSON grammar is accepted on input (nesting capped
//! to keep parsing iterative-stack-safe), and output is deterministic —
//! object members keep insertion order, so exporting the same corpus
//! twice yields byte-identical text.
//!
//! Numbers are carried as `f64`. Integers up to 2⁵³ round-trip exactly
//! and are printed without a fractional part; non-finite values
//! serialize as `null` (matching `serde_json`'s lossy default).

use std::fmt;

/// Maximum array/object nesting depth accepted by the parser.
const MAX_DEPTH: usize = 128;

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; members keep insertion order.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset plus a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Shorthand for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a `Num`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an integer, when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 => {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an `Arr`.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an `Obj`.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Member lookup by key (first match), if this is an `Obj`.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    // ----- serialization --------------------------------------------

    /// Compact rendering (no whitespace).
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    item.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push('}');
            }
        }
    }

    // ----- parsing ---------------------------------------------------

    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.compact())
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    use fmt::Write as _;
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // Rust's shortest-round-trip Display for f64 is valid JSON.
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    use fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is valid UTF-8 (it is a &str) and we only
                // stopped on ASCII boundaries, so this slice is valid.
                out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.err("unescaped control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0C}'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: require \uXXXX low surrogate.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(self.err("invalid low surrogate"));
                        }
                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                    } else {
                        return Err(self.err("unpaired surrogate"));
                    }
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.err("unpaired low surrogate"));
                } else {
                    hi
                };
                out.push(char::from_u32(code).ok_or_else(|| self.err("invalid unicode escape"))?);
            }
            c => return Err(self.err(format!("invalid escape `\\{}`", c as char))),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` or non-zero digit run.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("digit required after decimal point"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("digit required in exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) {
        assert_eq!(&Json::parse(&v.compact()).unwrap(), v);
        assert_eq!(&Json::parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Num(0.0),
            Json::Num(-17.0),
            Json::Num(3.25),
            Json::Num(1e-9),
            Json::Num(123456789012345.0),
            Json::str(""),
            Json::str("plain"),
            Json::str("esc \" \\ \n \r \t \u{08} \u{0C} \u{1} text"),
            Json::str("unicode: μΩ≤ 你好 🚀"),
        ] {
            roundtrip(&v);
        }
    }

    #[test]
    fn containers_round_trip() {
        let v = Json::Obj(vec![
            ("nl".into(), Json::str("show the name")),
            (
                "lemmas".into(),
                Json::Arr(vec![Json::str("show"), Json::str("name")]),
            ),
            ("n".into(), Json::Num(2.0)),
            ("nested".into(), Json::Obj(vec![("x".into(), Json::Null)])),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
        ]);
        roundtrip(&v);
    }

    #[test]
    fn parses_standard_json_inputs() {
        let v = Json::parse(
            r#" { "a" : [ 1 , 2.5 , -3e2 , true , null ] , "b" : "\u0041\ud83d\ude80" } "#,
        )
        .unwrap();
        assert_eq!(v.get("b").unwrap().as_str(), Some("A🚀"));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_i64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_f64(), Some(-300.0));
        assert_eq!(arr[3].as_bool(), Some(true));
        assert_eq!(arr[4], Json::Null);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::Num(42.0).compact(), "42");
        assert_eq!(Json::Num(-1.0).compact(), "-1");
        assert_eq!(Json::Num(0.5).compact(), "0.5");
    }

    #[test]
    fn non_finite_serializes_as_null() {
        assert_eq!(Json::Num(f64::NAN).compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).compact(), "null");
    }

    #[test]
    fn pretty_is_stable_and_indented() {
        let v = Json::Arr(vec![Json::Obj(vec![("k".into(), Json::Num(1.0))])]);
        assert_eq!(v.pretty(), "[\n  {\n    \"k\": 1\n  }\n]");
        assert_eq!(v.pretty(), v.pretty());
    }

    #[test]
    fn malformed_inputs_rejected() {
        for bad in [
            "",
            "not json",
            "{",
            "[1,",
            "[1 2]",
            "{\"a\":}",
            "{\"a\" 1}",
            "{a:1}",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"\\u12",
            "\"\\ud800\"",
            "01",
            "1.",
            "1e",
            "--1",
            "[1] trailing",
            "nul",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted malformed `{bad}`");
        }
    }

    #[test]
    fn deep_nesting_rejected_not_crashing() {
        let deep = "[".repeat(100_000);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn errors_carry_offsets() {
        let e = Json::parse("[1, x]").unwrap_err();
        assert_eq!(e.offset, 4);
        assert!(e.to_string().contains("byte 4"));
    }

    #[test]
    fn object_order_is_preserved() {
        let v = Json::parse(r#"{"z":1,"a":2,"m":3}"#).unwrap();
        let keys: Vec<&str> = v
            .as_obj()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a", "m"]);
    }
}
