//! A zero-dependency observability substrate: counters, fixed-bucket
//! latency histograms, scoped span timers, and a registry with
//! deterministic JSON export.
//!
//! Built for the serving layer (`dbpal-serve`) but shared by the
//! training pipeline and the fuzz driver so one export format covers
//! generation, fuzzing, and serving. Everything is lock-free on the hot
//! path: counters and histogram buckets are atomics, so worker threads
//! record into a shared [`MetricsRegistry`] without coordination.
//!
//! Determinism contract: metric *values* that derive from wall-clock
//! time (bucket occupancy, quantiles, sums) vary run to run, but metric
//! *structure* and every pure counter — including each histogram's
//! observation count — are a function of the workload alone. The
//! registry therefore has two exports:
//!
//! * [`MetricsRegistry::to_json`] — the full picture, timings included;
//! * [`MetricsRegistry::to_json_deterministic`] — counters plus
//!   per-histogram observation counts only, byte-identical for a given
//!   workload at any thread count. CI gates compare this one.
//!
//! Both renderings list metrics in sorted name order, so the same
//! registry state always serializes to the same bytes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::json::Json;

/// A monotonic event counter.
///
/// Relaxed atomics: counts from concurrent workers interleave, but the
/// final total is exact once the work is joined (the registry is only
/// exported between batches, never mid-flight).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Upper bounds (exclusive, in nanoseconds) of the fixed histogram
/// buckets: 1µs doubling to ~8.6s, plus an unbounded overflow bucket.
/// The layout is part of the export format and never changes at
/// runtime, so histograms from different runs are always comparable.
pub const BUCKET_BOUNDS_NS: [u64; 24] = [
    1_000,
    2_000,
    4_000,
    8_000,
    16_000,
    32_000,
    64_000,
    128_000,
    256_000,
    512_000,
    1_024_000,
    2_048_000,
    4_096_000,
    8_192_000,
    16_384_000,
    32_768_000,
    65_536_000,
    131_072_000,
    262_144_000,
    524_288_000,
    1_048_576_000,
    2_097_152_000,
    4_194_304_000,
    8_388_608_000,
];

/// A fixed-bucket latency histogram with quantile estimation.
///
/// Recording is a single relaxed `fetch_add` into the bucket the
/// duration falls in (binary search over [`BUCKET_BOUNDS_NS`]), plus
/// count/sum updates — safe and cheap from any number of threads.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_BOUNDS_NS.len() + 1],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one observation.
    pub fn record(&self, d: Duration) {
        let ns = d.as_nanos().min(u128::from(u64::MAX)) as u64;
        let idx = BUCKET_BOUNDS_NS.partition_point(|&bound| bound <= ns);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Time `f` and record its wall-clock duration.
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.record(start.elapsed());
        out
    }

    /// Start a scoped span that records into this histogram on drop.
    pub fn span(&self) -> Span<'_> {
        Span {
            hist: self,
            start: Instant::now(),
        }
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded durations, in nanoseconds (saturating).
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns.load(Ordering::Relaxed)
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`) as the upper bound of the
    /// bucket containing that rank. Returns `None` when empty. The
    /// overflow bucket reports the largest finite bound.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                let bound = BUCKET_BOUNDS_NS
                    .get(i)
                    .copied()
                    .unwrap_or(BUCKET_BOUNDS_NS[BUCKET_BOUNDS_NS.len() - 1]);
                return Some(Duration::from_nanos(bound));
            }
        }
        None
    }

    /// Bucket occupancy, overflow bucket last.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

/// A scoped timer: measures from creation to drop and records into its
/// histogram. Obtained from [`Histogram::span`].
pub struct Span<'a> {
    hist: &'a Histogram,
    start: Instant,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.hist.record(self.start.elapsed());
    }
}

/// A named collection of counters and histograms with deterministic
/// ordered JSON export.
///
/// `counter`/`histogram` get-or-create by name and hand back an
/// [`Arc`], so hot paths resolve each metric once and then record
/// without touching the registry lock again.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<Vec<(String, Arc<Counter>)>>,
    histograms: Mutex<Vec<(String, Arc<Histogram>)>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut counters = self.counters.lock().expect("metrics counter lock");
        if let Some((_, c)) = counters.iter().find(|(n, _)| n == name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::new());
        counters.push((name.to_string(), Arc::clone(&c)));
        c
    }

    /// The histogram named `name`, created empty on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut histograms = self.histograms.lock().expect("metrics histogram lock");
        if let Some((_, h)) = histograms.iter().find(|(n, _)| n == name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new());
        histograms.push((name.to_string(), Arc::clone(&h)));
        h
    }

    fn sorted_counters(&self) -> Vec<(String, Arc<Counter>)> {
        let mut v = self.counters.lock().expect("metrics counter lock").clone();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    fn sorted_histograms(&self) -> Vec<(String, Arc<Histogram>)> {
        let mut v = self
            .histograms
            .lock()
            .expect("metrics histogram lock")
            .clone();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Full export: counters plus per-histogram count, sum, p50/p95/p99
    /// (nanoseconds), and bucket occupancy. Metric order is sorted by
    /// name; timing values vary run to run.
    pub fn to_json(&self) -> Json {
        let counters = Json::Obj(
            self.sorted_counters()
                .into_iter()
                .map(|(n, c)| (n, Json::Num(c.get() as f64)))
                .collect(),
        );
        let histograms = Json::Obj(
            self.sorted_histograms()
                .into_iter()
                .map(|(n, h)| {
                    let q = |q: f64| {
                        h.quantile(q)
                            .map(|d| Json::Num(d.as_nanos() as f64))
                            .unwrap_or(Json::Null)
                    };
                    let detail = Json::Obj(vec![
                        ("count".into(), Json::Num(h.count() as f64)),
                        ("sum_ns".into(), Json::Num(h.sum_ns() as f64)),
                        ("p50_ns".into(), q(0.50)),
                        ("p95_ns".into(), q(0.95)),
                        ("p99_ns".into(), q(0.99)),
                        (
                            "buckets".into(),
                            Json::Arr(
                                h.bucket_counts()
                                    .into_iter()
                                    .map(|c| Json::Num(c as f64))
                                    .collect(),
                            ),
                        ),
                    ]);
                    (n, detail)
                })
                .collect(),
        );
        Json::Obj(vec![
            ("counters".into(), counters),
            ("histograms".into(), histograms),
        ])
    }

    /// Deterministic export: counters plus per-histogram observation
    /// counts only — no wall-clock-derived value appears, so for a given
    /// workload the output is byte-identical at any worker-thread count.
    pub fn to_json_deterministic(&self) -> Json {
        let counters = Json::Obj(
            self.sorted_counters()
                .into_iter()
                .map(|(n, c)| (n, Json::Num(c.get() as f64)))
                .collect(),
        );
        let histograms = Json::Obj(
            self.sorted_histograms()
                .into_iter()
                .map(|(n, h)| {
                    (
                        n,
                        Json::Obj(vec![("count".into(), Json::Num(h.count() as f64))]),
                    )
                })
                .collect(),
        );
        Json::Obj(vec![
            ("counters".into(), counters),
            ("histograms".into(), histograms),
        ])
    }

    /// A compact human-readable rendering (one line per metric, sorted).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (n, c) in self.sorted_counters() {
            let _ = writeln!(out, "{n} = {}", c.get());
        }
        for (n, h) in self.sorted_histograms() {
            let fmt_q = |q: f64| {
                h.quantile(q)
                    .map(crate::bench::fmt_dur)
                    .unwrap_or_else(|| "-".to_string())
            };
            let _ = writeln!(
                out,
                "{n}: count {} p50 {} p95 {} p99 {}",
                h.count(),
                fmt_q(0.50),
                fmt_q(0.95),
                fmt_q(0.99),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn histogram_records_and_buckets() {
        let h = Histogram::new();
        h.record(Duration::from_micros(3)); // bucket (2µs, 4µs]
        h.record(Duration::from_micros(3));
        h.record(Duration::from_secs(100)); // overflow bucket
        assert_eq!(h.count(), 3);
        let buckets = h.bucket_counts();
        assert_eq!(buckets.len(), BUCKET_BOUNDS_NS.len() + 1);
        assert_eq!(buckets[2], 2);
        assert_eq!(buckets[BUCKET_BOUNDS_NS.len()], 1);
        assert!(h.sum_ns() > 100_000_000_000);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(Duration::from_nanos(1_500)); // (1µs, 2µs]
        }
        h.record(Duration::from_millis(900)); // (512ms, 1.024s]
        assert_eq!(h.quantile(0.5), Some(Duration::from_nanos(2_000)));
        assert_eq!(h.quantile(0.95), Some(Duration::from_nanos(2_000)));
        assert_eq!(h.quantile(1.0), Some(Duration::from_nanos(1_048_576_000)));
        assert_eq!(Histogram::new().quantile(0.5), None);
    }

    #[test]
    fn sub_microsecond_lands_in_first_bucket() {
        let h = Histogram::new();
        h.record(Duration::from_nanos(10));
        assert_eq!(h.bucket_counts()[0], 1);
        assert_eq!(h.quantile(0.5), Some(Duration::from_nanos(1_000)));
    }

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let h = Histogram::new();
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), None);
        }
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum_ns(), 0);
        assert!(h.bucket_counts().iter().all(|&c| c == 0));
    }

    #[test]
    fn single_observation_pins_every_percentile() {
        let h = Histogram::new();
        h.record(Duration::from_nanos(5_000)); // bucket (4µs, 8µs]
        let bound = Some(Duration::from_nanos(8_000));
        assert_eq!(h.quantile(0.50), bound);
        assert_eq!(h.quantile(0.95), bound);
        assert_eq!(h.quantile(0.99), bound);
        // Even q=0 resolves to the only occupied bucket (rank floors at 1).
        assert_eq!(h.quantile(0.0), bound);
    }

    #[test]
    fn exact_bucket_boundary_lands_in_the_next_bucket() {
        // Bounds are exclusive upper: a value exactly equal to a bound
        // belongs to the *following* bucket, so its quantile reports the
        // next bound up. Pin this for the first and an interior bound.
        let h = Histogram::new();
        h.record(Duration::from_nanos(1_000)); // == bounds[0] → bucket 1
        assert_eq!(h.bucket_counts()[1], 1);
        assert_eq!(h.quantile(0.50), Some(Duration::from_nanos(2_000)));

        let h2 = Histogram::new();
        h2.record(Duration::from_nanos(999)); // < bounds[0] → bucket 0
        assert_eq!(h2.bucket_counts()[0], 1);
        assert_eq!(h2.quantile(0.50), Some(Duration::from_nanos(1_000)));

        let h3 = Histogram::new();
        h3.record(Duration::from_nanos(1_048_576_000)); // == bounds[20]
        assert_eq!(h3.bucket_counts()[21], 1);
        assert_eq!(h3.quantile(0.99), Some(Duration::from_nanos(2_097_152_000)));
    }

    #[test]
    fn saturation_at_the_top_bucket_reports_largest_finite_bound() {
        let top = BUCKET_BOUNDS_NS[BUCKET_BOUNDS_NS.len() - 1];
        let h = Histogram::new();
        h.record(Duration::from_nanos(top)); // == last bound → overflow
        h.record(Duration::from_secs(3_600)); // deep overflow
        h.record(Duration::MAX); // nanos clamp to u64::MAX, no panic
        assert_eq!(h.bucket_counts()[BUCKET_BOUNDS_NS.len()], 3);
        // Every percentile saturates to the largest finite bound.
        let sat = Some(Duration::from_nanos(top));
        assert_eq!(h.quantile(0.50), sat);
        assert_eq!(h.quantile(0.95), sat);
        assert_eq!(h.quantile(0.99), sat);
    }

    #[test]
    fn mixed_population_percentile_split_is_exact() {
        // 90 fast + 10 slow observations: p50 reports the fast bucket's
        // bound, p95/p99 the slow one's.
        let h = Histogram::new();
        for _ in 0..90 {
            h.record(Duration::from_nanos(500)); // bucket 0 → bound 1µs
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(3)); // (2.048ms, 4.096ms]
        }
        assert_eq!(h.quantile(0.50), Some(Duration::from_nanos(1_000)));
        assert_eq!(h.quantile(0.90), Some(Duration::from_nanos(1_000)));
        assert_eq!(h.quantile(0.95), Some(Duration::from_nanos(4_096_000)));
        assert_eq!(h.quantile(0.99), Some(Duration::from_nanos(4_096_000)));
    }

    #[test]
    fn span_records_on_drop() {
        let h = Histogram::new();
        {
            let _s = h.span();
        }
        assert_eq!(h.count(), 1);
        let out = h.time(|| 7u8);
        assert_eq!(out, 7);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn registry_get_or_create_shares_state() {
        let reg = MetricsRegistry::new();
        reg.counter("a").inc();
        reg.counter("a").inc();
        assert_eq!(reg.counter("a").get(), 2);
        reg.histogram("h").record(Duration::from_micros(1));
        assert_eq!(reg.histogram("h").count(), 1);
    }

    #[test]
    fn export_is_sorted_and_deterministic() {
        let reg = MetricsRegistry::new();
        reg.counter("z.last").add(9);
        reg.counter("a.first").add(1);
        reg.histogram("m.mid").record(Duration::from_micros(5));
        let doc = reg.to_json_deterministic().pretty();
        let a = doc.find("a.first").unwrap();
        let m = doc.find("m.mid").unwrap();
        let z = doc.find("z.last").unwrap();
        assert!(a < z, "counters not sorted: {doc}");
        assert!(z < m, "histograms must follow counters: {doc}");
        assert_eq!(doc, reg.to_json_deterministic().pretty());
        // The deterministic export never mentions wall-clock fields.
        assert!(!doc.contains("_ns"));
        // The full export carries the timing detail.
        let full = reg.to_json().pretty();
        assert!(full.contains("p95_ns"));
        assert!(full.contains("buckets"));
    }

    #[test]
    fn concurrent_recording_totals_exactly() {
        let reg = MetricsRegistry::new();
        let idxs: Vec<u64> = (0..64).collect();
        crate::par_map_indexed(&idxs, 8, |_, _| {
            reg.counter("hits").inc();
            reg.histogram("lat").record(Duration::from_micros(2));
        });
        assert_eq!(reg.counter("hits").get(), 64);
        assert_eq!(reg.histogram("lat").count(), 64);
    }

    #[test]
    fn deterministic_export_thread_invariant() {
        let run = |threads: usize| {
            let reg = MetricsRegistry::new();
            let idxs: Vec<u64> = (0..40).collect();
            crate::par_map_indexed(&idxs, threads, |i, _| {
                reg.counter(if i % 2 == 0 { "even" } else { "odd" }).inc();
                reg.histogram("work").record(Duration::from_nanos(i as u64));
            });
            reg.to_json_deterministic().pretty()
        };
        assert_eq!(run(1), run(8));
    }
}
