//! A persistent worker pool for the workspace's fan-outs.
//!
//! [`par_map_indexed`](crate::par_map_indexed) spawns and joins a fresh
//! set of scoped threads on every call. That is correct and simple, but
//! on the batch and serving hot paths the spawn/join cost is paid per
//! *stage per batch* — hundreds of times per second — and dominates the
//! work itself for small batches. [`WorkerPool`] moves that cost to
//! process start: helper threads are spawned once and parked on a
//! condvar; each [`WorkerPool::map_indexed`] call installs one job,
//! lets the caller participate alongside the helpers, and returns when
//! every slot is filled.
//!
//! The contract is identical to `par_map_indexed`: results come back in
//! input order, workers pull items off a shared atomic cursor, and the
//! thread count changes only wall-clock time, never output bytes. The
//! scoped-spawn path remains available (and is the fallback whenever the
//! pool is busy or the call is nested inside a pool worker), so every
//! call site degrades gracefully to the poolless behavior.
//!
//! Panic containment: a panic inside the mapped closure is caught, the
//! job is cancelled, and the pool's helper threads survive. The panic
//! surfaces as a typed [`PoolError`] from [`WorkerPool::try_map_indexed`]
//! or is re-raised with its original payload by
//! [`WorkerPool::map_indexed`], matching the scoped path's behavior.

use std::any::Any;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

use crate::par::{auto_threads, par_map_indexed};

/// Typed failure surfaced by [`WorkerPool::try_map_indexed`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// The mapped closure panicked on some item. The pool itself
    /// survives and stays usable; the message is the stringified panic
    /// payload.
    WorkerPanicked(String),
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::WorkerPanicked(msg) => {
                write!(f, "worker panicked while mapping: {msg}")
            }
        }
    }
}

impl std::error::Error for PoolError {}

/// One installed fan-out. The closure reference is lifetime-erased; see
/// the safety argument on [`WorkerPool::try_map_indexed`] for why it is
/// never dereferenced after that call returns.
struct Job {
    run: &'static (dyn Fn(usize) + Sync),
    len: usize,
    /// Work-stealing cursor: each worker claims the next index.
    cursor: AtomicUsize,
    /// Workers (helpers + the installing caller) currently inside the
    /// pull loop. Mutated only under the pool's state lock.
    active: AtomicUsize,
    /// Helpers that have joined this job, capped at `max_helpers` so a
    /// `threads = 2` request on an 8-thread pool uses one helper, not
    /// seven. Mutated only under the pool's state lock.
    joined: AtomicUsize,
    max_helpers: usize,
    /// Set on the first panic; cancels the remaining items.
    panicked: AtomicBool,
    /// The first panic's payload, re-raised or stringified for the
    /// caller.
    payload: Mutex<Option<Box<dyn Any + Send>>>,
}

impl Job {
    /// Pull and run items until the cursor is exhausted or a panic
    /// cancelled the job. Panics in the closure are caught so helper
    /// threads survive.
    fn run_to_completion(&self) {
        loop {
            if self.panicked.load(Ordering::Relaxed) {
                break;
            }
            let i = self.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= self.len {
                break;
            }
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| (self.run)(i))) {
                let mut slot = self.payload.lock().unwrap_or_else(|e| e.into_inner());
                if slot.is_none() {
                    *slot = Some(payload);
                }
                self.panicked.store(true, Ordering::Relaxed);
            }
        }
    }

    /// No unclaimed work remains (all items handed out, or cancelled).
    /// Only meaningful for join/retire decisions under the state lock.
    fn finished(&self) -> bool {
        self.panicked.load(Ordering::Relaxed) || self.cursor.load(Ordering::Relaxed) >= self.len
    }
}

struct State {
    /// The job currently installed, if any. At most one at a time; a
    /// caller finding the slot occupied falls back to scoped spawning.
    job: Option<Arc<Job>>,
    /// Bumped on every install so parked helpers can tell a new job from
    /// a spurious wakeup.
    epoch: u64,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signalled on job install and shutdown.
    work_ready: Condvar,
    /// Signalled when a job retires (last active worker left).
    work_done: Condvar,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Retire one worker from `job`; the last one out clears the install
    /// slot and wakes the caller. Must run with no pull-loop work left.
    fn retire(&self, job: &Arc<Job>) {
        let mut st = self.lock();
        let remaining = job.active.load(Ordering::Relaxed) - 1;
        job.active.store(remaining, Ordering::Relaxed);
        if remaining == 0 {
            debug_assert!(job.finished());
            if let Some(cur) = &st.job {
                if Arc::ptr_eq(cur, job) {
                    st.job = None;
                }
            }
            self.work_done.notify_all();
        }
    }
}

fn helper_loop(shared: &Shared) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.lock();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    if let Some(job) = &st.job {
                        if job.joined.load(Ordering::Relaxed) < job.max_helpers && !job.finished() {
                            job.joined.fetch_add(1, Ordering::Relaxed);
                            job.active.fetch_add(1, Ordering::Relaxed);
                            break job.clone();
                        }
                    }
                }
                st = shared
                    .work_ready
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        job.run_to_completion();
        shared.retire(&job);
    }
}

/// A persistent pool of helper threads for order-preserving fan-outs.
///
/// Spawn once (or use [`WorkerPool::global`]), then call
/// [`map_indexed`](WorkerPool::map_indexed) as many times as you like:
/// the helpers park between jobs instead of being respawned. One job
/// runs at a time; overlapping calls (including calls nested inside a
/// mapped closure, as the hyperparameter sweep does) transparently fall
/// back to the scoped-spawn path.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
}

impl WorkerPool {
    /// A pool offering `threads` total parallelism: the caller
    /// participates in every job, so `threads - 1` helper threads are
    /// spawned. `threads = 0` means [`auto_threads`].
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            auto_threads()
        } else {
            threads
        };
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                job: None,
                epoch: 0,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            work_done: Condvar::new(),
        });
        let handles = (0..threads.saturating_sub(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || helper_loop(&shared))
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            threads,
        }
    }

    /// The process-wide pool, sized to [`auto_threads`] on first use.
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| WorkerPool::new(auto_threads()))
    }

    /// Total parallelism this pool offers (helpers + caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Pool-backed equivalent of [`par_map_indexed`]: map `f` over
    /// `items` with up to `threads` workers, returning results in input
    /// order. Panics (with the original payload) if `f` panics, exactly
    /// like the scoped path; the pool survives either way.
    pub fn map_indexed<T, R, F>(&self, items: &[T], threads: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        match self.run(items, threads, f) {
            Ok(out) => out,
            Err(payload) => resume_unwind(payload),
        }
    }

    /// Like [`map_indexed`](WorkerPool::map_indexed) but a panic inside
    /// `f` surfaces as a typed [`PoolError`] instead of unwinding.
    pub fn try_map_indexed<T, R, F>(
        &self,
        items: &[T],
        threads: usize,
        f: F,
    ) -> Result<Vec<R>, PoolError>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.run(items, threads, f)
            .map_err(|payload| PoolError::WorkerPanicked(payload_message(&payload)))
    }

    fn run<T, R, F>(&self, items: &[T], threads: usize, f: F) -> Result<Vec<R>, Box<dyn Any + Send>>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let threads = threads.max(1).min(items.len().max(1));
        let max_helpers = threads.saturating_sub(1).min(self.handles.len());
        if max_helpers == 0 || items.len() <= 1 {
            // No helper could participate (single-threaded request, a
            // trivial list, or a pool sized for one CPU): run inline.
            return catch_unwind(AssertUnwindSafe(|| {
                items.iter().enumerate().map(|(i, t)| f(i, t)).collect()
            }));
        }

        let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
        out.resize_with(items.len(), || None);
        let writer = SlotWriter {
            base: out.as_mut_ptr(),
        };
        let run = |i: usize| {
            let r = f(i, &items[i]);
            // SAFETY: the cursor hands each index to exactly one worker,
            // so writes to `out` are disjoint; the mutex handshake in
            // `retire` sequences them before the caller reads.
            unsafe { writer.write(i, r) };
        };
        let run_ref: &(dyn Fn(usize) + Sync) = &run;
        // SAFETY: `Job` stores the closure as `&'static`, but every
        // worker that can call it is accounted for in `job.active`, and
        // this function blocks until the job has retired (`active == 0`
        // with the install slot cleared) before `run` goes out of scope.
        // After retirement the reference is never dereferenced again.
        let run_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(run_ref) };
        let job = Arc::new(Job {
            run: run_static,
            len: items.len(),
            cursor: AtomicUsize::new(0),
            active: AtomicUsize::new(1), // the caller
            joined: AtomicUsize::new(0),
            max_helpers,
            panicked: AtomicBool::new(false),
            payload: Mutex::new(None),
        });

        {
            let mut st = self.shared.lock();
            if st.shutdown || st.job.is_some() {
                // Busy (another caller's job, or this call is nested
                // inside one of our own workers): degrade to the scoped
                // fallback rather than queueing, so nesting can never
                // deadlock.
                drop(st);
                return catch_unwind(AssertUnwindSafe(|| par_map_indexed(items, threads, &f)));
            }
            st.job = Some(Arc::clone(&job));
            st.epoch = st.epoch.wrapping_add(1);
            self.shared.work_ready.notify_all();
        }

        job.run_to_completion();
        {
            let mut st = self.shared.lock();
            let remaining = job.active.load(Ordering::Relaxed) - 1;
            job.active.store(remaining, Ordering::Relaxed);
            if remaining == 0 {
                if let Some(cur) = &st.job {
                    if Arc::ptr_eq(cur, &job) {
                        st.job = None;
                    }
                }
            } else {
                while st.job.as_ref().is_some_and(|cur| Arc::ptr_eq(cur, &job))
                    || job.active.load(Ordering::Relaxed) > 0
                {
                    st = self
                        .shared
                        .work_done
                        .wait(st)
                        .unwrap_or_else(|e| e.into_inner());
                }
            }
        }

        let payload = job.payload.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(payload) = payload {
            return Err(payload);
        }
        Ok(out
            .into_iter()
            .map(|r| r.expect("pool worker skipped a slot"))
            .collect())
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.lock();
            st.shutdown = true;
            self.shared.work_ready.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Shared-write window into the caller's result vector. Disjointness of
/// the index set makes concurrent `write`s race-free.
struct SlotWriter<R> {
    base: *mut Option<R>,
}

impl<R> SlotWriter<R> {
    /// SAFETY: callers must pass each `i < len` at most once, and must
    /// sequence all writes before the owning vector is read.
    unsafe fn write(&self, i: usize, value: R) {
        unsafe { *self.base.add(i) = Some(value) };
    }
}

// SAFETY: `SlotWriter` is shared across workers that write disjoint
// slots; `R: Send` is all that moving a value into another thread's
// slot requires.
unsafe impl<R: Send> Sync for SlotWriter<R> {}

fn payload_message(payload: &Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).into()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.as_str().into()
    } else {
        "non-string panic payload".into()
    }
}

/// Map `f` over `items` on the process-wide [`WorkerPool::global`] pool.
/// Drop-in replacement for [`par_map_indexed`] at call sites that have
/// no configuration to thread a pool handle through.
pub fn pooled_map_indexed<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    WorkerPool::global().map_indexed(items, threads, f)
}

/// How a pipeline or service executes its fan-outs. Defaults to the
/// process-wide persistent pool; `Scoped` restores the PR-2 era
/// spawn-per-call behavior, and `Pool` pins a caller-owned pool (used by
/// tests to exercise specific pool sizes).
#[derive(Clone, Default)]
pub enum ParStrategy {
    /// Use [`WorkerPool::global`].
    #[default]
    GlobalPool,
    /// Use a specific shared pool.
    Pool(Arc<WorkerPool>),
    /// Spawn scoped threads per call ([`par_map_indexed`]).
    Scoped,
}

impl ParStrategy {
    /// Run one fan-out under this strategy. All strategies share the
    /// `par_map_indexed` contract: input order preserved, output bytes
    /// independent of `threads`.
    pub fn map_indexed<T, R, F>(&self, items: &[T], threads: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        match self {
            ParStrategy::GlobalPool => WorkerPool::global().map_indexed(items, threads, f),
            ParStrategy::Pool(pool) => pool.map_indexed(items, threads, f),
            ParStrategy::Scoped => par_map_indexed(items, threads, f),
        }
    }
}

impl fmt::Debug for ParStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParStrategy::GlobalPool => write!(f, "GlobalPool"),
            ParStrategy::Pool(p) => write!(f, "Pool(threads={})", p.threads()),
            ParStrategy::Scoped => write!(f, "Scoped"),
        }
    }
}

impl PartialEq for ParStrategy {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (ParStrategy::GlobalPool, ParStrategy::GlobalPool) => true,
            (ParStrategy::Scoped, ParStrategy::Scoped) => true,
            (ParStrategy::Pool(a), ParStrategy::Pool(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_scoped_results() {
        let pool = WorkerPool::new(4);
        let items: Vec<u64> = (0..100).collect();
        for threads in [1, 2, 4, 9] {
            let pooled = pool.map_indexed(&items, threads, |i, &x| i as u64 + x * 3);
            let scoped = par_map_indexed(&items, threads, |i, &x| i as u64 + x * 3);
            assert_eq!(pooled, scoped);
        }
    }

    #[test]
    fn reusable_across_calls() {
        let pool = WorkerPool::new(3);
        for round in 0..5u64 {
            let items: Vec<u64> = (0..37).collect();
            let out = pool.map_indexed(&items, 3, |_, &x| x + round);
            assert_eq!(out, items.iter().map(|x| x + round).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_singleton() {
        let pool = WorkerPool::new(4);
        let empty: Vec<u8> = vec![];
        assert!(pool.map_indexed(&empty, 4, |_, x| *x).is_empty());
        assert_eq!(pool.map_indexed(&[7u8], 4, |_, x| *x + 1), vec![8]);
    }

    #[test]
    fn panic_is_typed_and_pool_survives() {
        let pool = WorkerPool::new(4);
        let items: Vec<u32> = (0..64).collect();
        let err = pool
            .try_map_indexed(&items, 4, |_, &x| {
                if x == 13 {
                    panic!("unlucky item");
                }
                x
            })
            .unwrap_err();
        match &err {
            PoolError::WorkerPanicked(msg) => assert!(msg.contains("unlucky")),
        }
        // The pool is still fully usable afterwards.
        let ok = pool.try_map_indexed(&items, 4, |_, &x| x * 2).unwrap();
        assert_eq!(ok, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn nested_calls_fall_back() {
        let pool = WorkerPool::new(4);
        let outer: Vec<u32> = (0..8).collect();
        let out = pool.map_indexed(&outer, 4, |_, &x| {
            let inner: Vec<u32> = (0..5).collect();
            pool.map_indexed(&inner, 4, |_, &y| y + x)
                .iter()
                .sum::<u32>()
        });
        let expect: Vec<u32> = outer.iter().map(|&x| (0..5).map(|y| y + x).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn strategy_equality_and_debug() {
        let a = ParStrategy::GlobalPool;
        assert_eq!(a, ParStrategy::default());
        assert_ne!(ParStrategy::Scoped, ParStrategy::GlobalPool);
        let p = Arc::new(WorkerPool::new(2));
        assert_eq!(ParStrategy::Pool(Arc::clone(&p)), ParStrategy::Pool(p));
        assert_eq!(format!("{:?}", ParStrategy::Scoped), "Scoped");
    }
}
