//! String interning for the per-query hot path.
//!
//! The anonymize → lemmatize → translate path used to shuttle every
//! token around as an owned `String`, cloning on each hand-off. A
//! [`Vocab`] assigns each distinct string a stable [`Sym`] (a `u32`
//! id), so the hot path can compare, hash, and copy tokens as plain
//! integers and only materialize text when an answer leaves the system.
//!
//! Invariants:
//!
//! - **Injective**: distinct strings get distinct `Sym`s, and the same
//!   string always gets the same `Sym` back (per vocab, for its whole
//!   lifetime). There is no collision case to handle — the table is
//!   exact, not hashed-and-hoped.
//! - **Append-only**: entries are never removed or mutated, so a
//!   resolved `&str` stays valid for as long as the vocab itself.
//! - **`Sym`s are vocab-local**: ids from different vocabs are not
//!   comparable. Values depend on first-intern order, which can differ
//!   run to run under concurrency — ids must therefore never appear in
//!   any exported artifact. Everything user- or disk-visible resolves
//!   back to text first, which is why interning is invisible to the
//!   determinism goldens.

use std::collections::HashMap;
use std::sync::{OnceLock, RwLock};

/// An interned string id. `Copy`, 4 bytes, and cheap to compare — the
/// whole point. Only meaningful to the [`Vocab`] that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(u32);

impl Sym {
    /// The raw id (the index into the issuing vocab's table).
    pub fn raw(self) -> u32 {
        self.0
    }
}

#[derive(Default)]
struct Inner {
    map: HashMap<Box<str>, u32>,
    /// Index = `Sym` id. Boxed so the character data has a stable heap
    /// address across table growth (see [`Vocab::resolve`]).
    strings: Vec<Box<str>>,
}

/// A thread-safe, append-only string interner.
///
/// `intern` is read-mostly: once a token has been seen, later interns
/// take only the read lock. Lookups of never-interned strings never
/// mutate, so [`Vocab::lookup`] is safe on shared-nothing read paths.
#[derive(Default)]
pub struct Vocab {
    inner: RwLock<Inner>,
}

impl Vocab {
    /// An empty vocabulary.
    pub fn new() -> Self {
        Vocab::default()
    }

    /// The process-wide shared table used by the serving hot path.
    pub fn global() -> &'static Vocab {
        static GLOBAL: OnceLock<Vocab> = OnceLock::new();
        GLOBAL.get_or_init(Vocab::new)
    }

    /// The id for `s`, interning it if new.
    pub fn intern(&self, s: &str) -> Sym {
        {
            let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
            if let Some(&id) = inner.map.get(s) {
                return Sym(id);
            }
        }
        let mut inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        if let Some(&id) = inner.map.get(s) {
            return Sym(id); // raced with another writer
        }
        let id = u32::try_from(inner.strings.len()).expect("vocab overflow");
        let boxed: Box<str> = s.into();
        inner.strings.push(boxed.clone());
        inner.map.insert(boxed, id);
        Sym(id)
    }

    /// The id for `s` if it has already been interned; never mutates.
    pub fn lookup(&self, s: &str) -> Option<Sym> {
        let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
        inner.map.get(s).copied().map(Sym)
    }

    /// The string behind `sym`.
    ///
    /// Panics if `sym` came from a different vocab (an id past the end
    /// of the table) — that is a programming error, not an input error.
    pub fn resolve(&self, sym: Sym) -> &str {
        let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
        let ptr: *const str = &*inner.strings[sym.0 as usize];
        // SAFETY: the table is append-only — `Box<str>` entries are
        // never dropped, shrunk, or mutated while the vocab lives, and
        // the boxed character data does not move when `strings` grows.
        // Extending the borrow from the guard's lifetime to `&self` is
        // therefore sound.
        unsafe { &*ptr }
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
        inner.strings.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Intern every word of `words`, appending the ids to `out` (a
    /// reusable per-worker scratch buffer on the batch path).
    pub fn intern_all<S: AsRef<str>>(&self, words: &[S], out: &mut Vec<Sym>) {
        out.reserve(words.len());
        for w in words {
            out.push(self.intern(w.as_ref()));
        }
    }
}

impl std::fmt::Debug for Vocab {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Vocab(len={})", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let v = Vocab::new();
        let a = v.intern("select");
        let b = v.intern("count");
        assert_eq!(v.resolve(a), "select");
        assert_eq!(v.resolve(b), "count");
    }

    #[test]
    fn same_string_same_sym() {
        let v = Vocab::new();
        assert_eq!(v.intern("patient"), v.intern("patient"));
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn distinct_strings_distinct_syms() {
        let v = Vocab::new();
        let a = v.intern("age");
        let b = v.intern("name");
        assert_ne!(a, b);
    }

    #[test]
    fn lookup_never_interns() {
        let v = Vocab::new();
        assert_eq!(v.lookup("ghost"), None);
        assert_eq!(v.len(), 0);
        let s = v.intern("ghost");
        assert_eq!(v.lookup("ghost"), Some(s));
    }

    #[test]
    fn resolve_survives_growth() {
        let v = Vocab::new();
        let first = v.intern("zero");
        let text = v.resolve(first);
        for i in 0..10_000 {
            v.intern(&format!("word{i}"));
        }
        assert_eq!(text, "zero");
        assert_eq!(v.resolve(first), "zero");
    }

    #[test]
    fn intern_all_appends() {
        let v = Vocab::new();
        let mut out = Vec::new();
        v.intern_all(&["a", "b", "a"], &mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], out[2]);
        assert_ne!(out[0], out[1]);
    }

    #[test]
    fn empty_string_is_a_valid_entry() {
        let v = Vocab::new();
        let e = v.intern("");
        assert_eq!(v.resolve(e), "");
        assert_eq!(v.lookup(""), Some(e));
    }
}
