//! Structured, redacting log lines for the serving layer.
//!
//! One log event is one single-line JSON object (insertion-ordered
//! members via [`Json::Obj`], so lines are deterministic for a given
//! field sequence). There is deliberately **no wall-clock timestamp**:
//! the workspace's determinism contract bans time reads outside the
//! bench/metrics allowlist, and a logical sequence number (the caller
//! supplies it) orders events just as well for tests and replay.
//!
//! # Redaction
//!
//! Served questions contain user data — names, ages, diseases in the
//! running hospital example — and such constants must never reach a log
//! file verbatim. Two redaction levels:
//!
//! * [`redact_text`] masks the *constants* of a question while keeping
//!   its shape: digit runs become `<num>`, quoted spans become `<str>`,
//!   and tokens carrying an uppercase letter (proper nouns — the only
//!   way entity constants appear in our question grammar) become
//!   `<name>`. "Show me all patients with age 80" logs as
//!   `<name> me all patients with age <num>` — the template survives,
//!   the values do not.
//! * [`redact_secret`] masks a value entirely, leaving only its length
//!   (`<redacted:12>`), for credentials and other fields whose shape is
//!   itself sensitive.

use std::fmt;

use crate::json::Json;

/// A structured log event: an ordered list of fields rendered as one
/// compact JSON line. The constructor's `event` name is always the
/// first field, so lines grep cleanly by kind.
#[derive(Debug, Clone)]
pub struct LogEvent {
    fields: Vec<(String, Json)>,
}

impl LogEvent {
    /// A new event of the given kind.
    pub fn new(event: &str) -> Self {
        LogEvent {
            fields: vec![("event".to_string(), Json::str(event))],
        }
    }

    /// Append a string field, verbatim. Never pass user data here —
    /// use [`LogEvent::text`] or [`LogEvent::secret`] for that.
    pub fn field(mut self, key: &str, value: impl Into<String>) -> Self {
        self.fields.push((key.to_string(), Json::Str(value.into())));
        self
    }

    /// Append a numeric field.
    pub fn num(mut self, key: &str, value: impl Into<f64>) -> Self {
        self.fields.push((key.to_string(), Json::Num(value.into())));
        self
    }

    /// Append a boolean field.
    pub fn flag(mut self, key: &str, value: bool) -> Self {
        self.fields.push((key.to_string(), Json::Bool(value)));
        self
    }

    /// Append user-provided text with constants masked ([`redact_text`]).
    pub fn text(self, key: &str, value: &str) -> Self {
        let masked = redact_text(value);
        self.field(key, masked)
    }

    /// Append a fully masked value ([`redact_secret`]).
    pub fn secret(self, key: &str, value: &str) -> Self {
        let masked = redact_secret(value);
        self.field(key, masked)
    }

    /// The single-line JSON rendering.
    pub fn to_line(&self) -> String {
        Json::Obj(self.fields.clone()).compact()
    }
}

impl fmt::Display for LogEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_line())
    }
}

/// Mask the constants of free text, keeping its shape: digit runs →
/// `<num>`, quoted spans → `<str>`, tokens containing an uppercase
/// letter → `<name>` (trailing ASCII punctuation survives). See the
/// module docs for the rationale.
pub fn redact_text(text: &str) -> String {
    // Pass 1, character-level: quoted spans and digit runs.
    let mut pass1 = String::with_capacity(text.len());
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' | '\'' => {
                // Consume to the matching quote (or end of input —
                // an unterminated quote still hides its contents).
                for q in chars.by_ref() {
                    if q == c {
                        break;
                    }
                }
                pass1.push_str("<str>");
            }
            _ if c.is_ascii_digit() => {
                // A digit run; a dot is part of the run only when a
                // digit follows it ("80.5" masks whole, "80." does not).
                while let Some(&n) = chars.peek() {
                    if n.is_ascii_digit() {
                        chars.next();
                    } else if n == '.' {
                        let mut ahead = chars.clone();
                        ahead.next();
                        if matches!(ahead.peek(), Some(d) if d.is_ascii_digit()) {
                            chars.next();
                        } else {
                            break;
                        }
                    } else {
                        break;
                    }
                }
                pass1.push_str("<num>");
            }
            _ => pass1.push(c),
        }
    }
    // Pass 2, token-level: anything with an uppercase letter is a
    // proper noun (entity constant) in our question grammar.
    pass1
        .split(' ')
        .map(|tok| {
            if tok.chars().any(|c| c.is_uppercase()) && !tok.contains('<') {
                let trailing: String = tok
                    .chars()
                    .rev()
                    .take_while(|c| c.is_ascii_punctuation())
                    .collect::<Vec<_>>()
                    .into_iter()
                    .rev()
                    .collect();
                format!("<name>{trailing}")
            } else {
                tok.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// Mask a value entirely, leaving only its character count.
pub fn redact_secret(value: &str) -> String {
    format!("<redacted:{}>", value.chars().count())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_renders_one_json_line() {
        let line = LogEvent::new("request")
            .num("seq", 7u32)
            .field("op", "query")
            .flag("ok", true)
            .to_line();
        assert_eq!(
            line,
            r#"{"event":"request","seq":7,"op":"query","ok":true}"#
        );
        assert!(!line.contains('\n'));
    }

    #[test]
    fn text_field_masks_constants() {
        let line = LogEvent::new("request")
            .text("q", "Show me the name of all patients with age 80")
            .to_line();
        assert!(!line.contains("80"), "age constant leaked: {line}");
        assert!(!line.contains("Show"), "proper-noun token leaked: {line}");
        assert!(line.contains("patients"), "shape lost: {line}");
    }

    #[test]
    fn redact_text_masks_numbers_strings_names() {
        assert_eq!(
            redact_text("patients with age 80.5 named 'Ann'"),
            "patients with age <num> named <str>"
        );
        assert_eq!(redact_text("doctor House? yes"), "doctor <name>? yes");
        // Unterminated quotes still hide everything after them.
        assert_eq!(redact_text("password \"hunter"), "password <str>");
    }

    #[test]
    fn redact_text_leaves_plain_shape_words() {
        assert_eq!(
            redact_text("how many patients have influenza"),
            "how many patients have influenza"
        );
    }

    #[test]
    fn redact_secret_leaves_only_length() {
        assert_eq!(redact_secret("hunter2"), "<redacted:7>");
        assert_eq!(redact_secret(""), "<redacted:0>");
    }

    #[test]
    fn lines_are_deterministic() {
        let build = || {
            LogEvent::new("drain")
                .num("inflight", 3u32)
                .flag("accepting", false)
                .to_line()
        };
        assert_eq!(build(), build());
    }
}
