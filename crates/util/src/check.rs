//! A seeded, shrink-free property-testing harness.
//!
//! Each property runs `cases()` times. Case `i` gets its own [`Rng`]
//! seeded from `base_seed ⊕ splitmix64(i)`, so every case is
//! independently reproducible: when an assertion fails the harness
//! prints the property name and the failing case seed, and setting
//! `DBPAL_CHECK_REPLAY=<seed>` reruns exactly that case.
//!
//! Environment knobs:
//!
//! | variable | effect | default |
//! |----------|--------|---------|
//! | `DBPAL_CHECK_CASES` | cases per property | 64 |
//! | `DBPAL_CHECK_SEED` | base seed for the run | `0x000D_BA17` |
//! | `DBPAL_CHECK_REPLAY` | run only this one case seed | unset |
//!
//! There is no shrinking: generators here are small and hand-written,
//! so re-running the failing seed under a debugger is the intended
//! workflow (the seed is the minimal counterexample handle).

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::rng::{splitmix64, Rng};

/// Default cases per property when `DBPAL_CHECK_CASES` is unset.
pub const DEFAULT_CASES: usize = 64;

/// Default base seed when `DBPAL_CHECK_SEED` is unset.
pub const DEFAULT_SEED: u64 = 0x000D_BA17;

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Cases per property for this run (`DBPAL_CHECK_CASES`, default 64).
pub fn cases() -> usize {
    env_u64("DBPAL_CHECK_CASES")
        .map(|n| n as usize)
        .unwrap_or(DEFAULT_CASES)
}

/// Base seed for this run (`DBPAL_CHECK_SEED`, default [`DEFAULT_SEED`]).
pub fn base_seed() -> u64 {
    env_u64("DBPAL_CHECK_SEED").unwrap_or(DEFAULT_SEED)
}

/// Run `prop` over seeded cases, reporting the failing seed on panic.
///
/// Prefer the [`forall!`](crate::forall) macro, which fills in the
/// property name. `case_count` mirrors the suite's legacy `proptest`
/// configuration; `DBPAL_CHECK_CASES`, when set, overrides it globally.
pub fn forall_named(name: &str, case_count: usize, mut prop: impl FnMut(&mut Rng)) {
    let base = base_seed();
    if let Some(replay) = env_u64("DBPAL_CHECK_REPLAY") {
        eprintln!("[dbpal-check] {name}: replaying case seed {replay:#x}");
        let mut rng = Rng::seed_from_u64(replay);
        prop(&mut rng);
        return;
    }
    let n = env_u64("DBPAL_CHECK_CASES")
        .map(|v| v as usize)
        .unwrap_or(case_count);
    for i in 0..n {
        let mut salt = i as u64;
        let case_seed = base ^ splitmix64(&mut salt);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut rng = Rng::seed_from_u64(case_seed);
            prop(&mut rng);
        }));
        if let Err(payload) = result {
            eprintln!(
                "[dbpal-check] property `{name}` failed on case {i}/{n} \
                 (case seed {case_seed:#x}; rerun with DBPAL_CHECK_REPLAY={case_seed})"
            );
            resume_unwind(payload);
        }
    }
}

/// Run a property over seeded random cases.
///
/// ```
/// use dbpal_util::{forall, Rng};
///
/// forall!(|rng| {
///     let n = rng.gen_range(0u32..1000);
///     assert_eq!(n.wrapping_add(1).wrapping_sub(1), n);
/// });
///
/// // With an explicit case count (overrides the default of 64):
/// forall!(cases = 256, |rng| {
///     let s = dbpal_util::check::ascii_lowercase(rng, 1..=8);
///     assert!(!s.is_empty());
/// });
/// ```
#[macro_export]
macro_rules! forall {
    (cases = $n:expr, |$rng:ident| $body:expr) => {
        $crate::check::forall_named(
            concat!(module_path!(), ":", line!()),
            $n,
            |$rng: &mut $crate::Rng| $body,
        )
    };
    (|$rng:ident| $body:expr) => {
        $crate::forall!(cases = $crate::check::DEFAULT_CASES, |$rng| $body)
    };
}

// ----- generator helpers for ported suites ------------------------------

/// A string of `len` characters drawn uniformly from `alphabet`.
pub fn string_from(
    rng: &mut Rng,
    alphabet: &[char],
    len: impl crate::rng::SampleRange<usize>,
) -> String {
    let n = rng.gen_range(len);
    (0..n)
        .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
        .collect()
}

/// A `[a-z]{len}` string (uniform per character).
pub fn ascii_lowercase(rng: &mut Rng, len: impl crate::rng::SampleRange<usize>) -> String {
    const ALPHA: &[char] = &[
        'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i', 'j', 'k', 'l', 'm', 'n', 'o', 'p', 'q', 'r',
        's', 't', 'u', 'v', 'w', 'x', 'y', 'z',
    ];
    string_from(rng, ALPHA, len)
}

/// A `[a-z][a-z0-9_]{rest}` identifier-shaped string.
pub fn identifier(rng: &mut Rng, rest: impl crate::rng::SampleRange<usize>) -> String {
    const HEAD: &[char] = &[
        'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i', 'j', 'k', 'l', 'm', 'n', 'o', 'p', 'q', 'r',
        's', 't', 'u', 'v', 'w', 'x', 'y', 'z',
    ];
    const TAIL: &[char] = &[
        'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i', 'j', 'k', 'l', 'm', 'n', 'o', 'p', 'q', 'r',
        's', 't', 'u', 'v', 'w', 'x', 'y', 'z', '0', '1', '2', '3', '4', '5', '6', '7', '8', '9',
        '_',
    ];
    let mut s = String::new();
    s.push(HEAD[rng.gen_range(0..HEAD.len())]);
    s.push_str(&string_from(rng, TAIL, rest));
    s
}

/// A `Vec` of `len` elements produced by `gen`.
pub fn vec_of<T>(
    rng: &mut Rng,
    len: impl crate::rng::SampleRange<usize>,
    mut gen: impl FnMut(&mut Rng) -> T,
) -> Vec<T> {
    let n = rng.gen_range(len);
    (0..n).map(|_| gen(rng)).collect()
}

/// One of the listed weights' indices, chosen proportionally — the
/// moral equivalent of `proptest`'s `prop_oneof![w1 => .., w2 => ..]`.
pub fn weighted_index(rng: &mut Rng, weights: &[u32]) -> usize {
    let total: u64 = weights.iter().map(|&w| w as u64).sum();
    assert!(total > 0, "weighted_index: all weights zero");
    let mut roll = rng.gen_range(0..total);
    for (i, &w) in weights.iter().enumerate() {
        if roll < w as u64 {
            return i;
        }
        roll -= w as u64;
    }
    unreachable!()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forall_runs_every_case() {
        let mut count = 0usize;
        forall_named("counting", 10, |_rng| count += 1);
        if std::env::var("DBPAL_CHECK_CASES").is_err() {
            assert_eq!(count, 10);
        }
    }

    #[test]
    fn cases_are_reproducible_across_runs() {
        let mut first: Vec<u64> = Vec::new();
        forall_named("record", 5, |rng| first.push(rng.next_u64()));
        let mut second: Vec<u64> = Vec::new();
        forall_named("record", 5, |rng| second.push(rng.next_u64()));
        assert_eq!(first, second);
    }

    #[test]
    fn cases_differ_from_each_other() {
        let mut seen = std::collections::HashSet::new();
        forall_named("distinct", 16, |rng| {
            seen.insert(rng.next_u64());
        });
        assert!(seen.len() > 1, "all cases drew the same first word");
    }

    #[test]
    fn failure_reports_seed_and_propagates() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            forall_named("always-fails", 3, |_rng| panic!("boom"));
        }));
        assert!(result.is_err(), "failure must propagate to the test runner");
    }

    #[test]
    fn forall_macro_compiles_both_forms() {
        crate::forall!(|rng| {
            let v = rng.gen_range(0u8..10);
            assert!(v < 10);
        });
        crate::forall!(cases = 4, |rng| {
            let _ = rng.gen_bool(0.5);
        });
    }

    #[test]
    fn string_helpers_match_their_classes() {
        crate::forall!(cases = 32, |rng| {
            let s = ascii_lowercase(rng, 1..=8);
            assert!((1..=8).contains(&s.chars().count()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));

            let id = identifier(rng, 0..7);
            assert!(id.chars().next().unwrap().is_ascii_lowercase());
            assert!(id
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        });
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = Rng::seed_from_u64(31);
        let mut counts = [0usize; 3];
        for _ in 0..9000 {
            counts[weighted_index(&mut rng, &[1, 8, 1])] += 1;
        }
        assert!(
            counts[1] > counts[0] * 4,
            "middle arm underdrawn: {counts:?}"
        );
        assert!(
            counts[1] > counts[2] * 4,
            "middle arm underdrawn: {counts:?}"
        );
        assert!(counts[0] > 0 && counts[2] > 0);
    }

    #[test]
    fn vec_of_length_in_range() {
        crate::forall!(cases = 16, |rng| {
            let v = vec_of(rng, 0..40, |r| r.gen_range(-50i64..50));
            assert!(v.len() < 40);
            assert!(v.iter().all(|x| (-50..50).contains(x)));
        });
    }
}
