//! # dbpal-util — the hermetic substrate of the DBPal workspace
//!
//! Every crate in this workspace needs a little randomness, a little
//! JSON, a property-test runner, and a stopwatch — and nothing else from
//! the outside world. DBPal's pipeline is deterministic and
//! self-contained by design (schema-only input, seeded template
//! instantiation, paper §3), so the reproduction builds and tests from
//! this repository alone: `cargo build --release --offline && cargo test
//! -q --offline` must succeed with an empty registry cache.
//!
//! | module | replaces | contents |
//! |--------|----------|----------|
//! | [`rng`] | `rand` | splitmix64-seeded xoshiro256** ([`Rng`], [`SliceRandom`], [`stream_seed`]) |
//! | [`json`] | `serde`/`serde_json` | [`Json`] value model, parser, serializer |
//! | [`check`] | `proptest` | seeded [`forall!`] property runner |
//! | [`bench`] | `criterion` | warmup + median-of-N wall-clock harness |
//! | [`par`] | `rayon` | order-preserving scoped-pool map ([`par_map_indexed`]) |
//! | [`pool`] | `rayon` thread pool | persistent [`WorkerPool`], [`ParStrategy`] fan-out handle |
//! | [`intern`] | `string-interner` | [`Vocab`] string table with `u32` [`Sym`] ids |
//! | [`metrics`] | `prometheus`/`metrics` | counters, latency histograms, span timers, [`MetricsRegistry`] |
//! | [`frame`] | `tokio-util` codecs | length-delimited framing over byte streams |
//! | [`log`] | `tracing`/`slog` | one-line JSON [`LogEvent`]s with value/secret redaction |
//! | [`hash`] | `fnv` | stable FNV-1a content digests ([`fnv1a`], incremental [`Fnv1a`]) |
//! | [`mem`] | `procfs` | [`resident_bytes`] probe for memory-ceiling gates |
//!
//! All randomness is reproducible: the same seed yields the same stream
//! on every platform, forever — the workspace owns the generator, so no
//! upstream algorithm change can silently reshuffle a corpus.

pub mod bench;
pub mod check;
pub mod frame;
pub mod hash;
pub mod intern;
pub mod json;
pub mod log;
pub mod mem;
pub mod metrics;
pub mod par;
pub mod pool;
pub mod rng;

pub use frame::FrameError;
pub use hash::{fnv1a, Fnv1a};
pub use intern::{Sym, Vocab};
pub use json::{Json, JsonError};
pub use log::LogEvent;
pub use mem::resident_bytes;
pub use metrics::{Counter, Histogram, MetricsRegistry};
pub use par::{auto_threads, par_map_indexed};
pub use pool::{pooled_map_indexed, ParStrategy, PoolError, WorkerPool};
pub use rng::{stream_seed, Rng, SliceRandom};
