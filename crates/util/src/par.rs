//! Deterministic fan-out over a fixed work list.
//!
//! [`par_map_indexed`] is the one concurrency primitive the workspace
//! needs: map a function over a slice on a scoped worker pool and return
//! the results **in input order**, regardless of how the items were
//! scheduled. Combined with per-item RNG re-keying
//! ([`crate::rng::stream_seed`]) this makes every parallel pipeline
//! stage a pure function of its inputs: the thread count changes only
//! wall-clock time, never output bytes.
//!
//! Workers pull items off a shared atomic cursor (work stealing by
//! index), so uneven per-item cost — some seed templates produce far
//! more instances than others — balances automatically.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The number of worker threads to use for `threads = 0` ("auto"):
/// everything the OS will give us.
pub fn auto_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Map `f` over `items` on `threads` scoped workers, returning results
/// in input order. `f` receives `(index, &item)` so callers can key
/// per-item randomness off the stable input position.
///
/// `threads` is clamped to `[1, items.len()]`; `threads == 1` (or a
/// trivial list) runs inline with no thread machinery at all, making
/// the single-threaded path identical to a plain iterator map.
pub fn par_map_indexed<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    let slots: Vec<Mutex<&mut Option<R>>> = out.iter_mut().map(Mutex::new).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(i, &items[i]);
                **slots[i].lock().expect("par_map slot lock") = Some(r);
            });
        }
    });
    drop(slots);
    out.into_iter()
        .map(|r| r.expect("par_map worker skipped a slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        for threads in [1, 2, 7] {
            let out = par_map_indexed(&items, threads, |i, &x| {
                assert_eq!(i as u64, x);
                x * 3
            });
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let items: Vec<u32> = (0..57).collect();
        let f = |i: usize, x: &u32| format!("{i}:{x}");
        let one = par_map_indexed(&items, 1, f);
        let four = par_map_indexed(&items, 4, f);
        let many = par_map_indexed(&items, 16, f);
        assert_eq!(one, four);
        assert_eq!(one, many);
    }

    #[test]
    fn handles_empty_and_singleton() {
        let empty: Vec<u8> = vec![];
        assert!(par_map_indexed(&empty, 4, |_, x| *x).is_empty());
        assert_eq!(par_map_indexed(&[9u8], 4, |_, x| *x + 1), vec![10]);
    }

    #[test]
    fn oversized_thread_request_is_clamped() {
        let items = [1u8, 2, 3];
        assert_eq!(par_map_indexed(&items, 999, |_, x| *x), vec![1, 2, 3]);
    }

    #[test]
    fn auto_threads_is_positive() {
        assert!(auto_threads() >= 1);
    }
}
