//! Seeded deterministic pseudo-randomness.
//!
//! The generator is xoshiro256\*\* (Blackman & Vigna), seeded through
//! splitmix64 so that *any* `u64` — including 0 — yields a well-mixed
//! state. Both algorithms are public-domain reference constructions;
//! implementing them here (~30 lines) keeps the random streams under
//! this repository's control: corpora generated with a given seed are
//! byte-stable across platforms and toolchain upgrades.
//!
//! The surface mirrors the subset of `rand` the workspace uses:
//! [`Rng::gen_range`] over integer and float ranges, [`Rng::gen_bool`],
//! and the [`SliceRandom`] extension trait (`choose`, `choose_multiple`,
//! `shuffle`).

/// One round of splitmix64: mixes a 64-bit state into an output word.
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive the seed of an independent child stream from a base seed and a
/// stream index.
///
/// Both words go through full splitmix64 rounds before they are combined,
/// so — unlike the additive `base + stream` scheme — adjacent pairs such
/// as `(base, i + 1)` and `(base + 1, i)` land on unrelated streams
/// instead of colliding. Used to re-key parallel work units (one stream
/// per seed template, per augmented pair, per schema) so the merged
/// output is byte-identical no matter how the units are scheduled.
pub fn stream_seed(base: u64, stream: u64) -> u64 {
    let mut s = base;
    let mixed_base = splitmix64(&mut s);
    let mut t = mixed_base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    splitmix64(&mut t)
}

/// A seeded xoshiro256\*\* generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Create a generator on the child stream `(base, stream)` derived by
    /// [`stream_seed`] — shorthand for re-keying one parallel work unit.
    pub fn for_stream(base: u64, stream: u64) -> Self {
        Rng::seed_from_u64(stream_seed(base, stream))
    }

    /// Create a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next raw 64-bit word of the stream.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` (53 bits of precision).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f32` in `[0, 1)` (24 bits of precision).
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// A uniform integer in `[0, n)` without modulo bias
    /// (Lemire's multiply-shift reduction).
    #[inline]
    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A uniform value in `range` (`a..b` or `a..=b`, ints or floats).
    ///
    /// Panics on an empty range, matching `rand`'s contract.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one uniform value.
    fn sample(self, rng: &mut Rng) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                // Two's-complement subtraction gives the span for both
                // signed and unsigned types up to 64 bits.
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.below(span)) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut Rng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full 64-bit domain.
                    return rng.next_u64() as $t;
                }
                (start as u64).wrapping_add(rng.below(span)) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty => $unit:ident),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + rng.$unit() * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut Rng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                start + rng.$unit() * (end - start)
            }
        }
    )*};
}

impl_float_range!(f32 => next_f32, f64 => next_f64);

/// Random selection and permutation over slices, in the method-call
/// style (`slice.choose(&mut rng)`) the call sites already use.
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// A uniformly chosen element, or `None` when empty.
    fn choose<'a>(&'a self, rng: &mut Rng) -> Option<&'a Self::Item>;

    /// `amount` distinct elements in random order (all of them when the
    /// slice is shorter).
    fn choose_multiple<'a>(
        &'a self,
        rng: &mut Rng,
        amount: usize,
    ) -> std::vec::IntoIter<&'a Self::Item>;

    /// Uniform in-place Fisher–Yates shuffle.
    fn shuffle(&mut self, rng: &mut Rng);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<'a>(&'a self, rng: &mut Rng) -> Option<&'a T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn choose_multiple<'a>(&'a self, rng: &mut Rng, amount: usize) -> std::vec::IntoIter<&'a T> {
        let amount = amount.min(self.len());
        // Partial Fisher–Yates over indices: the first `amount` swaps
        // fix a uniform sample without permuting the rest.
        let mut idx: Vec<usize> = (0..self.len()).collect();
        for i in 0..amount {
            let j = rng.gen_range(i..idx.len());
            idx.swap(i, j);
        }
        idx.truncate(amount);
        idx.into_iter()
            .map(|i| &self[i])
            .collect::<Vec<_>>()
            .into_iter()
    }

    fn shuffle(&mut self, rng: &mut Rng) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_seed_is_deterministic_and_varies() {
        assert_eq!(stream_seed(1, 2), stream_seed(1, 2));
        assert_ne!(stream_seed(1, 2), stream_seed(1, 3));
        assert_ne!(stream_seed(1, 2), stream_seed(2, 2));
        assert_ne!(stream_seed(0, 0), 0);
    }

    #[test]
    fn adjacent_seed_stream_pairs_do_not_collide() {
        // The additive scheme `base + stream` maps (s, i + 1) and
        // (s + 1, i) to the same stream; the mixed derivation must not.
        for base in [0u64, 1, 41, 0x0DBA1, u64::MAX - 1] {
            for stream in 0u64..8 {
                assert_ne!(
                    stream_seed(base, stream + 1),
                    stream_seed(base + 1, stream),
                    "collision at base {base}, stream {stream}"
                );
            }
        }
    }

    #[test]
    fn for_stream_matches_manual_derivation() {
        let mut a = Rng::for_stream(7, 3);
        let mut b = Rng::seed_from_u64(stream_seed(7, 3));
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn stream_is_pinned() {
        // An independently derived first output locks the algorithm: a
        // change to seeding or the generator would silently reshuffle
        // every seeded corpus in the repo.
        let mut sm = 0u64;
        let _s0 = splitmix64(&mut sm);
        let s1 = splitmix64(&mut sm);
        let expected = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let mut rng = Rng::seed_from_u64(0);
        assert_eq!(rng.next_u64(), expected);
    }

    #[test]
    fn zero_seed_is_well_mixed() {
        let mut rng = Rng::seed_from_u64(0);
        let words: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert!(words.iter().any(|&w| w != 0));
        assert!(words.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn gen_range_int_bounds() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let v = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let v = rng.gen_range(0usize..1);
            assert_eq!(v, 0);
        }
    }

    #[test]
    fn gen_range_full_u64_domain() {
        let mut rng = Rng::seed_from_u64(9);
        // Must not panic or loop; exercises the span == 0 branch.
        let v = rng.gen_range(0u64..=u64::MAX);
        let w = rng.gen_range(i64::MIN..=i64::MAX);
        let _ = (v, w);
    }

    #[test]
    fn gen_range_float_bounds() {
        let mut rng = Rng::seed_from_u64(11);
        for _ in 0..1000 {
            let v = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&v));
            let v = rng.gen_range(0.0f32..=0.9);
            assert!((0.0..=0.9).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = Rng::seed_from_u64(1);
        let _ = rng.gen_range(5..5);
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut rng = Rng::seed_from_u64(13);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "p=0.3 gave {hits}/10000");
    }

    #[test]
    fn choose_uniformish_and_total() {
        let mut rng = Rng::seed_from_u64(17);
        let items = [0usize, 1, 2, 3];
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[*items.choose(&mut rng).unwrap()] += 1;
        }
        assert!(counts.iter().all(|&c| c > 700), "skewed: {counts:?}");
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn choose_multiple_distinct() {
        let mut rng = Rng::seed_from_u64(19);
        let items: Vec<usize> = (0..10).collect();
        for _ in 0..100 {
            let picked: Vec<usize> = items.choose_multiple(&mut rng, 4).copied().collect();
            assert_eq!(picked.len(), 4);
            let set: std::collections::HashSet<usize> = picked.iter().copied().collect();
            assert_eq!(set.len(), 4, "duplicates in {picked:?}");
        }
        // Oversized request returns everything.
        let all: Vec<usize> = items.choose_multiple(&mut rng, 99).copied().collect();
        assert_eq!(all.len(), 10);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(23);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle left 50 elements in order");
    }
}
