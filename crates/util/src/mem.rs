//! Resident-set probe for the streaming-corpus memory ceiling.
//!
//! The corpus gate's claim is "100k+ pairs under a fixed memory
//! ceiling". Proving it needs an observation of how much memory the
//! process actually holds, not an allocator-side guess — so this module
//! reads the kernel's own accounting (`VmRSS` in `/proc/self/status`)
//! and reports it in bytes. On platforms without procfs the probe
//! returns `None` and callers fall back to the sink-side byte estimate.

/// Current resident-set size of this process in bytes, if the platform
/// exposes it. Linux only; elsewhere (or on any parse failure) `None`.
pub fn resident_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_vmrss_bytes(&status)
}

/// Extract `VmRSS` from `/proc/self/status` text. The kernel prints the
/// value in kB (`VmRSS:    12345 kB`).
fn parse_vmrss_bytes(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_kernel_format() {
        let status = "Name:\tdbpal\nVmPeak:\t  999 kB\nVmRSS:\t    2048 kB\nThreads:\t4\n";
        assert_eq!(parse_vmrss_bytes(status), Some(2048 * 1024));
    }

    #[test]
    fn missing_or_malformed_yields_none() {
        assert_eq!(parse_vmrss_bytes(""), None);
        assert_eq!(parse_vmrss_bytes("VmRSS:\tnot-a-number kB\n"), None);
        assert_eq!(parse_vmrss_bytes("VmPeak:\t12 kB\n"), None);
    }

    #[test]
    fn probe_reports_plausible_value_on_linux() {
        if let Some(rss) = resident_bytes() {
            // A running test binary holds at least a page and well under
            // a terabyte.
            assert!(rss >= 4096, "rss {rss}");
            assert!(rss < 1 << 40, "rss {rss}");
        }
    }
}
