//! Property battery for the string-interning [`Vocab`]: round-trip
//! fidelity, collision freedom (the table is exact, not hashed), and
//! stability of ids and resolved text under growth and concurrency.

use std::collections::HashMap;
use std::sync::Arc;

use dbpal_util::check::ascii_lowercase;
use dbpal_util::{forall, Sym, Vocab};

#[test]
fn round_trip_over_random_strings() {
    forall!(|rng| {
        let v = Vocab::new();
        let n = rng.gen_range(1usize..100);
        let words: Vec<String> = (0..n).map(|_| ascii_lowercase(rng, 0..=12)).collect();
        let syms: Vec<Sym> = words.iter().map(|w| v.intern(w)).collect();
        for (w, &s) in words.iter().zip(&syms) {
            assert_eq!(v.resolve(s), w.as_str());
            assert_eq!(v.lookup(w), Some(s));
        }
    });
}

#[test]
fn collision_freedom_and_idempotence() {
    // Distinct strings map to distinct syms; equal strings to equal
    // syms — across any interleaving of repeats.
    forall!(|rng| {
        let v = Vocab::new();
        let mut by_text: HashMap<String, Sym> = HashMap::new();
        for _ in 0..rng.gen_range(1usize..200) {
            let w = ascii_lowercase(rng, 0..=6);
            let s = v.intern(&w);
            match by_text.get(&w) {
                Some(&prev) => assert_eq!(prev, s, "`{w}` changed sym"),
                None => {
                    assert!(
                        by_text.values().all(|&other| other != s),
                        "`{w}` collided with an earlier distinct string"
                    );
                    by_text.insert(w, s);
                }
            }
        }
        assert_eq!(v.len(), by_text.len());
    });
}

#[test]
fn ids_are_dense_first_intern_order() {
    let v = Vocab::new();
    for (i, w) in ["show", "the", "name", "of", "all"].iter().enumerate() {
        assert_eq!(v.intern(w).raw(), i as u32);
    }
    // Re-interning moves nothing.
    assert_eq!(v.intern("the").raw(), 1);
    assert_eq!(v.len(), 5);
}

#[test]
fn resolved_text_stays_valid_under_heavy_growth() {
    let v = Vocab::new();
    let early: Vec<(Sym, String)> = (0..50)
        .map(|i| {
            let w = format!("early{i}");
            (v.intern(&w), w)
        })
        .collect();
    let early_refs: Vec<&str> = early.iter().map(|&(s, _)| v.resolve(s)).collect();
    for i in 0..20_000 {
        v.intern(&format!("filler{i}"));
    }
    for ((s, w), text) in early.iter().zip(&early_refs) {
        assert_eq!(*text, w.as_str(), "pre-growth &str invalidated");
        assert_eq!(v.resolve(*s), w.as_str());
    }
}

#[test]
fn concurrent_interning_agrees_on_one_sym_per_string() {
    // Many threads intern overlapping word sets; every thread must see
    // the same sym for the same text, and the table must end exact.
    let v = Arc::new(Vocab::new());
    let words: Arc<Vec<String>> = Arc::new((0..80).map(|i| format!("w{}", i % 40)).collect());
    let handles: Vec<_> = (0..8)
        .map(|t| {
            let v = Arc::clone(&v);
            let words = Arc::clone(&words);
            std::thread::spawn(move || {
                let mut out: Vec<(String, Sym)> = Vec::new();
                for w in words.iter().skip(t % 3) {
                    out.push((w.clone(), v.intern(w)));
                }
                out
            })
        })
        .collect();
    let mut agreed: HashMap<String, Sym> = HashMap::new();
    for h in handles {
        for (w, s) in h.join().unwrap() {
            assert_eq!(*agreed.entry(w.clone()).or_insert(s), s, "`{w}` diverged");
            assert_eq!(v.resolve(s), w);
        }
    }
    assert_eq!(v.len(), 40);
}

#[test]
fn intern_all_matches_one_by_one() {
    forall!(cases = 32, |rng| {
        let v = Vocab::new();
        let words: Vec<String> = (0..rng.gen_range(0usize..40))
            .map(|_| ascii_lowercase(rng, 0..=5))
            .collect();
        let mut bulk = Vec::new();
        v.intern_all(&words, &mut bulk);
        let single: Vec<Sym> = words.iter().map(|w| v.intern(w)).collect();
        assert_eq!(bulk, single);
    });
}

#[test]
fn global_vocab_is_one_table() {
    let a = Vocab::global().intern("global-battery-token");
    let b = Vocab::global().intern("global-battery-token");
    assert_eq!(a, b);
    assert_eq!(Vocab::global().resolve(a), "global-battery-token");
}
