//! Property battery for the persistent [`WorkerPool`]: the pool must be
//! observationally identical to the scoped-spawn path at every thread
//! count, stay reusable across calls, and contain panics without
//! poisoning itself. Seeded `forall!` cases (honoring
//! `DBPAL_CHECK_CASES`) drive randomized shapes; the fixed tables pin
//! the degenerate ones.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use dbpal_util::{forall, par_map_indexed, ParStrategy, PoolError, WorkerPool};

/// A mapping whose output encodes both the item and its index, so any
/// reordering or slot mixup changes the bytes.
fn tag(i: usize, x: u64) -> u64 {
    (i as u64) << 32 | x.wrapping_mul(0x9E37_79B9)
}

#[test]
fn pool_matches_scoped_on_random_shapes() {
    let pool = WorkerPool::new(8);
    forall!(|rng| {
        let len = rng.gen_range(0usize..200);
        let items: Vec<u64> = (0..len).map(|_| rng.gen_range(0u64..1 << 20)).collect();
        for threads in [1usize, 2, 8] {
            let pooled = pool.map_indexed(&items, threads, |i, &x| tag(i, x));
            let scoped = par_map_indexed(&items, threads, |i, &x| tag(i, x));
            assert_eq!(pooled, scoped, "len {len}, threads {threads}");
        }
    });
}

#[test]
fn strategies_agree_on_random_shapes() {
    let pool = Arc::new(WorkerPool::new(4));
    let strategies = [
        ParStrategy::GlobalPool,
        ParStrategy::Pool(Arc::clone(&pool)),
        ParStrategy::Scoped,
    ];
    forall!(cases = 16, |rng| {
        let len = rng.gen_range(0usize..64);
        let items: Vec<u64> = (0..len).map(|_| rng.gen_range(0u64..1000)).collect();
        let threads = rng.gen_range(1usize..9);
        let expect: Vec<u64> = items.iter().enumerate().map(|(i, &x)| tag(i, x)).collect();
        for strategy in &strategies {
            let got = strategy.map_indexed(&items, threads, |i, &x| tag(i, x));
            assert_eq!(got, expect, "strategy {strategy:?}, threads {threads}");
        }
    });
}

#[test]
fn reuse_keeps_results_stable_across_many_calls() {
    // One pool, many sequential jobs of varying width: helper threads
    // must park and rejoin cleanly every time, with no state bleeding
    // between jobs.
    let pool = WorkerPool::new(4);
    for round in 0..50u64 {
        let len = (round as usize * 7) % 90;
        let items: Vec<u64> = (0..len as u64).collect();
        let threads = [1, 2, 8][round as usize % 3];
        let out = pool.map_indexed(&items, threads, |i, &x| tag(i, x + round));
        let expect: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, &x)| tag(i, x + round))
            .collect();
        assert_eq!(out, expect, "round {round}");
    }
}

#[test]
fn degenerate_shapes_table() {
    // (items, threads): zero items, fewer items than threads, exactly
    // one item, threads = 0 (auto), threads beyond pool size.
    let pool = WorkerPool::new(4);
    let cases: &[(usize, usize)] = &[(0, 1), (0, 8), (1, 8), (3, 8), (5, 2), (4, 0), (16, 64)];
    for &(len, threads) in cases {
        let items: Vec<u64> = (0..len as u64).collect();
        let expect: Vec<u64> = items.iter().enumerate().map(|(i, &x)| tag(i, x)).collect();
        let got = pool.map_indexed(&items, threads, |i, &x| tag(i, x));
        assert_eq!(got, expect, "items {len}, threads {threads}");
    }
}

#[test]
fn every_item_visited_exactly_once() {
    let pool = WorkerPool::new(8);
    forall!(cases = 16, |rng| {
        let len = rng.gen_range(1usize..150);
        let counts: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..len).collect();
        let threads = rng.gen_range(1usize..9);
        pool.map_indexed(&items, threads, |i, _| {
            counts[i].fetch_add(1, Ordering::Relaxed)
        });
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "item {i} visit count");
        }
    });
}

#[test]
fn typed_panic_surfaces_and_pool_stays_usable() {
    let pool = WorkerPool::new(4);
    let items: Vec<u32> = (0..128).collect();
    for round in 0..3 {
        let err = pool
            .try_map_indexed(&items, 8, |_, &x| {
                if x == 77 {
                    panic!("poisoned item in round {round}");
                }
                x
            })
            .unwrap_err();
        let PoolError::WorkerPanicked(msg) = &err;
        assert!(msg.contains("poisoned item"), "round {round}: {msg}");
        // Immediately after containment, a clean job must succeed.
        let ok = pool.map_indexed(&items, 8, |i, &x| tag(i, u64::from(x)));
        assert_eq!(ok.len(), items.len(), "round {round}");
    }
}

#[test]
fn unwinding_panic_carries_original_payload() {
    let pool = WorkerPool::new(4);
    let items: Vec<u32> = (0..32).collect();
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pool.map_indexed(&items, 4, |_, &x| {
            if x == 5 {
                panic!("original payload text");
            }
            x
        })
    }))
    .unwrap_err();
    let msg = caught
        .downcast_ref::<&str>()
        .copied()
        .map(String::from)
        .or_else(|| caught.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert!(msg.contains("original payload text"), "payload: {msg}");
}

#[test]
fn concurrent_external_callers_never_deadlock() {
    // Two threads hammer one pool; whichever loses the install race
    // must transparently take the scoped fallback and still produce
    // order-preserving results.
    let pool = Arc::new(WorkerPool::new(4));
    let threads: Vec<_> = (0..2)
        .map(|t| {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || {
                for round in 0..20u64 {
                    let items: Vec<u64> = (0..60).collect();
                    let out = pool.map_indexed(&items, 4, |i, &x| tag(i, x + t + round));
                    let expect: Vec<u64> = items
                        .iter()
                        .enumerate()
                        .map(|(i, &x)| tag(i, x + t + round))
                        .collect();
                    assert_eq!(out, expect);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
}
