//! Every seed template in the catalog must instantiate at least once
//! under the default configuration on a join-capable schema. A template
//! that never fires is dead weight in the catalog — or a regression in
//! the generator's class coverage — and this test turns either into a
//! red build via the report's per-template accounting.

use dbpal_core::{templates::catalog, GenerationConfig, TrainingPipeline};
use dbpal_schema::{Schema, SchemaBuilder, SemanticDomain, SqlType};
use std::collections::BTreeMap;

/// Two tables plus a foreign key, so join and nested templates have a
/// real path to instantiate (the single-table Patients schema cannot
/// exercise them).
fn hospital_schema() -> Schema {
    SchemaBuilder::new("hospital")
        .table("patients", |t| {
            t.synonym("people")
                .column("name", SqlType::Text)
                .column_with("age", SqlType::Integer, |c| c.domain(SemanticDomain::Age))
                .column_with("disease", SqlType::Text, |c| c.synonym("illness"))
                .column_with("length_of_stay", SqlType::Integer, |c| {
                    c.domain(SemanticDomain::Duration)
                })
                .column("doctor_id", SqlType::Integer)
        })
        .table("doctors", |t| {
            t.column("id", SqlType::Integer)
                .column("name", SqlType::Text)
                .column("specialty", SqlType::Text)
                .primary_key("id")
        })
        .foreign_key("patients", "doctor_id", "doctors", "id")
        .build()
        .unwrap()
}

#[test]
fn every_catalog_template_instantiates_at_least_once() {
    let config = GenerationConfig::default();
    let (_, report) = TrainingPipeline::new(config).generate_with_report(&hospital_schema());
    report.check_consistency().unwrap();

    // Pairs are tagged with the template id plus an optional `+group`
    // suffix for grouped instantiations; fold those back onto the base id.
    let mut by_template: BTreeMap<&str, usize> = BTreeMap::new();
    for (id, n) in &report.template_counts {
        *by_template
            .entry(id.strip_suffix("+group").unwrap_or(id))
            .or_insert(0) += n;
    }

    let missing: Vec<String> = catalog()
        .iter()
        .filter(|t| by_template.get(t.id.as_str()).copied().unwrap_or(0) == 0)
        .map(|t| t.id.clone())
        .collect();
    assert!(
        missing.is_empty(),
        "{} of {} templates never instantiated under the default config: {missing:?}",
        missing.len(),
        catalog().len()
    );
}

#[test]
fn template_counts_sum_to_final_pairs() {
    let (corpus, report) =
        TrainingPipeline::new(GenerationConfig::small()).generate_with_report(&hospital_schema());
    assert_eq!(report.template_counts.values().sum::<usize>(), corpus.len());
}
