//! Property tests for the training pipeline: invariants that must hold
//! for every generation configuration (ported from `proptest` to the
//! seeded `dbpal_util::check` harness; a failing case prints its seed
//! for `DBPAL_CHECK_REPLAY`).

use dbpal_core::{catalog, GenerationConfig, TrainingPipeline};
use dbpal_schema::{Schema, SchemaBuilder, SemanticDomain, SqlType};
use dbpal_util::{forall, stream_seed, Rng};
use std::collections::HashSet;

fn schema() -> Schema {
    SchemaBuilder::new("hospital")
        .table("patients", |t| {
            t.synonym("people")
                .column("name", SqlType::Text)
                .column_with("age", SqlType::Integer, |c| c.domain(SemanticDomain::Age))
                .column_with("disease", SqlType::Text, |c| c.synonym("illness"))
                .column("doctor_id", SqlType::Integer)
        })
        .table("doctors", |t| {
            t.column("id", SqlType::Integer)
                .column("name", SqlType::Text)
                .column("specialty", SqlType::Text)
        })
        .foreign_key("patients", "doctor_id", "doctors", "id")
        .build()
        .unwrap()
}

/// Small random configurations (kept tiny so each case is fast).
fn config(rng: &mut Rng) -> GenerationConfig {
    GenerationConfig {
        size_slot_fills: rng.gen_range(1usize..6),
        group_by_p: rng.gen_range(0.0f64..0.5),
        num_para: rng.gen_range(0usize..3),
        num_missing: rng.gen_range(0usize..3),
        rand_drop_p: rng.gen_range(0.0f64..0.8),
        paraphrase_min_quality: rng.gen_range(0.0f32..0.9),
        pos_gated_dropout: rng.gen_bool(0.5),
        seed: rng.next_u64(),
        ..GenerationConfig::default()
    }
}

/// Every configuration yields a corpus whose SQL parses, whose NL has
/// no unfilled slots, whose placeholders agree between NL and SQL,
/// and whose pairs are lemmatized and deduplicated.
#[test]
fn corpus_invariants_hold_for_any_config() {
    forall!(cases = 24, |rng| {
        let cfg = config(rng);
        let schema = schema();
        let pipeline = TrainingPipeline::new(cfg);
        let mut corpus = pipeline.generate(&schema);
        assert!(!corpus.is_empty());
        for pair in corpus.pairs() {
            // SQL round-trips through the parser.
            let text = pair.sql_text();
            let reparsed = dbpal_sql::parse_query(&text)
                .unwrap_or_else(|e| panic!("unparseable `{text}`: {e}"));
            assert_eq!(&reparsed, &pair.sql);
            // NL is fully instantiated and lemmatized.
            assert!(!pair.nl.contains('{'), "unfilled slot in `{}`", pair.nl);
            assert!(!pair.nl_lemmas.is_empty());
            // Placeholder agreement.
            for ph in pair.sql.placeholders() {
                assert!(
                    pair.nl.to_uppercase().contains(&format!("@{ph}")),
                    "placeholder @{ph} missing from `{}`",
                    pair.nl
                );
            }
        }
        assert_eq!(corpus.dedup(), 0, "pipeline output contained duplicates");
    });
}

/// A random one- or two-table schema with random column types; small
/// enough that some templates fail to instantiate or exhaust their
/// attempt budgets, which is exactly what the report must account for.
fn random_small_schema(rng: &mut Rng) -> Schema {
    const TABLE_NAMES: [&str; 2] = ["t0", "t1"];
    const COLUMN_NAMES: [&str; 4] = ["c0", "c1", "c2", "c3"];
    let n_tables = rng.gen_range(1usize..3);
    let mut builder = SchemaBuilder::new("rand");
    for table_name in TABLE_NAMES.iter().take(n_tables) {
        let types: Vec<SqlType> = (0..rng.gen_range(1usize..5))
            .map(|_| {
                if rng.gen_bool(0.5) {
                    SqlType::Text
                } else {
                    SqlType::Integer
                }
            })
            .collect();
        builder = builder.table(*table_name, |mut t| {
            for (name, ty) in COLUMN_NAMES.iter().zip(&types) {
                t = t.column(*name, *ty);
            }
            t
        });
    }
    builder.build().unwrap()
}

/// The [`dbpal_core::PipelineReport`] counters are consistent for any
/// configuration, schema shape, and thread count: stage outputs sum to
/// the pre-dedup size, dedup drops equal pre − post, and provenance
/// counts sum to the final corpus.
#[test]
fn report_counters_are_consistent_for_any_config() {
    forall!(cases = 12, |rng| {
        let mut cfg = config(rng);
        cfg.threads = rng.gen_range(1usize..5);
        let schema = random_small_schema(rng);
        let (corpus, report) = TrainingPipeline::new(cfg).generate_with_report(&schema);
        report
            .check_consistency()
            .unwrap_or_else(|e| panic!("inconsistent report: {e}\n{}", report.render()));
        assert_eq!(report.final_pairs, corpus.len());
        assert_eq!(
            report.seed_pairs + report.augmented_pairs,
            report.pre_dedup_pairs
        );
        assert_eq!(
            report.pre_dedup_pairs - report.final_pairs,
            report.dedup_dropped
        );
        assert_eq!(
            report.provenance.values().sum::<usize>(),
            report.final_pairs
        );
    });
}

/// The reduced CI profile (`DBPAL_CHECK_CASES=16`, see scripts/verify.sh)
/// still exercises every query-class family: 16 stream-seeded random
/// configurations on the full catalog must between them instantiate every
/// template family. This loop is deliberately independent of
/// `DBPAL_CHECK_CASES` (which overrides `forall!` counts globally) so the
/// guarantee holds no matter how far the env knob shrinks the other
/// properties.
#[test]
fn reduced_profile_covers_every_query_class() {
    let all_families: HashSet<String> = catalog()
        .iter()
        .map(|t| t.id.split('.').next().unwrap().to_string())
        .collect();
    let schema = schema();
    let mut hit: HashSet<String> = HashSet::new();
    for i in 0..16u64 {
        let mut rng = Rng::seed_from_u64(stream_seed(dbpal_util::check::base_seed(), i));
        let cfg = config(&mut rng);
        let corpus = TrainingPipeline::new(cfg).generate(&schema);
        assert!(!corpus.is_empty(), "case {i} generated an empty corpus");
        hit.extend(
            corpus
                .pairs()
                .iter()
                .map(|p| p.template_id.split('.').next().unwrap().to_string()),
        );
    }
    let missed: Vec<&String> = all_families.iter().filter(|f| !hit.contains(*f)).collect();
    assert!(
        missed.is_empty(),
        "reduced profile never exercised families {missed:?}"
    );
}

/// Generation is a pure function of the configuration (same seed →
/// same corpus).
#[test]
fn generation_deterministic() {
    forall!(cases = 24, |rng| {
        let cfg = config(rng);
        let schema = schema();
        let a: Vec<String> = TrainingPipeline::new(cfg.clone())
            .generate(&schema)
            .pairs()
            .iter()
            .map(|p| p.nl.clone())
            .collect();
        let b: Vec<String> = TrainingPipeline::new(cfg)
            .generate(&schema)
            .pairs()
            .iter()
            .map(|p| p.nl.clone())
            .collect();
        assert_eq!(a, b);
    });
}
