//! Property tests for the training pipeline: invariants that must hold
//! for every generation configuration.

use dbpal_core::{GenerationConfig, TrainingPipeline};
use dbpal_schema::{Schema, SchemaBuilder, SemanticDomain, SqlType};
use proptest::prelude::*;

fn schema() -> Schema {
    SchemaBuilder::new("hospital")
        .table("patients", |t| {
            t.synonym("people")
                .column("name", SqlType::Text)
                .column_with("age", SqlType::Integer, |c| c.domain(SemanticDomain::Age))
                .column_with("disease", SqlType::Text, |c| c.synonym("illness"))
                .column("doctor_id", SqlType::Integer)
        })
        .table("doctors", |t| {
            t.column("id", SqlType::Integer)
                .column("name", SqlType::Text)
                .column("specialty", SqlType::Text)
        })
        .foreign_key("patients", "doctor_id", "doctors", "id")
        .build()
        .unwrap()
}

/// Small random configurations (kept tiny so each case is fast).
fn config() -> impl Strategy<Value = GenerationConfig> {
    (
        1usize..6,
        0.0f64..0.5,
        0usize..3,
        0usize..3,
        0.0f64..0.8,
        0.0f32..0.9,
        any::<bool>(),
        any::<u64>(),
    )
        .prop_map(
            |(fills, gbp, num_para, num_missing, drop_p, quality, pos, seed)| GenerationConfig {
                size_slot_fills: fills,
                group_by_p: gbp,
                num_para,
                num_missing,
                rand_drop_p: drop_p,
                paraphrase_min_quality: quality,
                pos_gated_dropout: pos,
                seed,
                ..GenerationConfig::default()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every configuration yields a corpus whose SQL parses, whose NL has
    /// no unfilled slots, whose placeholders agree between NL and SQL,
    /// and whose pairs are lemmatized and deduplicated.
    #[test]
    fn corpus_invariants_hold_for_any_config(cfg in config()) {
        let schema = schema();
        let pipeline = TrainingPipeline::new(cfg);
        let mut corpus = pipeline.generate(&schema);
        prop_assert!(!corpus.is_empty());
        for pair in corpus.pairs() {
            // SQL round-trips through the parser.
            let text = pair.sql_text();
            let reparsed = dbpal_sql::parse_query(&text)
                .map_err(|e| TestCaseError::fail(format!("unparseable `{text}`: {e}")))?;
            prop_assert_eq!(&reparsed, &pair.sql);
            // NL is fully instantiated and lemmatized.
            prop_assert!(!pair.nl.contains('{'), "unfilled slot in `{}`", pair.nl);
            prop_assert!(!pair.nl_lemmas.is_empty());
            // Placeholder agreement.
            for ph in pair.sql.placeholders() {
                prop_assert!(
                    pair.nl.to_uppercase().contains(&format!("@{ph}")),
                    "placeholder @{ph} missing from `{}`",
                    pair.nl
                );
            }
        }
        prop_assert_eq!(corpus.dedup(), 0, "pipeline output contained duplicates");
    }

    /// Generation is a pure function of the configuration (same seed →
    /// same corpus).
    #[test]
    fn generation_deterministic(cfg in config()) {
        let schema = schema();
        let a: Vec<String> = TrainingPipeline::new(cfg.clone())
            .generate(&schema)
            .pairs()
            .iter()
            .map(|p| p.nl.clone())
            .collect();
        let b: Vec<String> = TrainingPipeline::new(cfg)
            .generate(&schema)
            .pairs()
            .iter()
            .map(|p| p.nl.clone())
            .collect();
        prop_assert_eq!(a, b);
    }
}
