//! Property tests for the training pipeline: invariants that must hold
//! for every generation configuration (ported from `proptest` to the
//! seeded `dbpal_util::check` harness; a failing case prints its seed
//! for `DBPAL_CHECK_REPLAY`).

use dbpal_core::{GenerationConfig, TrainingPipeline};
use dbpal_schema::{Schema, SchemaBuilder, SemanticDomain, SqlType};
use dbpal_util::{forall, Rng};

fn schema() -> Schema {
    SchemaBuilder::new("hospital")
        .table("patients", |t| {
            t.synonym("people")
                .column("name", SqlType::Text)
                .column_with("age", SqlType::Integer, |c| c.domain(SemanticDomain::Age))
                .column_with("disease", SqlType::Text, |c| c.synonym("illness"))
                .column("doctor_id", SqlType::Integer)
        })
        .table("doctors", |t| {
            t.column("id", SqlType::Integer)
                .column("name", SqlType::Text)
                .column("specialty", SqlType::Text)
        })
        .foreign_key("patients", "doctor_id", "doctors", "id")
        .build()
        .unwrap()
}

/// Small random configurations (kept tiny so each case is fast).
fn config(rng: &mut Rng) -> GenerationConfig {
    GenerationConfig {
        size_slot_fills: rng.gen_range(1usize..6),
        group_by_p: rng.gen_range(0.0f64..0.5),
        num_para: rng.gen_range(0usize..3),
        num_missing: rng.gen_range(0usize..3),
        rand_drop_p: rng.gen_range(0.0f64..0.8),
        paraphrase_min_quality: rng.gen_range(0.0f32..0.9),
        pos_gated_dropout: rng.gen_bool(0.5),
        seed: rng.next_u64(),
        ..GenerationConfig::default()
    }
}

/// Every configuration yields a corpus whose SQL parses, whose NL has
/// no unfilled slots, whose placeholders agree between NL and SQL,
/// and whose pairs are lemmatized and deduplicated.
#[test]
fn corpus_invariants_hold_for_any_config() {
    forall!(cases = 24, |rng| {
        let cfg = config(rng);
        let schema = schema();
        let pipeline = TrainingPipeline::new(cfg);
        let mut corpus = pipeline.generate(&schema);
        assert!(!corpus.is_empty());
        for pair in corpus.pairs() {
            // SQL round-trips through the parser.
            let text = pair.sql_text();
            let reparsed = dbpal_sql::parse_query(&text)
                .unwrap_or_else(|e| panic!("unparseable `{text}`: {e}"));
            assert_eq!(&reparsed, &pair.sql);
            // NL is fully instantiated and lemmatized.
            assert!(!pair.nl.contains('{'), "unfilled slot in `{}`", pair.nl);
            assert!(!pair.nl_lemmas.is_empty());
            // Placeholder agreement.
            for ph in pair.sql.placeholders() {
                assert!(
                    pair.nl.to_uppercase().contains(&format!("@{ph}")),
                    "placeholder @{ph} missing from `{}`",
                    pair.nl
                );
            }
        }
        assert_eq!(corpus.dedup(), 0, "pipeline output contained duplicates");
    });
}

/// Generation is a pure function of the configuration (same seed →
/// same corpus).
#[test]
fn generation_deterministic() {
    forall!(cases = 24, |rng| {
        let cfg = config(rng);
        let schema = schema();
        let a: Vec<String> = TrainingPipeline::new(cfg.clone())
            .generate(&schema)
            .pairs()
            .iter()
            .map(|p| p.nl.clone())
            .collect();
        let b: Vec<String> = TrainingPipeline::new(cfg)
            .generate(&schema)
            .pairs()
            .iter()
            .map(|p| p.nl.clone())
            .collect();
        assert_eq!(a, b);
    });
}
