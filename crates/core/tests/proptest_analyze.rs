//! Property tests for the static-analysis gate: every pair the default
//! pipeline generates must analyze clean at `Reject` — across random
//! schemas, random configurations, and any thread count — and the
//! per-code counts in the report must be thread-count invariant.

use dbpal_core::{AnalyzerPolicy, GenerationConfig, TrainingPipeline};
use dbpal_schema::{Schema, SchemaBuilder, SemanticDomain, SqlType};
use dbpal_util::{forall, Rng};

fn hospital() -> Schema {
    SchemaBuilder::new("hospital")
        .table("patients", |t| {
            t.synonym("people")
                .column("name", SqlType::Text)
                .column_with("age", SqlType::Integer, |c| c.domain(SemanticDomain::Age))
                .column_with("disease", SqlType::Text, |c| c.synonym("illness"))
                .column("doctor_id", SqlType::Integer)
        })
        .table("doctors", |t| {
            t.column("id", SqlType::Integer)
                .column("name", SqlType::Text)
                .column("specialty", SqlType::Text)
        })
        .foreign_key("patients", "doctor_id", "doctors", "id")
        .build()
        .unwrap()
}

/// Small random configurations at the default `Reject` policy.
fn config(rng: &mut Rng) -> GenerationConfig {
    GenerationConfig {
        size_slot_fills: rng.gen_range(1usize..6),
        group_by_p: rng.gen_range(0.0f64..0.5),
        num_para: rng.gen_range(0usize..3),
        num_missing: rng.gen_range(0usize..3),
        rand_drop_p: rng.gen_range(0.0f64..0.8),
        seed: rng.next_u64(),
        ..GenerationConfig::default()
    }
}

/// Random one- or two-table schemas with mixed column types — including
/// degenerate single-table shapes that exhaust template slots.
fn random_small_schema(rng: &mut Rng) -> Schema {
    const TABLE_NAMES: [&str; 2] = ["t0", "t1"];
    const COLUMN_NAMES: [&str; 4] = ["c0", "c1", "c2", "c3"];
    let n_tables = rng.gen_range(1usize..3);
    let mut builder = SchemaBuilder::new("rand");
    for table_name in TABLE_NAMES.iter().take(n_tables) {
        let types: Vec<SqlType> = (0..rng.gen_range(1usize..5))
            .map(|_| {
                if rng.gen_bool(0.5) {
                    SqlType::Text
                } else {
                    SqlType::Integer
                }
            })
            .collect();
        builder = builder.table(*table_name, |mut t| {
            for (name, ty) in COLUMN_NAMES.iter().zip(&types) {
                t = t.column(*name, *ty);
            }
            t
        });
    }
    builder.build().unwrap()
}

/// The generator's output is semantically valid by construction: under
/// any random schema and configuration, the `Reject` gate drops nothing
/// and flags nothing, and the analyzer report is byte-identical at
/// 1, 2, and 8 threads.
#[test]
fn generated_pairs_analyze_clean_at_any_thread_count() {
    forall!(cases = 12, |rng| {
        let base = config(rng);
        let schema = random_small_schema(rng);
        let mut reports = Vec::new();
        for threads in [1usize, 2, 8] {
            let cfg = GenerationConfig {
                threads,
                ..base.clone()
            };
            let (corpus, report) = TrainingPipeline::new(cfg).generate_with_report(&schema);
            report
                .check_consistency()
                .unwrap_or_else(|e| panic!("inconsistent report: {e}\n{}", report.render()));
            assert_eq!(report.analyzer.policy, AnalyzerPolicy::Reject);
            assert_eq!(
                report.analyzer.rejected,
                0,
                "rejected pairs under default config:\n{}",
                report.render()
            );
            assert_eq!(
                report.analyzer.flagged,
                0,
                "flagged pairs under default config:\n{}",
                report.render()
            );
            assert!(report.analyzer.codes.is_empty());
            assert_eq!(report.analyzer.analyzed, corpus.len());
            reports.push(report.analyzer);
        }
        assert_eq!(
            reports[0], reports[1],
            "analyzer report differs 1 vs 2 threads"
        );
        assert_eq!(
            reports[0], reports[2],
            "analyzer report differs 1 vs 8 threads"
        );
    });
}

/// Regression: a tiny single-table schema exhausts template slots, and a
/// large slot-fill budget used to be able to instantiate a column that
/// the target schema lacks. That fault must surface as an `E0101`
/// analyzer count (and a reject under `Reject`), never as a panic — and
/// with the current generator it must not happen at all.
#[test]
fn tiny_schema_slot_exhaustion_never_panics_or_leaks() {
    let schema = SchemaBuilder::new("tiny")
        .table("only", |t| t.column("solo", SqlType::Text))
        .build()
        .unwrap();
    let cfg = GenerationConfig {
        size_slot_fills: 50,
        ..GenerationConfig::default()
    };
    // Must not panic even though nearly every template exhausts.
    let (corpus, report) = TrainingPipeline::new(cfg).generate_with_report(&schema);
    report
        .check_consistency()
        .unwrap_or_else(|e| panic!("inconsistent report: {e}\n{}", report.render()));
    assert!(!corpus.is_empty(), "one-table schema produced no corpus");
    assert_eq!(
        report.analyzer.codes.get("E0101"),
        None,
        "generator emitted unresolved columns:\n{}",
        report.render()
    );
    assert_eq!(report.analyzer.rejected, 0, "{}", report.render());
}

/// The full default configuration on the reference schema analyzes 100%
/// clean at `Reject` with zero dropped pairs (acceptance criterion).
#[test]
fn default_config_hospital_generation_is_clean() {
    let (corpus, report) =
        TrainingPipeline::new(GenerationConfig::default()).generate_with_report(&hospital());
    assert_eq!(report.analyzer.analyzed, corpus.len());
    assert_eq!(report.analyzer.flagged, 0, "{}", report.render());
    assert_eq!(report.analyzer.rejected, 0, "{}", report.render());
}
