//! Streaming-corpus integration battery: dedup-policy fixtures, the
//! chunk-size/thread invariance property, JSONL round-trips, and the
//! provenance-weighted split sink.

use dbpal_core::CorpusSink;
use dbpal_core::{
    corpus_from_jsonl, DedupPolicy, DigestSink, GenerationConfig, JsonlSink, MemorySink,
    Provenance, SplitSink, StreamDedup, StreamOptions, TrainingPair, TrainingPipeline,
};
use dbpal_schema::{Schema, SchemaBuilder, SemanticDomain, SqlType};
use dbpal_util::forall;

fn schema() -> Schema {
    SchemaBuilder::new("hospital")
        .table("patients", |t| {
            t.synonym("people")
                .column("name", SqlType::Text)
                .column_with("age", SqlType::Integer, |c| c.domain(SemanticDomain::Age))
                .column_with("disease", SqlType::Text, |c| c.synonym("illness"))
                .column("doctor_id", SqlType::Integer)
        })
        .table("doctors", |t| {
            t.column("id", SqlType::Integer)
                .column("name", SqlType::Text)
                .column("specialty", SqlType::Text)
        })
        .foreign_key("patients", "doctor_id", "doctors", "id")
        .build()
        .unwrap()
}

fn tiny_config(seed: u64) -> GenerationConfig {
    GenerationConfig {
        size_slot_fills: 2,
        num_para: 1,
        num_missing: 0,
        seed,
        ..GenerationConfig::default()
    }
}

/// A hand-built scored pair for the dedup fixtures: `sql` is parsed, so
/// the fixture's identity matches what real pairs carry.
fn scored(nl: &str, sql: &str, score: u32) -> (TrainingPair, u32) {
    let query = dbpal_sql::parse_query(sql).expect("fixture SQL parses");
    let mut pair = TrainingPair::new(nl.to_string(), query, "fixture", Provenance::Seed);
    pair.nl_lemmas = nl
        .to_lowercase()
        .split_whitespace()
        .map(String::from)
        .collect();
    (pair, score)
}

/// One dedup fixture: named rounds of (nl, sql, score) plus the
/// expected emission (by SQL text, in order) and drop counters.
struct DedupCase {
    name: &'static str,
    rounds: &'static [&'static [(&'static str, &'static str, u32)]],
    want_sql: &'static [&'static str],
    want_exact: usize,
    want_conflicts: usize,
}

const Q_AGE: &str = "SELECT name FROM patients WHERE age > 50";
const Q_DISEASE: &str = "SELECT name FROM patients WHERE disease = 'flu'";
const Q_COUNT: &str = "SELECT COUNT(*) FROM patients";

#[test]
fn dedup_conflict_fixtures() {
    let cases = [
        DedupCase {
            name: "cleanest_wins_when_first",
            rounds: &[&[
                ("show old patients", Q_AGE, 0),
                ("show old patients", Q_DISEASE, 5),
            ]],
            want_sql: &[Q_AGE],
            want_exact: 0,
            want_conflicts: 1,
        },
        DedupCase {
            name: "cleanest_wins_when_second_and_keeps_first_seen_slot",
            rounds: &[&[
                ("show old patients", Q_AGE, 5),
                ("count patients", Q_COUNT, 0),
                ("show old patients", Q_DISEASE, 0),
            ]],
            // The winner replaces the loser at the loser's slot, so the
            // challenger's SQL appears *before* the count query.
            want_sql: &[Q_DISEASE, Q_COUNT],
            want_exact: 0,
            want_conflicts: 1,
        },
        DedupCase {
            name: "tie_keeps_first_seen",
            rounds: &[&[
                ("show old patients", Q_AGE, 3),
                ("show old patients", Q_DISEASE, 3),
            ]],
            want_sql: &[Q_AGE],
            want_exact: 0,
            want_conflicts: 1,
        },
        DedupCase {
            name: "exact_duplicate_within_round",
            rounds: &[&[
                ("show old patients", Q_AGE, 0),
                ("show old patients", Q_AGE, 0),
            ]],
            want_sql: &[Q_AGE],
            want_exact: 1,
            want_conflicts: 0,
        },
        DedupCase {
            name: "emitted_rounds_are_final_even_against_cleaner_latecomers",
            rounds: &[
                &[("show old patients", Q_AGE, 5)],
                &[("show old patients", Q_DISEASE, 0)],
            ],
            want_sql: &[Q_AGE],
            want_exact: 0,
            want_conflicts: 1,
        },
        DedupCase {
            name: "exact_duplicate_across_rounds",
            rounds: &[
                &[("show old patients", Q_AGE, 0)],
                &[
                    ("show old patients", Q_AGE, 0),
                    ("count patients", Q_COUNT, 0),
                ],
            ],
            want_sql: &[Q_AGE, Q_COUNT],
            want_exact: 1,
            want_conflicts: 0,
        },
        DedupCase {
            name: "distinct_nl_same_sql_both_kept",
            rounds: &[&[
                ("show old patients", Q_AGE, 0),
                ("elderly patient names", Q_AGE, 0),
            ]],
            want_sql: &[Q_AGE, Q_AGE],
            want_exact: 0,
            want_conflicts: 0,
        },
    ];
    for case in &cases {
        let mut dedup = StreamDedup::new(DedupPolicy::ResolveConflicts);
        let mut got_sql: Vec<String> = Vec::new();
        let mut exact = 0;
        let mut conflicts = 0;
        for round in case.rounds {
            let outcome = dedup.admit_round(
                round
                    .iter()
                    .map(|&(nl, sql, s)| scored(nl, sql, s))
                    .collect(),
            );
            got_sql.extend(outcome.pairs.iter().map(|p| p.sql_text()));
            exact += outcome.exact_dropped;
            conflicts += outcome.conflicts_resolved;
        }
        let want: Vec<String> = case
            .want_sql
            .iter()
            .map(|s| dbpal_sql::parse_query(s).unwrap().to_string())
            .collect();
        assert_eq!(got_sql, want, "{}: emitted SQL", case.name);
        assert_eq!(exact, case.want_exact, "{}: exact drops", case.name);
        assert_eq!(
            conflicts, case.want_conflicts,
            "{}: conflict drops",
            case.name
        );
    }
}

#[test]
fn exact_policy_never_resolves_conflicts() {
    let mut dedup = StreamDedup::new(DedupPolicy::Exact);
    let outcome = dedup.admit_round(vec![
        scored("show old patients", Q_AGE, 5),
        scored("show old patients", Q_DISEASE, 0),
        scored("show old patients", Q_AGE, 5),
    ]);
    // Same NL with different SQL is two distinct exact keys; only the
    // true repeat drops.
    assert_eq!(outcome.pairs.len(), 2);
    assert_eq!(outcome.exact_dropped, 1);
    assert_eq!(outcome.conflicts_resolved, 0);
}

/// The chunk-size/thread invariance property: for any rounds-per-chunk
/// and any thread count, a streaming run emits byte-identical JSONL.
#[test]
fn chunking_and_threads_never_change_emitted_bytes() {
    let schema = schema();
    forall!(cases = 8, |rng| {
        let seed = rng.next_u64();
        let max_rounds = rng.gen_range(1usize..4);
        let baseline = {
            let opts = StreamOptions {
                max_rounds,
                rounds_per_chunk: 1,
                ..StreamOptions::corpus(0)
            };
            let mut sink = DigestSink::new();
            TrainingPipeline::new(tiny_config(seed))
                .stream(&[&schema], &opts, &mut sink)
                .expect("digest streaming cannot fail");
            (sink.digest(), sink.pairs())
        };
        let rounds_per_chunk = rng.gen_range(1usize..6);
        let threads = rng.gen_range(1usize..5);
        let opts = StreamOptions {
            max_rounds,
            rounds_per_chunk,
            ..StreamOptions::corpus(0)
        };
        let cfg = GenerationConfig {
            threads,
            ..tiny_config(seed)
        };
        let mut sink = DigestSink::new();
        let report = TrainingPipeline::new(cfg)
            .stream(&[&schema], &opts, &mut sink)
            .expect("digest streaming cannot fail");
        report
            .check_consistency()
            .unwrap_or_else(|e| panic!("inconsistent report: {e}"));
        assert_eq!(
            (sink.digest(), sink.pairs()),
            baseline,
            "seed {seed:#x}: rounds_per_chunk {rounds_per_chunk} at {threads} threads \
             diverged from the per-round single-thread stream"
        );
    });
}

/// Streaming JSONL round-trips: the bytes a `JsonlSink` writes parse
/// back into exactly the pairs a `MemorySink` collects from the same
/// run.
#[test]
fn jsonl_stream_round_trips_to_memory_sink() {
    let schema = schema();
    let opts = StreamOptions {
        max_rounds: 2,
        ..StreamOptions::corpus(0)
    };
    let mut jsonl = JsonlSink::new(Vec::new());
    TrainingPipeline::new(tiny_config(0xBEEF))
        .stream(&[&schema], &opts, &mut jsonl)
        .expect("vec streaming cannot fail");
    let mut memory = MemorySink::new();
    TrainingPipeline::new(tiny_config(0xBEEF))
        .stream(&[&schema], &opts, &mut memory)
        .expect("memory streaming cannot fail");

    let text = String::from_utf8(jsonl.into_inner()).expect("JSONL is UTF-8");
    let reparsed = corpus_from_jsonl(&text).expect("written JSONL parses");
    let expected = memory.into_corpus();
    assert!(expected.len() > 100);
    assert_eq!(reparsed.len(), expected.len());
    for (a, b) in reparsed.pairs().iter().zip(expected.pairs()) {
        assert_eq!(a.nl, b.nl);
        assert_eq!(a.sql_text(), b.sql_text());
        assert_eq!(a.template_id, b.template_id);
        assert_eq!(a.provenance, b.provenance);
        assert_eq!(a.nl_lemmas, b.nl_lemmas);
    }
}

#[test]
fn split_sink_routes_each_pair_exactly_once_and_deterministically() {
    let schema = schema();
    let mut memory = MemorySink::new();
    TrainingPipeline::new(tiny_config(0x5111))
        .stream(
            &[&schema],
            &StreamOptions {
                max_rounds: 2,
                ..StreamOptions::corpus(0)
            },
            &mut memory,
        )
        .expect("memory streaming cannot fail");
    let corpus = memory.into_corpus();

    let route = |fraction: f64| {
        let mut train = MemorySink::new();
        let mut test = MemorySink::new();
        let mut split = SplitSink::new(&mut train, &mut test, fraction);
        for pair in corpus.pairs() {
            split
                .accept(pair.clone())
                .expect("memory sinks cannot fail");
        }
        assert_eq!(split.train_pairs() + split.test_pairs(), corpus.len());
        let test_nl: Vec<String> = {
            let n = split.test_pairs();
            let _ = n;
            test.into_corpus()
                .pairs()
                .iter()
                .map(|p| p.nl.clone())
                .collect()
        };
        (train.len(), test_nl)
    };

    // Degenerate fractions: everything on one side.
    let (train_all, test_none) = route(0.0);
    assert_eq!((train_all, test_none.len()), (corpus.len(), 0));

    // A real split lands pairs on both sides and is order-independent:
    // the same pairs go to the same side on a second pass.
    let (train_a, test_a) = route(0.2);
    let (train_b, test_b) = route(0.2);
    assert!(
        train_a > 0 && !test_a.is_empty(),
        "split produced an empty side"
    );
    assert_eq!(train_a, train_b);
    assert_eq!(test_a, test_b);
}

/// Provenance weighting is visible in aggregate: with the full
/// augmentation mix, weighted test fractions differ between provenance
/// classes (noisy classes are underweighted relative to seeds).
#[test]
fn split_weights_shift_noisy_provenance_toward_training() {
    use dbpal_core::provenance_split_weight;
    assert!(
        provenance_split_weight(Provenance::Manual) > provenance_split_weight(Provenance::Seed)
    );
    assert!(
        provenance_split_weight(Provenance::Seed)
            > provenance_split_weight(Provenance::Paraphrased)
    );
    assert!(
        provenance_split_weight(Provenance::Paraphrased)
            > provenance_split_weight(Provenance::Dropped)
    );
}

/// A multi-schema stream cycles schemas round-robin: with two schemas
/// and two rounds, both appear in the output.
#[test]
fn multi_schema_stream_covers_every_schema() {
    let hospital = schema();
    let geo = SchemaBuilder::new("geo")
        .table("cities", |t| {
            t.column("name", SqlType::Text)
                .column_with("population", SqlType::Integer, |c| {
                    c.domain(SemanticDomain::Population)
                })
        })
        .build()
        .unwrap();
    let mut sink = MemorySink::new();
    let report = TrainingPipeline::new(tiny_config(0xC1C1))
        .stream(
            &[&hospital, &geo],
            &StreamOptions {
                max_rounds: 2,
                ..StreamOptions::corpus(0)
            },
            &mut sink,
        )
        .expect("memory streaming cannot fail");
    assert_eq!(report.rounds.len(), 2);
    let corpus = sink.into_corpus();
    let has = |table: &str| corpus.pairs().iter().any(|p| p.sql_text().contains(table));
    assert!(has("patients"), "round 0 schema missing from the stream");
    assert!(has("cities"), "round 1 schema missing from the stream");
}
