//! Generation-pipeline configuration: the tuning parameters ϕ of Table 1.

use dbpal_analyze::AnalyzerPolicy;
use dbpal_util::{ParStrategy, Rng};

/// All parameters of the data generation procedure (paper Table 1),
/// split into *data instantiation* and *data augmentation* groups.
///
/// The defaults are the "empirically determined" values used throughout
/// the paper's evaluation (§3.2.1); [`GenerationConfig::sample`] draws a
/// random candidate for the optimization procedure of §3.3.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerationConfig {
    // --- Data instantiation ---
    /// Maximum number of instances created for a NL-SQL template pair
    /// using slot-filling dictionaries (`size_slotfills`).
    pub size_slot_fills: usize,
    /// Maximum number of tables supported in join queries (`size_tables`).
    pub size_tables: usize,
    /// Probability of generating a GROUP BY version of a generated query
    /// pair (`groupby_p`).
    pub group_by_p: f64,
    /// Multiplier on the number of join-query instances (`join_boost`).
    pub join_boost: f64,
    /// Multiplier on the number of aggregation instances (`agg_boost`).
    pub agg_boost: f64,
    /// Multiplier on the number of nested-query instances (`nest_boost`).
    pub nest_boost: f64,

    // --- Data augmentation ---
    /// Maximum size (in words) of subclauses replaced by a paraphrase
    /// (`size_para`).
    pub size_para: usize,
    /// Maximum number of paraphrases used to vary a subclause
    /// (`num_para`).
    pub num_para: usize,
    /// Maximum number of word-dropped duplicates per input NL query
    /// (`num_missing`).
    pub num_missing: usize,
    /// Probability of dropping words from a generated query at all
    /// (`rand_drop_p`).
    pub rand_drop_p: f64,

    // --- Implementation knobs (documented in DESIGN.md) ---
    /// Quality floor for paraphrases drawn from the store; lowering it
    /// admits noisier paraphrases (the §3.2.1 noise trade-off).
    pub paraphrase_min_quality: f32,
    /// Restrict word dropout to droppable POS classes (the §3.2.3
    /// future-work extension; off reproduces the paper's base system).
    pub pos_gated_dropout: bool,
    /// Only accept paraphrases whose part of speech matches the replaced
    /// phrase (the other §3.2.3 extension: "use them in the automatic
    /// paraphrasing to identify better paraphrases"). Off by default.
    pub pos_aware_paraphrasing: bool,
    /// What the pipeline's static-analysis stage does with findings:
    /// skip the stage (`Off`), count findings but keep every pair
    /// (`Warn`), or drop pairs with error-severity diagnostics
    /// (`Reject`, the default). Counts surface in the `PipelineReport`.
    pub analyzer_policy: AnalyzerPolicy,
    /// RNG seed for reproducible corpus generation.
    pub seed: u64,
    /// Worker threads for the parallel pipeline stages (template
    /// instantiation, augmentation, lemmatization). `0` means "use all
    /// available parallelism". The corpus is byte-identical for a given
    /// `seed` regardless of this value — every work unit draws from its
    /// own [`dbpal_util::stream_seed`]-derived stream and shards merge
    /// in input order — so `threads` only changes wall-clock time.
    pub threads: usize,
    /// How the parallel stages execute: the process-wide persistent
    /// [`WorkerPool`](dbpal_util::WorkerPool) by default, a pinned
    /// pool, or scoped spawn-per-call. Like `threads`, never changes
    /// the corpus bytes.
    pub par: ParStrategy,
}

impl Default for GenerationConfig {
    fn default() -> Self {
        GenerationConfig {
            size_slot_fills: 40,
            size_tables: 3,
            group_by_p: 0.3,
            join_boost: 1.5,
            agg_boost: 1.5,
            nest_boost: 2.0,
            size_para: 2,
            num_para: 3,
            num_missing: 2,
            rand_drop_p: 0.3,
            paraphrase_min_quality: 0.5,
            pos_gated_dropout: false,
            pos_aware_paraphrasing: false,
            analyzer_policy: AnalyzerPolicy::default(),
            seed: 0x0DBA1,
            threads: 0,
            par: ParStrategy::default(),
        }
    }
}

impl GenerationConfig {
    /// Draw a random candidate configuration for the random-search
    /// optimization procedure (§3.3). Ranges bracket the defaults.
    pub fn sample(rng: &mut Rng) -> Self {
        GenerationConfig {
            size_slot_fills: rng.gen_range(5..=80),
            size_tables: rng.gen_range(2..=4),
            group_by_p: rng.gen_range(0.05..=0.6),
            join_boost: rng.gen_range(0.5..=3.0),
            agg_boost: rng.gen_range(0.5..=3.0),
            nest_boost: rng.gen_range(0.5..=3.0),
            size_para: rng.gen_range(1..=3),
            num_para: rng.gen_range(0..=6),
            num_missing: rng.gen_range(0..=4),
            rand_drop_p: rng.gen_range(0.0..=0.7),
            paraphrase_min_quality: rng.gen_range(0.0..=0.9),
            pos_gated_dropout: rng.gen_bool(0.5),
            pos_aware_paraphrasing: rng.gen_bool(0.5),
            // Not a generation parameter: the gate decides what ships,
            // not what is synthesized, so the search space excludes it.
            analyzer_policy: AnalyzerPolicy::default(),
            seed: rng.next_u64(),
            // Not a generation parameter: threads never changes the
            // corpus, so the search space excludes it.
            threads: 0,
            par: ParStrategy::default(),
        }
    }

    /// The effective worker count: `threads`, or all available
    /// parallelism when `threads == 0`.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            dbpal_util::auto_threads()
        } else {
            self.threads
        }
    }

    /// A scaled-down copy for fast tests and smoke runs.
    pub fn small() -> Self {
        GenerationConfig {
            size_slot_fills: 6,
            num_para: 1,
            num_missing: 1,
            ..Default::default()
        }
    }

    /// Validate parameter sanity; returns a description of the first
    /// violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.size_slot_fills == 0 {
            return Err("size_slot_fills must be positive".into());
        }
        if self.size_tables < 2 {
            return Err("size_tables must be at least 2 (joins need two tables)".into());
        }
        if !(0.0..=1.0).contains(&self.group_by_p) {
            return Err("group_by_p must be a probability".into());
        }
        if !(0.0..=1.0).contains(&self.rand_drop_p) {
            return Err("rand_drop_p must be a probability".into());
        }
        for (name, v) in [
            ("join_boost", self.join_boost),
            ("agg_boost", self.agg_boost),
            ("nest_boost", self.nest_boost),
        ] {
            if v < 0.0 || !v.is_finite() {
                return Err(format!("{name} must be a non-negative finite number"));
            }
        }
        if !(0.0..=1.0).contains(&self.paraphrase_min_quality) {
            return Err("paraphrase_min_quality must be in [0, 1]".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert_eq!(GenerationConfig::default().validate(), Ok(()));
    }

    #[test]
    fn small_is_valid() {
        assert_eq!(GenerationConfig::small().validate(), Ok(()));
    }

    #[test]
    fn samples_are_valid() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..200 {
            let c = GenerationConfig::sample(&mut rng);
            assert_eq!(c.validate(), Ok(()), "invalid sample: {c:?}");
        }
    }

    #[test]
    fn sampling_varies() {
        let mut rng = Rng::seed_from_u64(7);
        let a = GenerationConfig::sample(&mut rng);
        let b = GenerationConfig::sample(&mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn effective_threads_resolves_auto() {
        let auto = GenerationConfig::default();
        assert!(auto.effective_threads() >= 1);
        let pinned = GenerationConfig {
            threads: 3,
            ..Default::default()
        };
        assert_eq!(pinned.effective_threads(), 3);
    }

    #[test]
    fn invalid_configs_rejected() {
        let c = GenerationConfig {
            size_slot_fills: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());

        let c = GenerationConfig {
            group_by_p: 1.5,
            ..Default::default()
        };
        assert!(c.validate().is_err());

        let c = GenerationConfig {
            join_boost: f64::NAN,
            ..Default::default()
        };
        assert!(c.validate().is_err());

        let c = GenerationConfig {
            size_tables: 1,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }
}
