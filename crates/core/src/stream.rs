//! Streaming corpus production: bounded-memory generation into sinks.
//!
//! The one-shot pipeline materializes a whole corpus per schema, which
//! caps corpus size at available memory. Real fine-tuning corpora are
//! hundreds of thousands of pairs, so this module turns the pipeline
//! into a *producer*: [`TrainingPipeline::stream`] runs the existing
//! generate → augment → lemmatize → dedup → analyze stages repeatedly
//! in seeded **rounds**, pushes every surviving pair into a
//! [`CorpusSink`], and never holds more than one round of pairs plus
//! the dedup index in memory.
//!
//! # Determinism contract
//!
//! The emitted byte stream is a pure function of the configuration:
//!
//! * **Round seeding** — round 0 runs on the configured seed itself
//!   (so a single-round stream reproduces the classic `generate()`
//!   corpus byte-for-byte), and round `r > 0` runs on
//!   `stream_seed(seed, r)`. Rounds cycle the schema list in order.
//! * **Thread counts** never change bytes: each round is a full
//!   pipeline run, which is already thread-count-invariant.
//! * **Chunking** never changes bytes: `rounds_per_chunk` only decides
//!   how many rounds pass between report/probe boundaries. Dedup is
//!   resolved *per round* (never per chunk), and the target-pairs stop
//!   condition is evaluated only at round boundaries.
//!
//! # Dedup semantics
//!
//! [`StreamDedup`] keeps a compact FNV-keyed index across rounds:
//!
//! * [`DedupPolicy::Exact`] drops later pairs with an identical
//!   (lemmatized-NL, SQL) key — the classic corpus dedup, extended
//!   across rounds.
//! * [`DedupPolicy::ResolveConflicts`] additionally resolves same-NL /
//!   *conflicting*-SQL collisions: within a round the analyzer-cleanest
//!   pair wins (strictly lower [`crate::pipeline::SCORE_ERROR_WEIGHT`]
//!   -based score; ties keep the first seen), and across rounds the
//!   already-emitted pair always stays — emitted bytes are never
//!   retracted, which is what keeps the stream chunk-invariant.
//!
//! The index stores 64-bit FNV-1a keys, not pair text, so 100k pairs
//! cost a few megabytes. (At that scale the probability of a 64-bit
//! collision is ~1e-10 — acceptable for corpus dedup, and any collision
//! only drops one extra pair, never corrupts output.)
//!
//! # Ceiling methodology
//!
//! [`StreamReport`] carries two memory observations per run: the
//! kernel-reported peak resident set sampled at every chunk boundary
//! ([`dbpal_util::resident_bytes`]), and a conservative sink-side
//! estimate (`max` over chunks of bytes accepted in that chunk plus the
//! dedup-index footprint) for platforms without procfs. The corpus gate
//! asserts the probe against its configured ceiling.

use crate::pipeline::PipelineReport;
use crate::templates::{catalog, SeedTemplate};
use crate::{
    pair_to_jsonl, GenerationConfig, Provenance, StageTimings, TrainingCorpus, TrainingPair,
    TrainingPipeline,
};
use dbpal_schema::Schema;
use dbpal_util::{fnv1a, resident_bytes, stream_seed, Fnv1a};
use std::collections::HashMap;
use std::io::Write;

/// Errors a sink can surface while accepting pairs.
#[derive(Debug)]
pub enum SinkError {
    /// The underlying writer failed.
    Io(std::io::Error),
}

impl std::fmt::Display for SinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SinkError::Io(e) => write!(f, "sink I/O error: {e}"),
        }
    }
}

impl std::error::Error for SinkError {}

impl From<std::io::Error> for SinkError {
    fn from(e: std::io::Error) -> Self {
        SinkError::Io(e)
    }
}

/// Errors from a streaming run.
#[derive(Debug)]
pub enum StreamError {
    /// Invalid [`StreamOptions`] or inputs.
    Options(String),
    /// The sink failed.
    Sink(SinkError),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Options(e) => write!(f, "invalid stream options: {e}"),
            StreamError::Sink(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StreamError {}

/// A consumer of streamed training pairs.
///
/// `accept` takes ownership of each emitted pair (in emission order —
/// the deterministic order the contract above pins) and returns the
/// number of bytes the sink accounted for it, which feeds the
/// memory-ceiling estimate. `finish` flushes whatever the sink
/// buffers; the driver calls it exactly once, after the last round.
pub trait CorpusSink {
    /// Consume one pair; returns the bytes accounted for it.
    fn accept(&mut self, pair: TrainingPair) -> Result<usize, SinkError>;

    /// Flush buffered state. Default: nothing to flush.
    fn finish(&mut self) -> Result<(), SinkError> {
        Ok(())
    }
}

/// The stable NL-side dedup key: lemmatized tokens when present, else
/// the lowercased raw NL — exactly the key [`TrainingCorpus::dedup`]
/// uses, so the streaming layer and the in-round dedup stage agree.
fn nl_key(pair: &TrainingPair) -> String {
    if pair.nl_lemmas.is_empty() {
        pair.nl.to_lowercase()
    } else {
        pair.nl_lemmas.join(" ")
    }
}

/// FNV-1a over `nl_key`, a separator, and the SQL text: the exact-pair
/// identity used by [`DedupPolicy::Exact`].
fn pair_hash(pair: &TrainingPair) -> u64 {
    let mut h = Fnv1a::new();
    h.update(nl_key(pair).as_bytes());
    h.update(&[0x1f]);
    h.update(pair.sql_text().as_bytes());
    h.finish()
}

/// Writes one compact JSON object per pair (JSONL), tracking pair
/// count, byte count, and a running FNV-1a digest over the emitted
/// bytes. The digest of a [`DigestSink`] run with the same
/// configuration is identical by construction — that is the
/// 1-vs-8-threads byte-identity check the corpus gate runs without
/// writing the file twice.
pub struct JsonlSink<W: Write> {
    writer: W,
    digest: Fnv1a,
    pairs: usize,
    bytes: u64,
}

impl<W: Write> JsonlSink<W> {
    /// Wrap a writer (pass something buffered for real files).
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer,
            digest: Fnv1a::new(),
            pairs: 0,
            bytes: 0,
        }
    }

    /// FNV-1a digest over every byte written so far.
    pub fn digest(&self) -> u64 {
        self.digest.finish()
    }

    /// Pairs written so far.
    pub fn pairs(&self) -> usize {
        self.pairs
    }

    /// Bytes written so far.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Unwrap the inner writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write> CorpusSink for JsonlSink<W> {
    fn accept(&mut self, pair: TrainingPair) -> Result<usize, SinkError> {
        let mut line = pair_to_jsonl(&pair);
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.digest.update(line.as_bytes());
        self.pairs += 1;
        self.bytes += line.len() as u64;
        Ok(line.len())
    }

    fn finish(&mut self) -> Result<(), SinkError> {
        self.writer.flush()?;
        Ok(())
    }
}

/// Counts and digests exactly what a [`JsonlSink`] would write, without
/// writing anything — the cheap determinism witness.
#[derive(Debug, Default)]
pub struct DigestSink {
    digest: Fnv1a,
    pairs: usize,
    bytes: u64,
}

impl DigestSink {
    /// An empty digesting sink.
    pub fn new() -> Self {
        DigestSink {
            digest: Fnv1a::new(),
            pairs: 0,
            bytes: 0,
        }
    }

    /// FNV-1a digest over the JSONL bytes the run would have written.
    pub fn digest(&self) -> u64 {
        self.digest.finish()
    }

    /// Pairs accepted.
    pub fn pairs(&self) -> usize {
        self.pairs
    }

    /// Bytes the equivalent JSONL file would hold.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl CorpusSink for DigestSink {
    fn accept(&mut self, pair: TrainingPair) -> Result<usize, SinkError> {
        let mut line = pair_to_jsonl(&pair);
        line.push('\n');
        self.digest.update(line.as_bytes());
        self.pairs += 1;
        self.bytes += line.len() as u64;
        Ok(line.len())
    }
}

/// Collects pairs into a [`TrainingCorpus`] — the sink behind the
/// classic `generate`/`generate_with_report` API. Byte accounting is a
/// cheap in-memory estimate (string lengths plus fixed per-pair
/// overhead), not a serialized size.
#[derive(Debug, Default)]
pub struct MemorySink {
    pairs: Vec<TrainingPair>,
}

impl MemorySink {
    /// An empty in-memory sink.
    pub fn new() -> Self {
        MemorySink { pairs: Vec::new() }
    }

    /// Pairs collected so far.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Unwrap into a corpus.
    pub fn into_corpus(self) -> TrainingCorpus {
        TrainingCorpus::from_pairs(self.pairs)
    }
}

impl CorpusSink for MemorySink {
    fn accept(&mut self, pair: TrainingPair) -> Result<usize, SinkError> {
        let est = pair.nl.len()
            + pair.nl_lemmas.iter().map(|l| l.len() + 1).sum::<usize>()
            + pair.template_id.len()
            + 48;
        self.pairs.push(pair);
        Ok(est)
    }
}

/// The share of the test split a pair's provenance earns relative to
/// the base test fraction: seed pairs ride at par, manual pairs are
/// overweighted (scarce, human-curated — the most valuable held-out
/// evaluation data), and the noisier augmentation provenances are
/// underweighted so synthetic noise mostly stays on the training side.
pub fn provenance_split_weight(p: Provenance) -> f64 {
    match p {
        Provenance::Seed => 1.0,
        Provenance::Manual => 1.25,
        Provenance::Paraphrased => 0.75,
        Provenance::Comparative => 0.75,
        Provenance::Dropped => 0.5,
    }
}

/// Routes each pair to a train or test sink by a deterministic
/// content hash, with the per-provenance weights of
/// [`provenance_split_weight`] scaling the base test fraction. The
/// routing depends only on pair content, so the same pair lands on the
/// same side regardless of thread count, chunking, or arrival order.
pub struct SplitSink<'a> {
    train: &'a mut dyn CorpusSink,
    test: &'a mut dyn CorpusSink,
    test_fraction: f64,
    train_pairs: usize,
    test_pairs: usize,
}

impl<'a> SplitSink<'a> {
    /// Split into `train`/`test` with the given base test fraction
    /// (clamped to `[0, 1]`).
    pub fn new(
        train: &'a mut dyn CorpusSink,
        test: &'a mut dyn CorpusSink,
        test_fraction: f64,
    ) -> Self {
        SplitSink {
            train,
            test,
            test_fraction: test_fraction.clamp(0.0, 1.0),
            train_pairs: 0,
            test_pairs: 0,
        }
    }

    /// Pairs routed to the training side.
    pub fn train_pairs(&self) -> usize {
        self.train_pairs
    }

    /// Pairs routed to the test side.
    pub fn test_pairs(&self) -> usize {
        self.test_pairs
    }
}

impl CorpusSink for SplitSink<'_> {
    fn accept(&mut self, pair: TrainingPair) -> Result<usize, SinkError> {
        let p_test =
            (self.test_fraction * provenance_split_weight(pair.provenance)).clamp(0.0, 1.0);
        let mut h = Fnv1a::new();
        h.update(nl_key(&pair).as_bytes());
        h.update(&[0x1f]);
        h.update(pair.template_id.as_bytes());
        // Top 53 bits → a uniform fraction in [0, 1).
        let frac = (h.finish() >> 11) as f64 / (1u64 << 53) as f64;
        if frac < p_test {
            self.test_pairs += 1;
            self.test.accept(pair)
        } else {
            self.train_pairs += 1;
            self.train.accept(pair)
        }
    }

    fn finish(&mut self) -> Result<(), SinkError> {
        self.train.finish()?;
        self.test.finish()
    }
}

/// How the streaming layer treats repeated content across rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DedupPolicy {
    /// Drop later pairs whose (lemmatized NL, SQL) exactly matches an
    /// emitted one — the classic corpus dedup, extended across rounds.
    Exact,
    /// [`DedupPolicy::Exact`] plus same-NL/conflicting-SQL resolution:
    /// within a round the analyzer-cleanest pair wins (ties keep the
    /// first seen); across rounds the already-emitted pair stays.
    ResolveConflicts,
}

/// What one [`StreamDedup::admit_round`] call decided.
#[derive(Debug)]
pub struct AdmitOutcome {
    /// Pairs to emit, in deterministic order (first-seen positions).
    pub pairs: Vec<TrainingPair>,
    /// Pairs dropped as exact duplicates of emitted content.
    pub exact_dropped: usize,
    /// Pairs dropped as conflict losers (same NL, different SQL).
    pub conflicts_resolved: usize,
}

/// The streaming dedup index: FNV keys only, never pair text, so the
/// footprint stays flat per pair regardless of NL/SQL length.
pub struct StreamDedup {
    policy: DedupPolicy,
    /// `Exact`: key is the full pair hash, value unused (0).
    /// `ResolveConflicts`: key is the NL hash, value the winner's SQL
    /// hash (to tell exact repeats from conflicts in later rounds).
    index: HashMap<u64, u64>,
}

impl StreamDedup {
    /// An empty index under `policy`.
    pub fn new(policy: DedupPolicy) -> Self {
        StreamDedup {
            policy,
            index: HashMap::new(),
        }
    }

    /// Entries in the cross-round index.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether nothing has been admitted yet.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Admit one generation round of analyzer-scored pairs (lower score
    /// = cleaner; see [`crate::pipeline::SCORE_ERROR_WEIGHT`]).
    /// Resolution scope is exactly this call: conflicts are settled
    /// among the round's pairs, then the winners are committed to the
    /// cross-round index — which is why chunk boundaries can never
    /// change what gets emitted.
    pub fn admit_round(&mut self, scored: Vec<(TrainingPair, u32)>) -> AdmitOutcome {
        match self.policy {
            DedupPolicy::Exact => self.admit_exact(scored),
            DedupPolicy::ResolveConflicts => self.admit_resolving(scored),
        }
    }

    fn admit_exact(&mut self, scored: Vec<(TrainingPair, u32)>) -> AdmitOutcome {
        let mut out = AdmitOutcome {
            pairs: Vec::with_capacity(scored.len()),
            exact_dropped: 0,
            conflicts_resolved: 0,
        };
        for (pair, _) in scored {
            let key = pair_hash(&pair);
            if let std::collections::hash_map::Entry::Vacant(slot) = self.index.entry(key) {
                slot.insert(0);
                out.pairs.push(pair);
            } else {
                out.exact_dropped += 1;
            }
        }
        out
    }

    fn admit_resolving(&mut self, scored: Vec<(TrainingPair, u32)>) -> AdmitOutcome {
        let mut out = AdmitOutcome {
            pairs: Vec::with_capacity(scored.len()),
            exact_dropped: 0,
            conflicts_resolved: 0,
        };
        // Within-round winners: NL hash → (slot in `out.pairs`, SQL
        // hash, score). Replacement happens in place at the first-seen
        // slot, so emission order is stable under resolution.
        let mut slots: HashMap<u64, (usize, u64, u32)> = HashMap::new();
        for (pair, score) in scored {
            let nl_h = fnv1a(nl_key(&pair).as_bytes());
            let sql_h = fnv1a(pair.sql_text().as_bytes());
            if let Some(&winner_sql) = self.index.get(&nl_h) {
                // An earlier round already emitted this NL; emitted
                // bytes are final.
                if winner_sql == sql_h {
                    out.exact_dropped += 1;
                } else {
                    out.conflicts_resolved += 1;
                }
                continue;
            }
            match slots.get(&nl_h).copied() {
                None => {
                    slots.insert(nl_h, (out.pairs.len(), sql_h, score));
                    out.pairs.push(pair);
                }
                Some((slot, incumbent_sql, incumbent_score)) => {
                    if incumbent_sql == sql_h {
                        out.exact_dropped += 1;
                    } else if score < incumbent_score {
                        // Strictly cleaner challenger wins the slot;
                        // a tie keeps the incumbent (first seen).
                        out.conflicts_resolved += 1;
                        out.pairs[slot] = pair;
                        slots.insert(nl_h, (slot, sql_h, score));
                    } else {
                        out.conflicts_resolved += 1;
                    }
                }
            }
        }
        for (nl_h, (_, sql_h, _)) in slots {
            self.index.insert(nl_h, sql_h);
        }
        out
    }
}

/// Knobs for a streaming run.
#[derive(Debug, Clone)]
pub struct StreamOptions {
    /// Stop after the first round boundary at which at least this many
    /// pairs have been emitted; `0` means "run `max_rounds` rounds".
    pub target_pairs: usize,
    /// Hard cap on generation rounds (each round is one full pipeline
    /// run over the next schema in the cycle).
    pub max_rounds: usize,
    /// Rounds between chunk boundaries (report rows + resident-set
    /// probes). Affects observability granularity only, never bytes.
    pub rounds_per_chunk: usize,
    /// Cross-round dedup policy.
    pub dedup: DedupPolicy,
}

impl StreamOptions {
    /// The configuration equivalent to the classic one-shot API: one
    /// round, exact dedup (which a single round never triggers — the
    /// pipeline's own dedup stage already ran).
    pub fn one_shot() -> Self {
        StreamOptions {
            target_pairs: 0,
            max_rounds: 1,
            rounds_per_chunk: 1,
            dedup: DedupPolicy::Exact,
        }
    }

    /// Corpus-scale defaults: run until `target_pairs`, resolve NL
    /// conflicts, probe memory every few rounds.
    pub fn corpus(target_pairs: usize) -> Self {
        StreamOptions {
            target_pairs,
            max_rounds: 1024,
            rounds_per_chunk: 4,
            dedup: DedupPolicy::ResolveConflicts,
        }
    }

    /// Validate the knobs; returns the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_rounds == 0 {
            return Err("max_rounds must be at least 1".into());
        }
        if self.rounds_per_chunk == 0 {
            return Err("rounds_per_chunk must be at least 1".into());
        }
        Ok(())
    }
}

/// Accounting for one chunk (a batch of `rounds_per_chunk` rounds).
#[derive(Debug, Clone)]
pub struct ChunkReport {
    /// 0-based chunk index.
    pub chunk: usize,
    /// Rounds this chunk ran.
    pub rounds: usize,
    /// Analyzer-clean pairs the rounds produced (pre stream-dedup).
    pub generated: usize,
    /// Pairs emitted to the sink.
    pub emitted: usize,
    /// Exact duplicates dropped by the stream index.
    pub exact_dropped: usize,
    /// Conflict losers dropped by the stream index.
    pub conflicts_resolved: usize,
    /// Bytes the sink accounted for this chunk's pairs.
    pub bytes_accepted: u64,
    /// Dedup-index entries after this chunk.
    pub index_entries: usize,
    /// Per-stage wall time summed over the chunk's rounds.
    pub stage: StageTimings,
    /// Kernel resident-set size at the chunk boundary, when available.
    pub resident_bytes: Option<u64>,
}

/// Accounting for a whole streaming run.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// The base seed the round seeds derive from.
    pub seed: u64,
    /// Resolved worker threads per round.
    pub threads: usize,
    /// Schemas in the cycle.
    pub schemas: usize,
    /// Per-round pipeline reports, in round order.
    pub rounds: Vec<PipelineReport>,
    /// Per-chunk accounting, in chunk order.
    pub chunks: Vec<ChunkReport>,
    /// Pairs emitted to the sink.
    pub emitted: usize,
    /// Analyzer-clean pairs the rounds produced (pre stream-dedup).
    pub generated: usize,
    /// Bytes the sink accounted for all emitted pairs.
    pub bytes_accepted: u64,
    /// Exact duplicates dropped by the stream index.
    pub exact_dropped: usize,
    /// Conflict losers dropped by the stream index.
    pub conflicts_resolved: usize,
    /// Pairs the analyzer rejected inside the rounds (0 under the
    /// default policy — generation only emits analyzable SQL).
    pub analyzer_rejected: usize,
    /// The configured pair target (0 = none).
    pub target_pairs: usize,
    /// Whether the target was met before `max_rounds` ran out (always
    /// true when no target was set).
    pub target_reached: bool,
    /// Final dedup-index entry count.
    pub index_entries: usize,
    /// Maximum kernel resident-set observation across chunk
    /// boundaries, when the platform exposes one.
    pub peak_resident_bytes: Option<u64>,
    /// Sink-side ceiling estimate: max over chunks of that chunk's
    /// accepted bytes plus the dedup-index footprint at the time.
    pub estimated_peak_bytes: u64,
    /// Per-stage wall time summed over every round.
    pub timings: StageTimings,
}

impl StreamReport {
    /// Dropped pairs as a fraction of analyzer-clean generated pairs.
    pub fn dedup_rate(&self) -> f64 {
        if self.generated == 0 {
            0.0
        } else {
            (self.exact_dropped + self.conflicts_resolved) as f64 / self.generated as f64
        }
    }

    /// Unwrap the per-round pipeline reports.
    pub fn into_rounds(self) -> Vec<PipelineReport> {
        self.rounds
    }

    /// Verify the cross-chunk accounting invariants; returns a
    /// description of the first violation.
    pub fn check_consistency(&self) -> Result<(), String> {
        let sums = self.chunks.iter().fold((0, 0, 0, 0, 0u64), |acc, c| {
            (
                acc.0 + c.rounds,
                acc.1 + c.generated,
                acc.2 + c.emitted,
                acc.3 + c.exact_dropped + c.conflicts_resolved,
                acc.4 + c.bytes_accepted,
            )
        });
        if sums.0 != self.rounds.len() {
            return Err(format!(
                "chunk rounds sum to {}, run has {} round reports",
                sums.0,
                self.rounds.len()
            ));
        }
        if sums.1 != self.generated || sums.2 != self.emitted || sums.4 != self.bytes_accepted {
            return Err("chunk totals disagree with run totals".into());
        }
        if self.generated != self.emitted + self.exact_dropped + self.conflicts_resolved {
            return Err(format!(
                "generated {} != emitted {} + exact {} + conflicts {}",
                self.generated, self.emitted, self.exact_dropped, self.conflicts_resolved
            ));
        }
        if sums.3 != self.exact_dropped + self.conflicts_resolved {
            return Err("chunk drop counts disagree with run totals".into());
        }
        if self.rounds.iter().map(|r| r.final_pairs).sum::<usize>() != self.generated {
            return Err("round final_pairs do not sum to generated".into());
        }
        if self
            .rounds
            .iter()
            .map(|r| r.analyzer.rejected)
            .sum::<usize>()
            != self.analyzer_rejected
        {
            return Err("round analyzer rejects do not sum".into());
        }
        for (i, round) in self.rounds.iter().enumerate() {
            round
                .check_consistency()
                .map_err(|e| format!("round {i}: {e}"))?;
        }
        if self.target_pairs > 0 && self.target_reached && self.emitted < self.target_pairs {
            return Err(format!(
                "target marked reached at {} < {} pairs",
                self.emitted, self.target_pairs
            ));
        }
        Ok(())
    }

    /// A multi-line human-readable rendering (printed by the corpus
    /// gate).
    pub fn render(&self) -> String {
        let mut out = format!(
            "stream report (seed {:#x}, threads {}, {} schemas)\n",
            self.seed, self.threads, self.schemas
        );
        out += &format!(
            "  rounds    {} in {} chunks\n",
            self.rounds.len(),
            self.chunks.len()
        );
        out += &format!(
            "  pairs     {} emitted of {} generated (dedup rate {:.3}: {} exact, {} conflicts)\n",
            self.emitted,
            self.generated,
            self.dedup_rate(),
            self.exact_dropped,
            self.conflicts_resolved,
        );
        out += &format!(
            "  bytes     {} accepted, estimated peak {}\n",
            self.bytes_accepted, self.estimated_peak_bytes
        );
        if let Some(rss) = self.peak_resident_bytes {
            out += &format!(
                "  resident  peak {:.1} MiB\n",
                rss as f64 / (1 << 20) as f64
            );
        }
        out += &format!(
            "  analyze   {} rejected across rounds\n",
            self.analyzer_rejected
        );
        if self.target_pairs > 0 {
            out += &format!(
                "  target    {} pairs: {}\n",
                self.target_pairs,
                if self.target_reached {
                    "reached"
                } else {
                    "NOT reached"
                }
            );
        }
        out
    }
}

/// Bytes per dedup-index entry in the ceiling estimate: two 8-byte
/// words plus `HashMap` bucket overhead.
const INDEX_ENTRY_BYTES: u64 = 48;

fn round_seed(base: u64, round: u64) -> u64 {
    if round == 0 {
        base
    } else {
        stream_seed(base, round)
    }
}

impl TrainingPipeline {
    /// Stream pairs into `sink` with the full seed-template catalog.
    /// See the [module docs](self) for the determinism and dedup
    /// contract.
    pub fn stream<S: CorpusSink + ?Sized>(
        &self,
        schemas: &[&Schema],
        opts: &StreamOptions,
        sink: &mut S,
    ) -> Result<StreamReport, StreamError> {
        self.stream_with_templates(schemas, &catalog(), opts, sink)
    }

    /// [`TrainingPipeline::stream`] with an explicit template set.
    pub fn stream_with_templates<S: CorpusSink + ?Sized>(
        &self,
        schemas: &[&Schema],
        templates: &[SeedTemplate],
        opts: &StreamOptions,
        sink: &mut S,
    ) -> Result<StreamReport, StreamError> {
        opts.validate().map_err(StreamError::Options)?;
        if schemas.is_empty() {
            return Err(StreamError::Options(
                "at least one schema is required".into(),
            ));
        }
        let base_seed = self.config().seed;
        let mut dedup = StreamDedup::new(opts.dedup);
        let mut report = StreamReport {
            seed: base_seed,
            threads: self.config().effective_threads(),
            schemas: schemas.len(),
            rounds: Vec::new(),
            chunks: Vec::new(),
            emitted: 0,
            generated: 0,
            bytes_accepted: 0,
            exact_dropped: 0,
            conflicts_resolved: 0,
            analyzer_rejected: 0,
            target_pairs: opts.target_pairs,
            target_reached: opts.target_pairs == 0,
            index_entries: 0,
            peak_resident_bytes: None,
            estimated_peak_bytes: 0,
            timings: StageTimings::default(),
        };
        let mut round = 0usize;
        let mut done = false;
        while round < opts.max_rounds && !done {
            let mut chunk = ChunkReport {
                chunk: report.chunks.len(),
                rounds: 0,
                generated: 0,
                emitted: 0,
                exact_dropped: 0,
                conflicts_resolved: 0,
                bytes_accepted: 0,
                index_entries: 0,
                stage: StageTimings::default(),
                resident_bytes: None,
            };
            while chunk.rounds < opts.rounds_per_chunk && round < opts.max_rounds && !done {
                let config = GenerationConfig {
                    seed: round_seed(base_seed, round as u64),
                    ..self.config().clone()
                };
                let schema = schemas[round % schemas.len()];
                let (scored, round_report) =
                    TrainingPipeline::new(config).run_stages(schema, templates);
                chunk.generated += scored.len();
                chunk.stage.accumulate(&round_report.timings);
                report.analyzer_rejected += round_report.analyzer.rejected;
                report.rounds.push(round_report);

                let admitted = dedup.admit_round(scored);
                chunk.exact_dropped += admitted.exact_dropped;
                chunk.conflicts_resolved += admitted.conflicts_resolved;
                for pair in admitted.pairs {
                    let n = sink.accept(pair).map_err(StreamError::Sink)?;
                    chunk.bytes_accepted += n as u64;
                    chunk.emitted += 1;
                }
                chunk.rounds += 1;
                round += 1;
                if opts.target_pairs > 0 && report.emitted + chunk.emitted >= opts.target_pairs {
                    done = true;
                }
            }
            chunk.index_entries = dedup.len();
            chunk.resident_bytes = resident_bytes();
            report.emitted += chunk.emitted;
            report.generated += chunk.generated;
            report.bytes_accepted += chunk.bytes_accepted;
            report.exact_dropped += chunk.exact_dropped;
            report.conflicts_resolved += chunk.conflicts_resolved;
            report.timings.accumulate(&chunk.stage);
            report.estimated_peak_bytes = report
                .estimated_peak_bytes
                .max(chunk.bytes_accepted + chunk.index_entries as u64 * INDEX_ENTRY_BYTES);
            if let Some(rss) = chunk.resident_bytes {
                report.peak_resident_bytes = Some(report.peak_resident_bytes.unwrap_or(0).max(rss));
            }
            report.chunks.push(chunk);
        }
        sink.finish().map_err(StreamError::Sink)?;
        report.index_entries = dedup.len();
        report.target_reached = opts.target_pairs == 0 || report.emitted >= opts.target_pairs;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbpal_schema::{SchemaBuilder, SemanticDomain, SqlType};

    fn schema() -> Schema {
        SchemaBuilder::new("hospital")
            .table("patients", |t| {
                t.column("name", SqlType::Text)
                    .column_with("age", SqlType::Integer, |c| c.domain(SemanticDomain::Age))
                    .column("disease", SqlType::Text)
            })
            .build()
            .unwrap()
    }

    fn tiny_config(seed: u64) -> GenerationConfig {
        GenerationConfig {
            seed,
            size_slot_fills: 3,
            num_para: 0,
            num_missing: 0,
            ..GenerationConfig::default()
        }
    }

    #[test]
    fn one_shot_stream_matches_generate() {
        let pipeline = TrainingPipeline::new(tiny_config(7));
        let classic = pipeline.generate(&schema());
        let mut sink = MemorySink::new();
        let report = pipeline
            .stream(&[&schema()], &StreamOptions::one_shot(), &mut sink)
            .unwrap();
        report.check_consistency().unwrap();
        let streamed = sink.into_corpus();
        assert_eq!(streamed.pairs(), classic.pairs());
        assert_eq!(report.emitted, classic.len());
        assert_eq!(report.exact_dropped, 0);
        assert_eq!(report.conflicts_resolved, 0);
    }

    #[test]
    fn digest_sink_matches_jsonl_sink() {
        let pipeline = TrainingPipeline::new(tiny_config(11));
        let mut jsonl = JsonlSink::new(Vec::new());
        let mut digest = DigestSink::new();
        let opts = StreamOptions {
            max_rounds: 2,
            ..StreamOptions::corpus(0)
        };
        pipeline.stream(&[&schema()], &opts, &mut jsonl).unwrap();
        pipeline.stream(&[&schema()], &opts, &mut digest).unwrap();
        assert!(jsonl.pairs() > 0);
        assert_eq!(jsonl.digest(), digest.digest());
        assert_eq!(jsonl.pairs(), digest.pairs());
        assert_eq!(jsonl.bytes(), digest.bytes());
        let written = jsonl.into_inner();
        assert_eq!(written.len() as u64, digest.bytes());
        assert_eq!(dbpal_util::fnv1a(&written), digest.digest());
    }

    #[test]
    fn multi_round_streams_drop_cross_round_duplicates() {
        let pipeline = TrainingPipeline::new(tiny_config(3));
        let mut sink = DigestSink::new();
        let opts = StreamOptions {
            max_rounds: 3,
            rounds_per_chunk: 2,
            ..StreamOptions::corpus(0)
        };
        let report = pipeline.stream(&[&schema()], &opts, &mut sink).unwrap();
        report.check_consistency().unwrap();
        assert_eq!(report.rounds.len(), 3);
        assert_eq!(report.chunks.len(), 2);
        // Re-running the pipeline on the same tiny schema with fresh
        // seeds regenerates mostly-identical content, so the stream
        // index must be doing real work.
        assert!(
            report.exact_dropped + report.conflicts_resolved > 0,
            "three rounds on one tiny schema produced no duplicates"
        );
        assert_eq!(report.emitted, sink.pairs());
    }

    #[test]
    fn target_stops_at_round_boundary() {
        let pipeline = TrainingPipeline::new(tiny_config(5));
        let per_round = pipeline.generate(&schema()).len();
        let mut sink = DigestSink::new();
        let opts = StreamOptions {
            target_pairs: per_round + 1,
            max_rounds: 64,
            rounds_per_chunk: 1,
            dedup: DedupPolicy::ResolveConflicts,
        };
        let report = pipeline.stream(&[&schema()], &opts, &mut sink).unwrap();
        report.check_consistency().unwrap();
        assert!(report.target_reached);
        assert!(report.emitted >= opts.target_pairs);
        assert!(
            report.rounds.len() >= 2,
            "target above one round's yield must take at least two rounds"
        );
    }

    #[test]
    fn empty_schema_list_and_bad_options_rejected() {
        let pipeline = TrainingPipeline::new(tiny_config(1));
        let mut sink = DigestSink::new();
        assert!(matches!(
            pipeline.stream(&[], &StreamOptions::one_shot(), &mut sink),
            Err(StreamError::Options(_))
        ));
        let bad = StreamOptions {
            rounds_per_chunk: 0,
            ..StreamOptions::one_shot()
        };
        assert!(matches!(
            pipeline.stream(&[&schema()], &bad, &mut sink),
            Err(StreamError::Options(_))
        ));
    }

    #[test]
    fn round_seeds_are_distinct_and_round0_is_base() {
        assert_eq!(round_seed(0x5EED, 0), 0x5EED);
        let mut seen = std::collections::HashSet::new();
        for r in 0..64 {
            assert!(seen.insert(round_seed(0x5EED, r)), "round {r} seed repeats");
        }
    }
}
