//! Slot-fill lexicons: "manually crafted dictionaries of synonymous words
//! and phrases" used to instantiate NL slots (paper §3.1: *"what is" or
//! "show me" can be used to instantiate the SelectPhrase*).

use dbpal_sql::AggFunc;
use dbpal_util::Rng;

/// Phrases that open a retrieval question (the `SelectPhrase` slot).
pub const SELECT_PHRASES: &[&str] = &[
    "show me",
    "show",
    "what is",
    "what are",
    "list",
    "display",
    "give me",
    "find",
    "get",
    "tell me",
    "return",
    "i want to see",
    "retrieve",
    "enumerate",
];

/// Phrases that connect the select list to the table (the `FromPhrase`).
pub const FROM_PHRASES: &[&str] = &["of", "of all", "for", "for all", "from", "from all"];

/// Phrases that open the filter condition (the `WherePhrase`).
pub const WHERE_PHRASES: &[&str] = &["with", "whose", "that have", "where", "having"];

/// Verbalizations of equality in filters.
pub const EQ_PHRASES: &[&str] = &["is", "equal to", "of", "being", "equals"];

/// Verbalizations of inequality (`<>`).
pub const NEQ_PHRASES: &[&str] = &["is not", "not equal to", "different from", "other than"];

/// Verbalizations of each aggregate function (the `AggPhrase` slot).
pub fn agg_phrases(func: AggFunc) -> &'static [&'static str] {
    match func {
        AggFunc::Count => &[
            "the number of",
            "how many",
            "the count of",
            "the total number of",
        ],
        AggFunc::Sum => &["the total", "the sum of", "the combined", "the overall"],
        AggFunc::Avg => &["the average", "the mean", "the typical"],
        AggFunc::Min => &["the minimum", "the lowest", "the smallest", "the least"],
        AggFunc::Max => &["the maximum", "the highest", "the largest", "the greatest"],
    }
}

/// Phrases introducing a GROUP BY dimension.
pub const GROUP_PHRASES: &[&str] = &["for each", "per", "grouped by", "by", "for every"];

/// Phrases asking for ordering.
pub const ORDER_ASC_PHRASES: &[&str] = &["sorted by", "ordered by", "in ascending order of"];

/// Phrases asking for descending ordering.
pub const ORDER_DESC_PHRASES: &[&str] = &[
    "sorted descending by",
    "in descending order of",
    "ranked by decreasing",
];

/// Phrases expressing DISTINCT.
pub const DISTINCT_PHRASES: &[&str] = &[
    "the different",
    "the distinct",
    "the unique",
    "all different",
];

/// Phrases expressing existence ("are there ...").
pub const EXISTS_PHRASES: &[&str] = &["are there any", "is there any", "do any exist"];

/// Phrases expressing LIKE/containment on text attributes.
pub const LIKE_PHRASES: &[&str] = &["containing", "that contains", "with text like", "matching"];

/// Phrases expressing BETWEEN.
pub const BETWEEN_PHRASES: &[&str] = &["between", "in the range", "ranging from"];

/// Phrases expressing NULL-ness.
pub const NULL_PHRASES: &[&str] = &["with no", "without a", "missing the", "lacking a"];

/// Pick a random element of a phrase list.
pub fn pick<'a>(rng: &mut Rng, phrases: &[&'a str]) -> &'a str {
    phrases[rng.gen_range(0..phrases.len())]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_select_phrases_present() {
        assert!(SELECT_PHRASES.contains(&"what is"));
        assert!(SELECT_PHRASES.contains(&"show me"));
    }

    #[test]
    fn lexicons_are_nonempty_and_lowercase() {
        let all: Vec<&[&str]> = vec![
            SELECT_PHRASES,
            FROM_PHRASES,
            WHERE_PHRASES,
            EQ_PHRASES,
            NEQ_PHRASES,
            GROUP_PHRASES,
            ORDER_ASC_PHRASES,
            ORDER_DESC_PHRASES,
            DISTINCT_PHRASES,
            EXISTS_PHRASES,
            LIKE_PHRASES,
            BETWEEN_PHRASES,
            NULL_PHRASES,
        ];
        for lex in all {
            assert!(!lex.is_empty());
            for p in lex {
                assert_eq!(*p, p.to_lowercase(), "phrase not lowercase: {p}");
            }
        }
    }

    #[test]
    fn all_agg_funcs_have_phrases() {
        for f in AggFunc::ALL {
            assert!(!agg_phrases(f).is_empty());
        }
    }

    #[test]
    fn pick_is_in_range() {
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..50 {
            let p = pick(&mut rng, SELECT_PHRASES);
            assert!(SELECT_PHRASES.contains(&p));
        }
    }
}
