//! The seed-template catalog.
//!
//! "The main idea is that each seed template covers a typical class of SQL
//! queries (e.g., a SELECT-FROM-WHERE query with a simple predicate).
//! Composing the seed templates is only a minimal, one-time overhead, and
//! all templates are independent of the target database. ... Currently,
//! DBPal contains approximately 100 seed templates." (paper §2.2.1)
//!
//! A seed template pairs a [`QueryClass`] (the SQL side, instantiated
//! structurally by the generator) with one NL pattern string. Slots in the
//! pattern (`{select}`, `{table}`, `{filter}`, ...) are filled from the
//! schema and the slot-fill lexicons. For each SQL class the catalog
//! provides several NL patterns, including "manually curated paraphrased
//! NL templates that follow particular paraphrasing techniques ...
//! covering categories such as syntactical, lexical, and morphological
//! paraphrasing" (§3.1).

use dbpal_sql::AggFunc;
use dbpal_util::{Rng, SliceRandom};

/// The SQL query class a template instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryClass {
    /// `SELECT * FROM t`.
    SelectAll,
    /// `SELECT * FROM t WHERE f`.
    SelectAllWhere,
    /// `SELECT a FROM t`.
    SelectCol,
    /// `SELECT a FROM t WHERE f`.
    SelectColWhere,
    /// `SELECT a, b FROM t WHERE f`.
    SelectColsWhere,
    /// `SELECT a FROM t WHERE f1 AND f2`.
    SelectColWhere2,
    /// `SELECT DISTINCT a FROM t`.
    Distinct,
    /// `SELECT AGG(n) FROM t` (AGG ∈ {SUM, AVG, MIN, MAX}).
    Agg,
    /// `SELECT AGG(n) FROM t WHERE f`.
    AggWhere,
    /// `SELECT COUNT(*) FROM t`.
    CountAll,
    /// `SELECT COUNT(*) FROM t WHERE f`.
    CountWhere,
    /// `SELECT g, AGG(n) FROM t GROUP BY g`.
    GroupBy,
    /// `SELECT g, COUNT(*) FROM t GROUP BY g`.
    GroupByCount,
    /// `SELECT g FROM t GROUP BY g HAVING COUNT(*) > @CNT`.
    GroupByHaving,
    /// `SELECT * FROM t ORDER BY n DESC LIMIT 1` (superlative max).
    TopOne,
    /// `SELECT * FROM t ORDER BY n ASC LIMIT 1` (superlative min).
    BottomOne,
    /// `SELECT a FROM t ORDER BY n [DESC]`.
    OrderBy {
        /// Descending order when true.
        desc: bool,
    },
    /// `SELECT a FROM t WHERE n BETWEEN @LOW AND @HIGH`.
    Between,
    /// `SELECT a FROM t WHERE a IN (@V1, @V2)`.
    InList,
    /// `SELECT a FROM t WHERE s LIKE @PAT`.
    Like,
    /// `SELECT a FROM t WHERE s IS NULL`.
    IsNull,
    /// `SELECT a FROM t WHERE b <> @V`.
    Neq,
    /// `SELECT a FROM t WHERE f1 OR f2`.
    Disjunction,
    /// `SELECT t1.a FROM @JOIN WHERE t2.b = @T2.B` (join via placeholder,
    /// paper §5.1).
    JoinSelect,
    /// `SELECT AGG(t1.n) FROM @JOIN WHERE t2.b = @T2.B`.
    JoinAgg,
    /// `SELECT t2.g, AGG(t1.n) FROM @JOIN GROUP BY t2.g`.
    JoinGroupBy,
    /// `SELECT a FROM t WHERE n = (SELECT MAX(n) FROM t WHERE f)`
    /// (paper §5.2's mountain example).
    NestedScalar {
        /// `MAX` when true, `MIN` otherwise.
        max: bool,
    },
    /// `SELECT a FROM t1 WHERE a IN (SELECT b FROM t2 WHERE f)`.
    NestedIn,
    /// `SELECT a FROM t1 WHERE EXISTS (SELECT * FROM t2 WHERE f)`.
    NestedExists,
    /// `SELECT a FROM t WHERE s NOT LIKE @PAT`.
    ///
    /// Not covered by the seed catalog; exercised by the Spider-like
    /// benchmark to populate Table 4's "Spider-only"/"Unseen" buckets.
    NotLike,
    /// `SELECT COUNT(DISTINCT a) FROM t` — not in the seed catalog.
    CountDistinct,
    /// `SELECT * FROM t ORDER BY n DESC LIMIT k` (k > 1) — not in the
    /// seed catalog.
    TopN {
        /// The LIMIT row count.
        limit: u64,
    },
    /// `SELECT a FROM t WHERE n NOT BETWEEN @LOW AND @HIGH` — not in the
    /// seed catalog.
    NotBetween,
}

impl QueryClass {
    /// Whether the class produces a join query (`@JOIN` placeholder).
    pub fn is_join(self) -> bool {
        matches!(
            self,
            QueryClass::JoinSelect | QueryClass::JoinAgg | QueryClass::JoinGroupBy
        )
    }

    /// Whether the class produces an aggregate query.
    pub fn is_agg(self) -> bool {
        matches!(
            self,
            QueryClass::Agg
                | QueryClass::AggWhere
                | QueryClass::CountAll
                | QueryClass::CountWhere
                | QueryClass::GroupBy
                | QueryClass::GroupByCount
                | QueryClass::GroupByHaving
                | QueryClass::JoinAgg
                | QueryClass::JoinGroupBy
        )
    }

    /// Whether the class produces a nested subquery.
    pub fn is_nested(self) -> bool {
        matches!(
            self,
            QueryClass::NestedScalar { .. } | QueryClass::NestedIn | QueryClass::NestedExists
        )
    }

    /// Whether the class is covered by the seed-template catalog
    /// ([`crate::catalog`]). The remaining classes exist in the SQL space
    /// but have no DBPal seed template, which the pattern-coverage
    /// analysis of the paper's Table 4 relies on.
    pub fn in_seed_catalog(self) -> bool {
        !matches!(
            self,
            QueryClass::NotLike
                | QueryClass::CountDistinct
                | QueryClass::TopN { .. }
                | QueryClass::NotBetween
        )
    }

    /// The aggregate functions this class may instantiate.
    pub fn agg_choices(self) -> &'static [AggFunc] {
        match self {
            QueryClass::Agg
            | QueryClass::AggWhere
            | QueryClass::GroupBy
            | QueryClass::JoinAgg
            | QueryClass::JoinGroupBy => &[AggFunc::Sum, AggFunc::Avg, AggFunc::Min, AggFunc::Max],
            QueryClass::CountAll
            | QueryClass::CountWhere
            | QueryClass::GroupByCount
            | QueryClass::CountDistinct => &[AggFunc::Count],
            _ => &[],
        }
    }
}

/// Paraphrase technique category of a manually curated NL pattern
/// (paper §3.1 / §6.2.1 typology).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatternCategory {
    /// Direct verbalization of the SQL.
    Direct,
    /// Structural rearrangement (clause fronting, cleft sentences).
    Syntactic,
    /// Synonym-level rephrasing baked into the pattern.
    Lexical,
    /// Inflection-heavy phrasing exercising the lemmatizer.
    Morphological,
}

/// A seed template: one SQL class paired with one NL pattern.
#[derive(Debug, Clone)]
pub struct SeedTemplate {
    /// Stable identifier, e.g. `select_col_where.syntactic.1`.
    pub id: String,
    /// The SQL class instantiated by the generator.
    pub class: QueryClass,
    /// NL pattern with `{slot}` markers.
    pub pattern: &'static str,
    /// Paraphrase category of the pattern.
    pub category: PatternCategory,
}

macro_rules! templates {
    ($out:ident; $class:expr, $name:literal => [ $(($cat:ident, $pat:literal)),* $(,)? ]) => {
        {
            let mut i = 0usize;
            $(
                $out.push(SeedTemplate {
                    id: format!(concat!($name, ".{}.{}"), stringify!($cat), i),
                    class: $class,
                    pattern: $pat,
                    category: PatternCategory::$cat,
                });
                i += 1;
            )*
            let _ = i;
        }
    };
}

/// Build the full seed-template catalog (~100 templates).
pub fn catalog() -> Vec<SeedTemplate> {
    use QueryClass::*;
    let mut t: Vec<SeedTemplate> = Vec::with_capacity(128);

    templates!(t; SelectAll, "select_all" => [
        (Direct, "{select} all {table}"),
        (Direct, "{select} the {table}"),
        (Lexical, "{select} every {table}"),
        (Syntactic, "what {table} are there"),
        (Lexical, "{select} all information about the {table}"),
    ]);
    templates!(t; SelectAllWhere, "select_all_where" => [
        (Direct, "{select} all {table} {where} {filter}"),
        (Direct, "{select} the {table} {where} {filter}"),
        (Lexical, "which {table} have {filter}"),
        (Syntactic, "{where} {filter} , {select} all {table}"),
        (Morphological, "which of the {table} are having {filter}"),
    ]);
    templates!(t; SelectCol, "select_col" => [
        (Direct, "{select} the {att} {from} {table}"),
        (Syntactic, "what is the {att} of the {table}"),
        (Lexical, "{select} each {table} {att}"),
        (Morphological, "{select} the {att}s of the {table}"),
    ]);
    templates!(t; SelectColWhere, "select_col_where" => [
        (Direct, "{select} the {att} {from} {table} {where} {filter}"),
        (Direct, "what is the {att} of {table} {where} {filter}"),
        (Syntactic, "for {table} with {filter} , what is their {att}"),
        (Syntactic, "{where} {filter} , what is the {att} of the {table}"),
        (Lexical, "{select} the {att} of every {table} that has {filter}"),
        (Morphological, "{select} the {att} of {table} having had {filter}"),
    ]);
    templates!(t; SelectColsWhere, "select_cols_where" => [
        (Direct, "{select} the {att} and {att2} {from} {table} {where} {filter}"),
        (Syntactic, "for {table} {where} {filter} , {select} both their {att} and {att2}"),
        (Lexical, "{select} {att} together with {att2} of {table} {where} {filter}"),
    ]);
    templates!(t; SelectColWhere2, "select_col_where2" => [
        (Direct, "{select} the {att} {from} {table} {where} {filter} and {filter2}"),
        (Syntactic, "{where} {filter} and {filter2} , {select} the {att} of the {table}"),
        (Lexical, "which {table} have {filter} as well as {filter2} ; show their {att}"),
    ]);
    templates!(t; Distinct, "distinct" => [
        (Direct, "{select} {distinct} {att} {from} {table}"),
        (Lexical, "what different {att} do the {table} have"),
        (Syntactic, "among all {table} , what are the {distinct} {att}"),
        (Morphological, "{select} the {att}s of {table} deduplicated"),
    ]);
    templates!(t; Agg, "agg" => [
        (Direct, "{select} {agg} {att} {from} {table}"),
        (Syntactic, "what is {agg} {att} of the {table}"),
        (Lexical, "compute {agg} {att} over all {table}"),
        (Morphological, "what is the {att} of the {table} averaged"),
    ]);
    templates!(t; AggWhere, "agg_where" => [
        (Direct, "{select} {agg} {att} {from} {table} {where} {filter}"),
        (Syntactic, "for {table} {where} {filter} , what is {agg} {att}"),
        (Lexical, "considering only {table} with {filter} , give {agg} {att}"),
    ]);
    templates!(t; CountAll, "count_all" => [
        (Direct, "how many {table} are there"),
        (Lexical, "count the {table}"),
        (Direct, "what is the number of {table}"),
        (Morphological, "how many {table} exist"),
    ]);
    templates!(t; CountWhere, "count_where" => [
        (Direct, "how many {table} have {filter}"),
        (Lexical, "count the {table} {where} {filter}"),
        (Syntactic, "{where} {filter} , how many {table} are there"),
        (Direct, "what is the number of {table} {where} {filter}"),
        (Morphological, "how many of the {table} are having {filter}"),
    ]);
    templates!(t; GroupBy, "group_by" => [
        (Direct, "{select} {agg} {att} of {table} {grpphrase} {group}"),
        (Syntactic, "{grpphrase} {group} , {select} {agg} {att} of the {table}"),
        (Lexical, "break down {agg} {att} of {table} {grpphrase} {group}"),
        (Morphological, "{select} {agg} {att} of {table} grouped {grpphrase} {group}"),
    ]);
    templates!(t; GroupByCount, "group_by_count" => [
        (Direct, "how many {table} are there {grpphrase} {group}"),
        (Lexical, "count the {table} {grpphrase} {group}"),
        (Syntactic, "{grpphrase} {group} , how many {table} are there"),
    ]);
    templates!(t; GroupByHaving, "group_by_having" => [
        (Direct, "which {group} have more than @CNT {table}"),
        (Lexical, "{select} the {group} with over @CNT {table}"),
        (Syntactic, "for which {group} are there more than @CNT {table}"),
    ]);
    templates!(t; TopOne, "top_one" => [
        (Direct, "{select} the {table} with {supmax} {natt}"),
        (Direct, "which {table} has {supmax} {natt}"),
        (Syntactic, "of all {table} , which one has {supmax} {natt}"),
        (Lexical, "{select} the top {table} by {natt}"),
        (Morphological, "which of the {table} is maximizing the {natt}"),
    ]);
    templates!(t; BottomOne, "bottom_one" => [
        (Direct, "{select} the {table} with {supmin} {natt}"),
        (Direct, "which {table} has {supmin} {natt}"),
        (Lexical, "{select} the bottom {table} by {natt}"),
    ]);
    templates!(t; OrderBy { desc: false }, "order_asc" => [
        (Direct, "{select} the {att} {from} {table} {ordasc} {natt}"),
        (Lexical, "{select} the {att} of all {table} from lowest to highest {natt}"),
    ]);
    templates!(t; OrderBy { desc: true }, "order_desc" => [
        (Direct, "{select} the {att} {from} {table} {orddesc} {natt}"),
        (Lexical, "{select} the {att} of all {table} from highest to lowest {natt}"),
    ]);
    templates!(t; Between, "between" => [
        (Direct, "{select} the {att} {from} {table} with {natt} between @LOW and @HIGH"),
        (Lexical, "which {table} have a {natt} ranging from @LOW to @HIGH ; show their {att}"),
        (Syntactic, "with {natt} between @LOW and @HIGH , {select} the {att} of the {table}"),
        (Morphological, "{select} the {att} of {table} whose {natt} ranged between @LOW and @HIGH"),
    ]);
    templates!(t; InList, "in_list" => [
        (Direct, "{select} the {att} {from} {table} whose {catt} is @V1 or @V2"),
        (Lexical, "{select} the {att} of {table} with {catt} being either @V1 or @V2"),
    ]);
    templates!(t; Like, "like" => [
        (Direct, "{select} the {att} {from} {table} with {tatt} {like} @PAT"),
        (Lexical, "which {table} have a {tatt} {like} @PAT"),
    ]);
    templates!(t; IsNull, "is_null" => [
        (Direct, "{select} the {att} {from} {table} {nullphrase} {tatt}"),
        (Lexical, "which {table} are {nullphrase} {tatt}"),
    ]);
    templates!(t; Neq, "neq" => [
        (Direct, "{select} the {att} {from} {table} whose {catt} is not @V1"),
        (Lexical, "{select} the {att} of {table} with {catt} other than @V1"),
    ]);
    templates!(t; Disjunction, "disjunction" => [
        (Direct, "{select} the {att} {from} {table} {where} {filter} or {filter2}"),
        (Syntactic, "{where} {filter} or {filter2} , {select} the {att} of the {table}"),
    ]);
    templates!(t; JoinSelect, "join_select" => [
        (Direct, "{select} the {attq} of {table} whose {table2} has {filter2q}"),
        (Direct, "{select} the {attq} of {table} of the {table2} with {filter2q}"),
        (Syntactic, "for the {table2} with {filter2q} , {select} the {attq} of their {table}"),
        (Lexical, "which {table} belong to the {table2} with {filter2q} ; show their {attq}"),
        (Morphological, "{select} the {attq}s of {table} belonging to the {table2} having {filter2q}"),
    ]);
    templates!(t; JoinAgg, "join_agg" => [
        (Direct, "what is {agg} {attq} of {table} whose {table2} has {filter2q}"),
        (Syntactic, "for the {table2} with {filter2q} , what is {agg} {attq} of their {table}"),
        (Lexical, "give {agg} {attq} over all {table} of the {table2} with {filter2q}"),
    ]);
    templates!(t; JoinGroupBy, "join_group_by" => [
        (Direct, "{select} {agg} {attq} of {table} {grpphrase} {groupq} of the {table2}"),
        (Syntactic, "{grpphrase} {groupq} of the {table2} , {select} {agg} {attq} of the {table}"),
    ]);
    templates!(t; NestedScalar { max: true }, "nested_max" => [
        (Direct, "{select} the {att} of the {table} with the highest {natt} among those {where} {filter}"),
        (Direct, "what is the {att} of the {table} with maximum {natt} {where} {filter}"),
        (Syntactic, "among {table} {where} {filter} , which one has the highest {natt} ; show its {att}"),
    ]);
    templates!(t; NestedScalar { max: false }, "nested_min" => [
        (Direct, "{select} the {att} of the {table} with the lowest {natt} among those {where} {filter}"),
        (Direct, "what is the {att} of the {table} with minimum {natt} {where} {filter}"),
        (Syntactic, "among {table} {where} {filter} , which one has the lowest {natt} ; show its {att}"),
    ]);
    templates!(t; NestedIn, "nested_in" => [
        (Direct, "{select} the {att} of {table} whose {att} appears in {table2} {where} {filter2q}"),
        (Lexical, "{select} the {att} of {table} that also occurs in {table2} with {filter2q}"),
    ]);
    templates!(t; NestedExists, "nested_exists" => [
        (Direct, "{select} the {att} of all {table} if any {table2} has {filter2q}"),
        (Lexical, "provided some {table2} has {filter2q} , {select} the {att} of every {table}"),
    ]);

    t
}

/// A deterministic random subset of the catalog, selected *prior to
/// instantiation* as in the seed-template experiment (paper §6.3.2,
/// Figure 3): "the random subsets are selected prior to instantiation,
/// which means templates covering certain patterns are excluded."
pub fn catalog_subset(fraction: f64, seed: u64) -> Vec<SeedTemplate> {
    let mut all = catalog();
    let keep = ((all.len() as f64) * fraction.clamp(0.0, 1.0)).round() as usize;
    let mut rng = Rng::seed_from_u64(seed);
    all.shuffle(&mut rng);
    all.truncate(keep);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn catalog_has_about_100_templates() {
        let n = catalog().len();
        assert!(n >= 100, "only {n} seed templates");
    }

    #[test]
    fn template_ids_are_unique() {
        let ids: HashSet<String> = catalog().into_iter().map(|t| t.id).collect();
        assert_eq!(ids.len(), catalog().len());
    }

    #[test]
    fn every_class_has_a_direct_pattern() {
        let cat = catalog();
        let classes: HashSet<_> = cat.iter().map(|t| t.class).collect();
        for class in &classes {
            assert!(
                cat.iter()
                    .any(|t| t.class == *class && t.category == PatternCategory::Direct),
                "{class:?} lacks a Direct pattern"
            );
        }
    }

    #[test]
    fn catalog_covers_nested_and_join_classes() {
        let classes: HashSet<_> = catalog().iter().map(|t| t.class).collect();
        assert!(classes.iter().any(|c| c.is_join()));
        assert!(classes.iter().any(|c| c.is_nested()));
        assert!(classes.iter().any(|c| c.is_agg()));
    }

    #[test]
    fn paraphrase_categories_all_present() {
        let cats: HashSet<_> = catalog().iter().map(|t| t.category).collect();
        assert!(cats.contains(&PatternCategory::Direct));
        assert!(cats.contains(&PatternCategory::Syntactic));
        assert!(cats.contains(&PatternCategory::Lexical));
        assert!(cats.contains(&PatternCategory::Morphological));
    }

    #[test]
    fn subset_is_deterministic_and_sized() {
        let a = catalog_subset(0.1, 42);
        let b = catalog_subset(0.1, 42);
        assert_eq!(
            a.iter().map(|t| &t.id).collect::<Vec<_>>(),
            b.iter().map(|t| &t.id).collect::<Vec<_>>()
        );
        let full = catalog().len();
        assert_eq!(a.len(), ((full as f64) * 0.1).round() as usize);
    }

    #[test]
    fn subset_full_fraction_is_whole_catalog() {
        assert_eq!(catalog_subset(1.0, 7).len(), catalog().len());
        assert!(catalog_subset(0.0, 7).is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let a: HashSet<String> = catalog_subset(0.2, 1).into_iter().map(|t| t.id).collect();
        let b: HashSet<String> = catalog_subset(0.2, 2).into_iter().map(|t| t.id).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn patterns_only_use_known_slots() {
        // Every {slot} marker must be one the generator knows how to fill.
        const KNOWN: &[&str] = &[
            "select",
            "from",
            "where",
            "table",
            "table2",
            "att",
            "att2",
            "attq",
            "att2q",
            "natt",
            "tatt",
            "catt",
            "group",
            "groupq",
            "agg",
            "grpphrase",
            "distinct",
            "filter",
            "filter2",
            "filter2q",
            "supmax",
            "supmin",
            "ordasc",
            "orddesc",
            "like",
            "nullphrase",
        ];
        for t in catalog() {
            let mut rest = t.pattern;
            while let Some(start) = rest.find('{') {
                let end = rest[start..]
                    .find('}')
                    .map(|e| start + e)
                    .unwrap_or_else(|| panic!("unclosed slot in {}: {}", t.id, t.pattern));
                let slot = &rest[start + 1..end];
                assert!(KNOWN.contains(&slot), "unknown slot {{{slot}}} in {}", t.id);
                rest = &rest[end + 1..];
            }
        }
    }
}
