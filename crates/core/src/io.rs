//! Corpus import/export.
//!
//! Two interchange formats:
//!
//! * **JSON** — full-fidelity export of a generated corpus (provenance,
//!   lemmas, template ids) so external model stacks can train on DBPal's
//!   output; this is the practical meaning of "fully pluggable" beyond
//!   this workspace's own models.
//! * **JSONL** (one compact JSON object per line) — the streaming
//!   export format written by [`crate::stream::JsonlSink`]: each line is
//!   a full-fidelity pair record, so corpora larger than memory can be
//!   written, concatenated, and re-imported incrementally.
//! * **TSV** (`nl<TAB>sql` per line) — the minimal format for *manually
//!   curated* pairs, which "can still be used to complement our proposed
//!   data generation pipeline" (paper §1). Imported pairs get
//!   [`Provenance::Manual`] and are lemmatized on load.

use crate::{Provenance, TrainingCorpus, TrainingPair};
use dbpal_nlp::Lemmatizer;
use dbpal_sql::parse_query;
use dbpal_util::Json;

/// Serialized form of one pair.
#[derive(Debug, Clone)]
struct PairRecord {
    nl: String,
    nl_lemmas: Vec<String>,
    sql: String,
    template_id: String,
    provenance: String,
}

impl PairRecord {
    fn from_pair(p: &TrainingPair) -> PairRecord {
        PairRecord {
            nl: p.nl.clone(),
            nl_lemmas: p.nl_lemmas.clone(),
            sql: p.sql_text(),
            template_id: p.template_id.clone(),
            provenance: provenance_label(p.provenance).to_string(),
        }
    }

    /// Rebuild the in-memory pair; `record` is the 1-based position for
    /// errors.
    fn into_pair(self, record: usize) -> Result<TrainingPair, CorpusIoError> {
        let sql = parse_query(&self.sql).map_err(|e| CorpusIoError::BadSql {
            line: record,
            detail: format!("{e} in `{}`", self.sql),
        })?;
        let mut pair = TrainingPair::new(
            self.nl,
            sql,
            self.template_id,
            provenance_from_label(&self.provenance),
        );
        pair.nl_lemmas = self.nl_lemmas;
        Ok(pair)
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("nl".into(), Json::str(self.nl.clone())),
            (
                "nl_lemmas".into(),
                Json::Arr(self.nl_lemmas.iter().map(Json::str).collect()),
            ),
            ("sql".into(), Json::str(self.sql.clone())),
            ("template_id".into(), Json::str(self.template_id.clone())),
            ("provenance".into(), Json::str(self.provenance.clone())),
        ])
    }

    /// Decode one record; `record` is the 1-based position for errors.
    fn from_json(v: &Json, record: usize) -> Result<PairRecord, CorpusIoError> {
        let field_str = |key: &str| -> Result<String, CorpusIoError> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| {
                    CorpusIoError::Json(format!("record {record}: missing string field `{key}`"))
                })
        };
        let lemmas = v
            .get("nl_lemmas")
            .and_then(Json::as_arr)
            .ok_or_else(|| {
                CorpusIoError::Json(format!("record {record}: missing array field `nl_lemmas`"))
            })?
            .iter()
            .map(|l| {
                l.as_str().map(str::to_string).ok_or_else(|| {
                    CorpusIoError::Json(format!("record {record}: non-string lemma"))
                })
            })
            .collect::<Result<Vec<String>, CorpusIoError>>()?;
        Ok(PairRecord {
            nl: field_str("nl")?,
            nl_lemmas: lemmas,
            sql: field_str("sql")?,
            template_id: field_str("template_id")?,
            provenance: field_str("provenance")?,
        })
    }
}

/// Errors raised while importing corpora.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CorpusIoError {
    /// A line/record had the wrong shape.
    Malformed {
        /// 1-based line/record number.
        line: usize,
        /// Human-readable detail.
        detail: String,
    },
    /// A SQL side failed to parse.
    BadSql {
        /// 1-based line/record number.
        line: usize,
        /// Parser error text.
        detail: String,
    },
    /// JSON (de)serialization failed.
    Json(String),
}

impl std::fmt::Display for CorpusIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorpusIoError::Malformed { line, detail } => {
                write!(f, "malformed record at line {line}: {detail}")
            }
            CorpusIoError::BadSql { line, detail } => {
                write!(f, "unparseable SQL at line {line}: {detail}")
            }
            CorpusIoError::Json(e) => write!(f, "JSON error: {e}"),
        }
    }
}

impl std::error::Error for CorpusIoError {}

fn provenance_label(p: Provenance) -> &'static str {
    p.label()
}

fn provenance_from_label(label: &str) -> Provenance {
    match label {
        "paraphrased" => Provenance::Paraphrased,
        "dropped" => Provenance::Dropped,
        "comparative" => Provenance::Comparative,
        "manual" => Provenance::Manual,
        _ => Provenance::Seed,
    }
}

/// Export a corpus as pretty JSON. Output is deterministic: the same
/// corpus always serializes to byte-identical text.
pub fn corpus_to_json(corpus: &TrainingCorpus) -> Result<String, CorpusIoError> {
    let doc = Json::Arr(
        corpus
            .pairs()
            .iter()
            .map(|p| PairRecord::from_pair(p).to_json())
            .collect(),
    );
    Ok(doc.pretty())
}

/// Import a corpus from JSON produced by [`corpus_to_json`].
pub fn corpus_from_json(json: &str) -> Result<TrainingCorpus, CorpusIoError> {
    let doc = Json::parse(json).map_err(|e| CorpusIoError::Json(e.to_string()))?;
    let items = doc
        .as_arr()
        .ok_or_else(|| CorpusIoError::Json("top-level value must be an array".to_string()))?;
    let records = items
        .iter()
        .enumerate()
        .map(|(i, v)| PairRecord::from_json(v, i + 1))
        .collect::<Result<Vec<PairRecord>, CorpusIoError>>()?;
    let mut pairs = Vec::with_capacity(records.len());
    for (i, r) in records.into_iter().enumerate() {
        pairs.push(r.into_pair(i + 1)?);
    }
    Ok(TrainingCorpus::from_pairs(pairs))
}

/// Encode one pair as a single compact JSON object — one JSONL line,
/// without the trailing newline. Byte-deterministic: the same pair
/// always encodes to the same text, which is what lets the streaming
/// sinks digest their output and pin it in tests.
pub fn pair_to_jsonl(pair: &TrainingPair) -> String {
    PairRecord::from_pair(pair).to_json().compact()
}

/// Import a corpus from JSONL text (one [`pair_to_jsonl`] record per
/// line; blank lines skipped). The inverse of what
/// [`crate::stream::JsonlSink`] writes.
pub fn corpus_from_jsonl(text: &str) -> Result<TrainingCorpus, CorpusIoError> {
    let mut pairs = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let doc =
            Json::parse(line).map_err(|e| CorpusIoError::Json(format!("record {}: {e}", i + 1)))?;
        pairs.push(PairRecord::from_json(&doc, i + 1)?.into_pair(i + 1)?);
    }
    Ok(TrainingCorpus::from_pairs(pairs))
}

/// Import manually curated pairs from TSV text (`nl<TAB>sql` per line;
/// blank lines and `#` comments skipped). Pairs are lemmatized on load
/// and tagged [`Provenance::Manual`].
pub fn manual_corpus_from_tsv(tsv: &str) -> Result<TrainingCorpus, CorpusIoError> {
    let lemmatizer = Lemmatizer::new();
    let mut pairs = Vec::new();
    for (i, raw) in tsv.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((nl, sql_text)) = line.split_once('\t') else {
            return Err(CorpusIoError::Malformed {
                line: i + 1,
                detail: "expected `nl<TAB>sql`".to_string(),
            });
        };
        let sql = parse_query(sql_text.trim()).map_err(|e| CorpusIoError::BadSql {
            line: i + 1,
            detail: e.to_string(),
        })?;
        let mut pair = TrainingPair::new(nl.trim(), sql, "manual", Provenance::Manual);
        pair.nl_lemmas = lemmatizer.lemmatize_sentence(&pair.nl);
        pairs.push(pair);
    }
    Ok(TrainingCorpus::from_pairs(pairs))
}

/// Export a corpus as TSV (`nl<TAB>sql`), dropping lemmas/provenance.
pub fn corpus_to_tsv(corpus: &TrainingCorpus) -> String {
    let mut out = String::new();
    for p in corpus.pairs() {
        out.push_str(&p.nl.replace('\t', " "));
        out.push('\t');
        out.push_str(&p.sql_text());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TrainingCorpus {
        let mut p = TrainingPair::new(
            "show the name of patients with age @AGE",
            parse_query("SELECT name FROM patients WHERE age = @AGE").unwrap(),
            "select_col_where.Direct.0",
            Provenance::Seed,
        );
        p.nl_lemmas = vec!["show".into(), "the".into(), "name".into()];
        let q = TrainingPair::new(
            "display every patient",
            parse_query("SELECT * FROM patients").unwrap(),
            "t2",
            Provenance::Paraphrased,
        );
        TrainingCorpus::from_pairs(vec![p, q])
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let corpus = sample();
        let json = corpus_to_json(&corpus).unwrap();
        let back = corpus_from_json(&json).unwrap();
        assert_eq!(back.len(), corpus.len());
        for (a, b) in corpus.pairs().iter().zip(back.pairs()) {
            assert_eq!(a.nl, b.nl);
            assert_eq!(a.nl_lemmas, b.nl_lemmas);
            assert_eq!(a.sql, b.sql);
            assert_eq!(a.template_id, b.template_id);
            assert_eq!(a.provenance, b.provenance);
        }
    }

    #[test]
    fn bad_json_rejected() {
        // Lexically broken, structurally wrong, and schema-violating
        // inputs all surface as CorpusIoError::Json.
        for bad in [
            "not json",
            "",
            "[{",
            "{\"nl\":\"x\"}",                  // object, not array
            "[42]",                            // record is not an object
            "[{\"nl\":\"x\"}]",                // missing fields
            "[{\"nl\":1,\"nl_lemmas\":[],\"sql\":\"SELECT * FROM t\",\"template_id\":\"t\",\"provenance\":\"seed\"}]",
            "[{\"nl\":\"x\",\"nl_lemmas\":[7],\"sql\":\"SELECT * FROM t\",\"template_id\":\"t\",\"provenance\":\"seed\"}]",
        ] {
            assert!(
                matches!(corpus_from_json(bad), Err(CorpusIoError::Json(_))),
                "accepted `{bad}`"
            );
        }
    }

    #[test]
    fn json_with_bad_sql_rejected() {
        let json =
            r#"[{"nl":"x","nl_lemmas":[],"sql":"NOT SQL","template_id":"t","provenance":"seed"}]"#;
        assert!(matches!(
            corpus_from_json(json).unwrap_err(),
            CorpusIoError::BadSql { line: 1, .. }
        ));
    }

    #[test]
    fn tsv_import_lemmatizes_and_tags_manual() {
        let tsv = "# a comment\n\
                   How many patients are there?\tSELECT COUNT(*) FROM patients\n\
                   \n\
                   Show the oldest patients\tSELECT * FROM patients ORDER BY age DESC LIMIT 1\n";
        let corpus = manual_corpus_from_tsv(tsv).unwrap();
        assert_eq!(corpus.len(), 2);
        for p in corpus.pairs() {
            assert_eq!(p.provenance, Provenance::Manual);
            assert!(!p.nl_lemmas.is_empty());
        }
    }

    #[test]
    fn tsv_missing_tab_rejected() {
        let err = manual_corpus_from_tsv("just one field").unwrap_err();
        assert!(matches!(err, CorpusIoError::Malformed { line: 1, .. }));
    }

    #[test]
    fn tsv_bad_sql_rejected() {
        let err = manual_corpus_from_tsv("q\tDELETE FROM t").unwrap_err();
        assert!(matches!(err, CorpusIoError::BadSql { line: 1, .. }));
    }

    #[test]
    fn jsonl_round_trip_preserves_everything() {
        let corpus = sample();
        let text: String = corpus
            .pairs()
            .iter()
            .map(|p| pair_to_jsonl(p) + "\n")
            .collect();
        assert_eq!(text.lines().count(), corpus.len(), "one line per pair");
        assert!(!text.contains("\n\n"), "compact lines only");
        let back = corpus_from_jsonl(&text).unwrap();
        assert_eq!(back.len(), corpus.len());
        for (a, b) in corpus.pairs().iter().zip(back.pairs()) {
            assert_eq!(a.nl, b.nl);
            assert_eq!(a.nl_lemmas, b.nl_lemmas);
            assert_eq!(a.sql, b.sql);
            assert_eq!(a.template_id, b.template_id);
            assert_eq!(a.provenance, b.provenance);
        }
    }

    #[test]
    fn jsonl_blank_lines_skipped_bad_lines_rejected() {
        let good = pair_to_jsonl(&sample().pairs()[0].clone());
        let text = format!("\n{good}\n\n");
        assert_eq!(corpus_from_jsonl(&text).unwrap().len(), 1);
        assert!(matches!(
            corpus_from_jsonl("{not json"),
            Err(CorpusIoError::Json(_))
        ));
        let bad_sql =
            r#"{"nl":"x","nl_lemmas":[],"sql":"NOT SQL","template_id":"t","provenance":"seed"}"#;
        assert!(matches!(
            corpus_from_jsonl(bad_sql),
            Err(CorpusIoError::BadSql { line: 1, .. })
        ));
    }

    #[test]
    fn tsv_export_round_trips_through_import() {
        let corpus = sample();
        let tsv = corpus_to_tsv(&corpus);
        let back = manual_corpus_from_tsv(&tsv).unwrap();
        assert_eq!(back.len(), corpus.len());
        for (a, b) in corpus.pairs().iter().zip(back.pairs()) {
            assert_eq!(a.nl, b.nl);
            assert_eq!(a.sql, b.sql);
        }
    }
}
