//! The end-to-end training-data pipeline: generate → augment →
//! lemmatize → analyze.
//!
//! This is the flow of paper Figure 2 (left side): the Generator
//! instantiates seed templates against the schema, the Augmentation step
//! adds linguistic variations, and the Lemmatizer normalizes every NL
//! side. A final static-analysis stage (`dbpal-analyze`) then proves
//! every surviving pair name-resolves, type-checks, and joins validly
//! against the schema; the [`dbpal_analyze::AnalyzerPolicy`] knob decides
//! whether findings are ignored, counted, or gate the pair out of the
//! corpus. The output corpus can then be fed to any pluggable
//! [`crate::TranslationModel`].
//!
//! Every stage fans out across `config.threads` workers (see
//! DESIGN.md "Parallel pipeline"): each work unit draws from its own
//! [`dbpal_util::stream_seed`]-derived RNG stream and shards merge in
//! input order, so the corpus is byte-identical for a given seed at any
//! thread count. [`TrainingPipeline::generate_with_report`] additionally
//! returns a [`PipelineReport`] with per-stage wall time and pair
//! accounting.

use crate::templates::{catalog, SeedTemplate};
use crate::{
    Augmenter, GenerationConfig, Generator, GeneratorStats, Provenance, TrainingCorpus,
    TrainingPair,
};
use dbpal_analyze::{Analyzer, AnalyzerPolicy, Diagnostic};
use dbpal_nlp::Lemmatizer;
use dbpal_schema::Schema;
use dbpal_util::{stream_seed, MetricsRegistry, ParStrategy};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Wall-clock time spent in each pipeline stage.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTimings {
    /// Template instantiation (§3.1).
    pub generate: Duration,
    /// Augmentation (§3.2).
    pub augment: Duration,
    /// Lemmatization (§2.2.3).
    pub lemmatize: Duration,
    /// Duplicate removal.
    pub dedup: Duration,
    /// Static semantic analysis of every pair.
    pub analyze: Duration,
    /// The whole pipeline run.
    pub total: Duration,
}

impl StageTimings {
    /// Add another run's timings into this one — how the streaming
    /// layer rolls per-round timings up into chunk and run totals
    /// without taking any wall clocks of its own.
    pub fn accumulate(&mut self, other: &StageTimings) {
        self.generate += other.generate;
        self.augment += other.augment;
        self.lemmatize += other.lemmatize;
        self.dedup += other.dedup;
        self.analyze += other.analyze;
        self.total += other.total;
    }
}

/// Accounting for the static-analysis stage: how many pairs were
/// analyzed, flagged, and (under [`AnalyzerPolicy::Reject`]) dropped,
/// with per-code diagnostic counts. Rejections are never silent — they
/// are broken down by provenance here, mirroring the generator's
/// retry/exhaustion counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AnalyzerReport {
    /// The policy the stage ran under.
    pub policy: AnalyzerPolicy,
    /// Pairs the analyzer inspected (0 when the policy is `Off`).
    pub analyzed: usize,
    /// Pairs that carried at least one diagnostic of any severity.
    pub flagged: usize,
    /// Pairs dropped for error-severity diagnostics (`Reject` only).
    pub rejected: usize,
    /// Diagnostic occurrences per stable code id (e.g. `"E0101"`),
    /// ordered by id.
    pub codes: BTreeMap<&'static str, usize>,
    /// Rejected pairs per provenance (`Reject` only).
    pub rejected_provenance: BTreeMap<Provenance, usize>,
}

impl AnalyzerReport {
    /// Total diagnostic occurrences across all codes.
    pub fn total_findings(&self) -> usize {
        self.codes.values().sum()
    }
}

/// Analyze a batch of pairs against a schema, applying `policy`.
///
/// Returns the surviving pairs (all of them unless the policy is
/// [`AnalyzerPolicy::Reject`]) and the stage's [`AnalyzerReport`].
/// Analysis fans out across `threads` workers in fixed-size chunks and
/// the verdicts merge back in input order, so the surviving-pair sequence
/// and every report counter are identical at any thread count.
pub fn analyze_pairs(
    schema: &Schema,
    pairs: Vec<TrainingPair>,
    threads: usize,
    policy: AnalyzerPolicy,
) -> (Vec<TrainingPair>, AnalyzerReport) {
    analyze_pairs_with(schema, pairs, threads, policy, &ParStrategy::default())
}

/// [`analyze_pairs`] with an explicit execution strategy — the pipeline
/// passes its configured [`ParStrategy`] so the stage shares the
/// persistent pool (or pinned/scoped choice) with the rest of the run.
pub fn analyze_pairs_with(
    schema: &Schema,
    pairs: Vec<TrainingPair>,
    threads: usize,
    policy: AnalyzerPolicy,
    par: &ParStrategy,
) -> (Vec<TrainingPair>, AnalyzerReport) {
    let (scored, report) = analyze_pairs_scored_with(schema, pairs, threads, policy, par);
    (scored.into_iter().map(|(p, _)| p).collect(), report)
}

/// The weight of one error-severity diagnostic in a pair's
/// [`analyze_pairs_scored_with`] cleanliness score; warnings count 1.
pub const SCORE_ERROR_WEIGHT: u32 = 1000;

/// As [`analyze_pairs_with`], additionally tagging every surviving pair
/// with its *cleanliness score*: `SCORE_ERROR_WEIGHT` per error-severity
/// diagnostic plus one per warning, so `0` means analyzer-clean and
/// lower is cleaner. The streaming dedup layer uses the score to pick a
/// winner when two pairs share an NL side but disagree on the SQL.
pub fn analyze_pairs_scored_with(
    schema: &Schema,
    pairs: Vec<TrainingPair>,
    threads: usize,
    policy: AnalyzerPolicy,
    par: &ParStrategy,
) -> (Vec<(TrainingPair, u32)>, AnalyzerReport) {
    if policy == AnalyzerPolicy::Off {
        return (
            pairs.into_iter().map(|p| (p, 0)).collect(),
            AnalyzerReport {
                policy,
                ..AnalyzerReport::default()
            },
        );
    }
    let analyzer = Analyzer::new(schema);
    const CHUNK: usize = 64;
    let verdicts: Vec<Vec<Vec<Diagnostic>>> = {
        let chunks: Vec<&[TrainingPair]> = pairs.chunks(CHUNK).collect();
        par.map_indexed(&chunks, threads, |_, chunk| {
            chunk.iter().map(|p| analyzer.analyze(&p.sql)).collect()
        })
    };
    let mut report = AnalyzerReport {
        policy,
        analyzed: pairs.len(),
        ..AnalyzerReport::default()
    };
    let mut kept = Vec::with_capacity(pairs.len());
    for (pair, diags) in pairs.into_iter().zip(verdicts.into_iter().flatten()) {
        if !diags.is_empty() {
            report.flagged += 1;
        }
        let mut score = 0u32;
        for d in &diags {
            *report.codes.entry(d.code.id()).or_insert(0) += 1;
            score += match d.severity {
                dbpal_analyze::Severity::Error => SCORE_ERROR_WEIGHT,
                dbpal_analyze::Severity::Warning => 1,
            };
        }
        if policy == AnalyzerPolicy::Reject && dbpal_analyze::has_errors(&diags) {
            report.rejected += 1;
            *report
                .rejected_provenance
                .entry(pair.provenance)
                .or_insert(0) += 1;
        } else {
            kept.push((pair, score));
        }
    }
    (kept, report)
}

/// Accounting for one pipeline run: how many pairs each stage produced,
/// how many duplicates were dropped, and where the generator's sampling
/// loop spent its retries. Built by
/// [`TrainingPipeline::generate_with_report`].
///
/// The counters obey invariants checked by
/// [`PipelineReport::check_consistency`]:
/// `seed_pairs + augmented_pairs == pre_dedup_pairs`,
/// `pre_dedup_pairs - dedup_dropped - analyzer.rejected == final_pairs`,
/// and the per-provenance counts sum to `final_pairs`.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Worker threads the run used (the resolved value, never 0).
    pub threads: usize,
    /// Pairs out of the instantiation stage.
    pub seed_pairs: usize,
    /// Pairs added by the augmentation stage.
    pub augmented_pairs: usize,
    /// Corpus size entering dedup (seed + augmented).
    pub pre_dedup_pairs: usize,
    /// Exact duplicates removed.
    pub dedup_dropped: usize,
    /// Pairs in the returned corpus.
    pub final_pairs: usize,
    /// Final pair count per provenance.
    pub provenance: BTreeMap<Provenance, usize>,
    /// Final pair count per template id (as tagged on the pairs, so
    /// grouped instantiations keep their `+group` suffix).
    pub template_counts: BTreeMap<String, usize>,
    /// Instantiation counters (retries, exhausted templates, shortfall).
    pub generator: GeneratorStats,
    /// Static-analysis counters (per-code findings, rejected pairs).
    pub analyzer: AnalyzerReport,
    /// Per-stage wall time.
    pub timings: StageTimings,
}

impl PipelineReport {
    /// Verify the internal accounting invariants; returns a description
    /// of the first violation.
    pub fn check_consistency(&self) -> Result<(), String> {
        if self.seed_pairs + self.augmented_pairs != self.pre_dedup_pairs {
            return Err(format!(
                "stage outputs do not sum: seed {} + augmented {} != pre-dedup {}",
                self.seed_pairs, self.augmented_pairs, self.pre_dedup_pairs
            ));
        }
        if self.pre_dedup_pairs < self.final_pairs {
            return Err(format!(
                "dedup grew the corpus: {} -> {}",
                self.pre_dedup_pairs, self.final_pairs
            ));
        }
        if self.pre_dedup_pairs - self.final_pairs != self.dedup_dropped + self.analyzer.rejected {
            return Err(format!(
                "drops mismatch: pre {} - final {} != dedup {} + rejected {}",
                self.pre_dedup_pairs, self.final_pairs, self.dedup_dropped, self.analyzer.rejected
            ));
        }
        let a = &self.analyzer;
        match a.policy {
            AnalyzerPolicy::Off => {
                if a.analyzed != 0 || a.flagged != 0 || a.rejected != 0 {
                    return Err("analyzer counted pairs under Off policy".into());
                }
            }
            AnalyzerPolicy::Warn | AnalyzerPolicy::Reject => {
                if a.analyzed != self.pre_dedup_pairs - self.dedup_dropped {
                    return Err(format!(
                        "analyzer saw {} pairs, dedup emitted {}",
                        a.analyzed,
                        self.pre_dedup_pairs - self.dedup_dropped
                    ));
                }
                if a.policy == AnalyzerPolicy::Warn && a.rejected != 0 {
                    return Err("Warn policy rejected pairs".into());
                }
            }
        }
        if a.rejected > a.flagged || a.flagged > a.analyzed {
            return Err(format!(
                "analyzer counters out of order: rejected {} / flagged {} / analyzed {}",
                a.rejected, a.flagged, a.analyzed
            ));
        }
        if a.total_findings() < a.flagged {
            return Err(format!(
                "fewer findings ({}) than flagged pairs ({})",
                a.total_findings(),
                a.flagged
            ));
        }
        if a.rejected_provenance.values().sum::<usize>() != a.rejected {
            return Err(format!(
                "rejected-provenance counts sum to {}, rejected is {}",
                a.rejected_provenance.values().sum::<usize>(),
                a.rejected
            ));
        }
        if self.provenance.values().sum::<usize>() != self.final_pairs {
            return Err(format!(
                "provenance counts sum to {}, corpus has {}",
                self.provenance.values().sum::<usize>(),
                self.final_pairs
            ));
        }
        if self.template_counts.values().sum::<usize>() != self.final_pairs {
            return Err(format!(
                "template counts sum to {}, corpus has {}",
                self.template_counts.values().sum::<usize>(),
                self.final_pairs
            ));
        }
        if self.generator.produced != self.seed_pairs {
            return Err(format!(
                "generator produced {} but seed stage reports {}",
                self.generator.produced, self.seed_pairs
            ));
        }
        Ok(())
    }

    /// Record this report into a [`MetricsRegistry`], the export format
    /// shared with the serving layer and the fuzz driver: pair
    /// accounting as `pipeline.*` counters, stage wall times as one
    /// observation each in `pipeline.stage.*` histograms. Counter
    /// values and histogram observation counts are deterministic per
    /// seed; only the recorded durations vary.
    pub fn record_metrics(&self, reg: &MetricsRegistry) {
        reg.counter("pipeline.threads").add(self.threads as u64);
        reg.counter("pipeline.seed_pairs")
            .add(self.seed_pairs as u64);
        reg.counter("pipeline.augmented_pairs")
            .add(self.augmented_pairs as u64);
        reg.counter("pipeline.dedup_dropped")
            .add(self.dedup_dropped as u64);
        reg.counter("pipeline.final_pairs")
            .add(self.final_pairs as u64);
        reg.counter("pipeline.generator.retries")
            .add(self.generator.retries());
        reg.counter("pipeline.generator.shortfall")
            .add(self.generator.shortfall as u64);
        reg.counter("pipeline.analyzer.analyzed")
            .add(self.analyzer.analyzed as u64);
        reg.counter("pipeline.analyzer.flagged")
            .add(self.analyzer.flagged as u64);
        reg.counter("pipeline.analyzer.rejected")
            .add(self.analyzer.rejected as u64);
        let t = &self.timings;
        for (stage, d) in [
            ("pipeline.stage.generate", t.generate),
            ("pipeline.stage.augment", t.augment),
            ("pipeline.stage.lemmatize", t.lemmatize),
            ("pipeline.stage.dedup", t.dedup),
            ("pipeline.stage.analyze", t.analyze),
            ("pipeline.stage.total", t.total),
        ] {
            reg.histogram(stage).record(d);
        }
    }

    /// A multi-line human-readable rendering (printed by the bench
    /// binaries).
    pub fn render(&self) -> String {
        let ms = |d: Duration| format!("{:8.1}ms", d.as_secs_f64() * 1e3);
        let mut out = format!("pipeline report (threads = {})\n", self.threads);
        out += &format!(
            "  generate  {}  {} seed pairs (budgeted {}, retries {}, exhausted {}, shortfall {})\n",
            ms(self.timings.generate),
            self.seed_pairs,
            self.generator.budgeted,
            self.generator.retries(),
            self.generator.exhausted_templates,
            self.generator.shortfall,
        );
        out += &format!(
            "  augment   {}  +{} pairs\n",
            ms(self.timings.augment),
            self.augmented_pairs
        );
        out += &format!("  lemmatize {}\n", ms(self.timings.lemmatize));
        out += &format!(
            "  dedup     {}  -{} duplicates\n",
            ms(self.timings.dedup),
            self.dedup_dropped
        );
        if self.analyzer.policy == AnalyzerPolicy::Off {
            out += "  analyze   (off)\n";
        } else {
            let codes = if self.analyzer.codes.is_empty() {
                "clean".to_string()
            } else {
                self.analyzer
                    .codes
                    .iter()
                    .map(|(code, n)| format!("{code} x{n}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            out += &format!(
                "  analyze   {}  policy {}, {} flagged, -{} rejected ({codes})\n",
                ms(self.timings.analyze),
                self.analyzer.policy.label(),
                self.analyzer.flagged,
                self.analyzer.rejected,
            );
        }
        let provenance = self
            .provenance
            .iter()
            .map(|(p, n)| format!("{} {n}", p.label()))
            .collect::<Vec<_>>()
            .join(", ");
        out += &format!(
            "  total     {}  {} pairs ({provenance})\n",
            ms(self.timings.total),
            self.final_pairs
        );
        out
    }
}

/// The DBPal training pipeline.
#[derive(Debug, Clone)]
pub struct TrainingPipeline {
    config: GenerationConfig,
}

impl TrainingPipeline {
    /// Create a pipeline with the given configuration.
    pub fn new(config: GenerationConfig) -> Self {
        TrainingPipeline { config }
    }

    /// Create a pipeline with the paper's default configuration.
    pub fn with_defaults() -> Self {
        Self::new(GenerationConfig::default())
    }

    /// The active configuration.
    pub fn config(&self) -> &GenerationConfig {
        &self.config
    }

    /// Run the full pipeline on a schema with the complete seed-template
    /// catalog.
    pub fn generate(&self, schema: &Schema) -> TrainingCorpus {
        self.generate_with_report(schema).0
    }

    /// As [`TrainingPipeline::generate`], also returning the per-stage
    /// [`PipelineReport`].
    pub fn generate_with_report(&self, schema: &Schema) -> (TrainingCorpus, PipelineReport) {
        self.generate_with_templates_and_report(schema, &catalog())
    }

    /// Run the full pipeline with an explicit template set (used by the
    /// seed-template-fraction experiment of §6.3.2).
    pub fn generate_with_templates(
        &self,
        schema: &Schema,
        templates: &[SeedTemplate],
    ) -> TrainingCorpus {
        self.generate_with_templates_and_report(schema, templates).0
    }

    /// As [`TrainingPipeline::generate_with_templates`], also returning
    /// the per-stage [`PipelineReport`].
    ///
    /// This is now a thin wrapper over the streaming producer: one
    /// generation round into an in-memory sink (see
    /// [`crate::stream`]), which is how the one-shot API stays
    /// byte-identical to the corpus a [`crate::stream::JsonlSink`]
    /// would write for the same seed.
    pub fn generate_with_templates_and_report(
        &self,
        schema: &Schema,
        templates: &[SeedTemplate],
    ) -> (TrainingCorpus, PipelineReport) {
        let mut sink = crate::stream::MemorySink::new();
        let report = self
            .stream_with_templates(
                &[schema],
                templates,
                &crate::stream::StreamOptions::one_shot(),
                &mut sink,
            )
            .expect("one-shot in-memory streaming cannot fail");
        let round = report
            .into_rounds()
            .pop()
            .expect("a one-shot run has exactly one round");
        (sink.into_corpus(), round)
    }

    /// Run the five pipeline stages once over one schema, returning the
    /// surviving pairs tagged with their analyzer cleanliness scores
    /// (see [`analyze_pairs_scored_with`]) and the round's report. This
    /// is the unit of work the streaming driver repeats per round.
    pub(crate) fn run_stages(
        &self,
        schema: &Schema,
        templates: &[SeedTemplate],
    ) -> (Vec<(TrainingPair, u32)>, PipelineReport) {
        let threads = self.config.effective_threads();
        let run_start = Instant::now();

        // Step 1: instantiation (§3.1).
        let stage = Instant::now();
        let generator = Generator::new(schema, &self.config);
        let (mut corpus, generator_stats) = generator.generate_with_stats(templates);
        let generate_time = stage.elapsed();
        let seed_pairs = corpus.len();

        // Step 2: augmentation (§3.2).
        let stage = Instant::now();
        let augmenter = Augmenter::new(schema, &self.config);
        let additions = augmenter.augment(&corpus);
        let augmented_pairs = additions.len();
        for pair in additions {
            corpus.push(pair);
        }
        let augment_time = stage.elapsed();

        // Step 3: lemmatization (§2.2.3). The lemmatizer is pure lookup
        // state, so chunks of pairs lemmatize independently and the
        // per-chunk results zip back in order.
        let stage = Instant::now();
        let lemmatizer = Lemmatizer::new();
        let mut pairs: Vec<TrainingPair> = corpus.into_iter().collect();
        const CHUNK: usize = 64;
        let lemmas: Vec<Vec<Vec<String>>> = {
            let chunks: Vec<&[TrainingPair]> = pairs.chunks(CHUNK).collect();
            self.config.par.map_indexed(&chunks, threads, |_, chunk| {
                chunk
                    .iter()
                    .map(|p| lemmatizer.lemmatize_sentence(&p.nl))
                    .collect()
            })
        };
        for (chunk_lemmas, chunk_pairs) in lemmas.into_iter().zip(pairs.chunks_mut(CHUNK)) {
            for (nl_lemmas, pair) in chunk_lemmas.into_iter().zip(chunk_pairs.iter_mut()) {
                pair.nl_lemmas = nl_lemmas;
            }
        }
        let mut corpus = TrainingCorpus::from_pairs(pairs);
        let lemmatize_time = stage.elapsed();

        // Step 4: duplicate removal.
        let stage = Instant::now();
        let pre_dedup_pairs = corpus.len();
        let dedup_dropped = corpus.dedup();
        let dedup_time = stage.elapsed();

        // Step 5: static semantic analysis. Every surviving pair is
        // proven against the schema; under `Reject` invalid pairs are
        // dropped with per-code and per-provenance accounting. The
        // survivors keep their cleanliness scores for the streaming
        // dedup layer.
        let stage = Instant::now();
        let (kept, analyzer_report) = analyze_pairs_scored_with(
            schema,
            corpus.into_iter().collect(),
            threads,
            self.config.analyzer_policy,
            &self.config.par,
        );
        let analyze_time = stage.elapsed();

        let mut provenance = BTreeMap::new();
        let mut template_counts = BTreeMap::new();
        for (pair, _) in &kept {
            *provenance.entry(pair.provenance).or_insert(0) += 1;
            *template_counts.entry(pair.template_id.clone()).or_insert(0) += 1;
        }
        let report = PipelineReport {
            threads,
            seed_pairs,
            augmented_pairs,
            pre_dedup_pairs,
            dedup_dropped,
            final_pairs: kept.len(),
            provenance,
            template_counts,
            generator: generator_stats,
            analyzer: analyzer_report,
            timings: StageTimings {
                generate: generate_time,
                augment: augment_time,
                lemmatize: lemmatize_time,
                dedup: dedup_time,
                analyze: analyze_time,
                total: run_start.elapsed(),
            },
        };
        (kept, report)
    }

    /// Generate corpora for several schemas and merge them (the multi-
    /// schema setting of the Spider experiments, §6.1.2, where DBPal
    /// synthesizes data for every training — and, in the Full
    /// configuration, test — schema).
    pub fn generate_multi(&self, schemas: &[&Schema]) -> TrainingCorpus {
        let mut merged = TrainingCorpus::new();
        for (i, schema) in schemas.iter().enumerate() {
            // Vary the seed per schema so instance sampling differs.
            // Re-keying through `stream_seed` (rather than adding the
            // index) keeps adjacent (seed, schema-index) pairs from
            // colliding: seed s with schema i+1 must not see the same
            // stream as seed s+1 with schema i.
            let mut config = self.config.clone();
            config.seed = stream_seed(config.seed, i as u64);
            let pipeline = TrainingPipeline::new(config);
            merged.extend(pipeline.generate(schema));
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Provenance;
    use dbpal_schema::{SchemaBuilder, SemanticDomain, SqlType};

    fn schema() -> Schema {
        SchemaBuilder::new("hospital")
            .table("patients", |t| {
                t.column("name", SqlType::Text)
                    .column_with("age", SqlType::Integer, |c| c.domain(SemanticDomain::Age))
                    .column("disease", SqlType::Text)
                    .column("doctor_id", SqlType::Integer)
            })
            .table("doctors", |t| {
                t.column("id", SqlType::Integer)
                    .column("name", SqlType::Text)
            })
            .foreign_key("patients", "doctor_id", "doctors", "id")
            .build()
            .unwrap()
    }

    #[test]
    fn full_pipeline_produces_lemmatized_corpus() {
        let pipeline = TrainingPipeline::new(GenerationConfig::small());
        let corpus = pipeline.generate(&schema());
        assert!(corpus.len() > 200, "only {} pairs", corpus.len());
        for p in corpus.pairs() {
            assert!(!p.nl_lemmas.is_empty(), "unlemmatized pair: {}", p.nl);
        }
        let counts = corpus.provenance_counts();
        assert!(counts.contains_key(&Provenance::Seed));
        assert!(counts.contains_key(&Provenance::Paraphrased));
    }

    #[test]
    fn corpus_has_no_duplicates() {
        let pipeline = TrainingPipeline::new(GenerationConfig::small());
        let mut corpus = pipeline.generate(&schema());
        assert_eq!(corpus.dedup(), 0, "pipeline output contained duplicates");
    }

    #[test]
    fn pipeline_is_deterministic() {
        let pipeline = TrainingPipeline::new(GenerationConfig::small());
        let a: Vec<String> = pipeline
            .generate(&schema())
            .pairs()
            .iter()
            .map(|p| p.nl.clone())
            .collect();
        let b: Vec<String> = pipeline
            .generate(&schema())
            .pairs()
            .iter()
            .map(|p| p.nl.clone())
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn template_subset_shrinks_corpus() {
        let pipeline = TrainingPipeline::new(GenerationConfig::small());
        let full = pipeline.generate(&schema()).len();
        let sub = pipeline
            .generate_with_templates(&schema(), &crate::templates::catalog_subset(0.1, 1))
            .len();
        assert!(sub < full / 3, "subset corpus {sub} vs full {full}");
    }

    #[test]
    fn multi_schema_merging() {
        let s1 = schema();
        let s2 = SchemaBuilder::new("geo")
            .table("cities", |t| {
                t.column("name", SqlType::Text)
                    .column_with("population", SqlType::Integer, |c| {
                        c.domain(SemanticDomain::Population)
                    })
                    .column("state", SqlType::Text)
            })
            .build()
            .unwrap();
        let pipeline = TrainingPipeline::new(GenerationConfig::small());
        let merged = pipeline.generate_multi(&[&s1, &s2]);
        let has_city = merged
            .pairs()
            .iter()
            .any(|p| p.sql_text().contains("cities"));
        let has_patients = merged
            .pairs()
            .iter()
            .any(|p| p.sql_text().contains("patients"));
        assert!(has_city && has_patients);
    }

    #[test]
    fn augmentation_grows_the_corpus() {
        let mut base_cfg = GenerationConfig::small();
        base_cfg.num_para = 0;
        base_cfg.num_missing = 0;
        let base = TrainingPipeline::new(base_cfg).generate(&schema()).len();
        let full = TrainingPipeline::new(GenerationConfig::small())
            .generate(&schema())
            .len();
        assert!(full > base, "augmentation added nothing: {full} vs {base}");
    }

    #[test]
    fn report_matches_corpus_and_is_consistent() {
        let pipeline = TrainingPipeline::new(GenerationConfig::small());
        let (corpus, report) = pipeline.generate_with_report(&schema());
        report.check_consistency().expect("inconsistent report");
        assert_eq!(report.final_pairs, corpus.len());
        assert_eq!(
            report
                .provenance
                .iter()
                .map(|(p, n)| (*p, *n))
                .collect::<Vec<_>>(),
            {
                let mut v: Vec<_> = corpus.provenance_counts().into_iter().collect();
                v.sort();
                v
            }
        );
        assert!(report.threads >= 1);
        assert!(report.seed_pairs > 0);
        assert!(report.augmented_pairs > 0);
        assert!(report.timings.total >= report.timings.generate);
        let rendered = report.render();
        assert!(rendered.contains("generate"));
        assert!(rendered.contains("dedup"));
        assert!(rendered.contains(&format!("{} pairs", report.final_pairs)));
    }

    #[test]
    fn report_records_into_registry() {
        let pipeline = TrainingPipeline::new(GenerationConfig::small());
        let (_, report) = pipeline.generate_with_report(&schema());
        let reg = MetricsRegistry::new();
        report.record_metrics(&reg);
        assert_eq!(
            reg.counter("pipeline.final_pairs").get(),
            report.final_pairs as u64
        );
        assert_eq!(reg.histogram("pipeline.stage.generate").count(), 1);
        // The deterministic export carries every counter and stage
        // observation count, no wall-clock values.
        let doc = reg.to_json_deterministic().pretty();
        assert!(doc.contains("pipeline.seed_pairs"));
        assert!(doc.contains("pipeline.stage.total"));
        assert!(!doc.contains("sum_ns"));
    }

    #[test]
    fn report_is_identical_across_thread_counts() {
        let base = GenerationConfig::small();
        let run = |threads: usize| {
            let cfg = GenerationConfig {
                threads,
                ..base.clone()
            };
            TrainingPipeline::new(cfg).generate_with_report(&schema()).1
        };
        let one = run(1);
        let four = run(4);
        assert_eq!(one.seed_pairs, four.seed_pairs);
        assert_eq!(one.augmented_pairs, four.augmented_pairs);
        assert_eq!(one.dedup_dropped, four.dedup_dropped);
        assert_eq!(one.final_pairs, four.final_pairs);
        assert_eq!(one.provenance, four.provenance);
        assert_eq!(one.generator, four.generator);
    }

    fn bad_pair() -> TrainingPair {
        // References a column the schema lacks: E0101 at analyze time.
        TrainingPair::new(
            "what are the salaries",
            dbpal_sql::parse_query("SELECT salary FROM patients").unwrap(),
            "manual-0",
            Provenance::Manual,
        )
    }

    fn warn_pair() -> TrainingPair {
        // Valid but suspicious: integer column against a float literal
        // (W0201), which must never be rejected.
        TrainingPair::new(
            "patients aged exactly one and a half",
            dbpal_sql::parse_query("SELECT name FROM patients WHERE age = 1.5").unwrap(),
            "manual-1",
            Provenance::Manual,
        )
    }

    fn good_pair() -> TrainingPair {
        TrainingPair::new(
            "show all patient names",
            dbpal_sql::parse_query("SELECT name FROM patients").unwrap(),
            "manual-2",
            Provenance::Manual,
        )
    }

    #[test]
    fn analyze_pairs_reject_drops_only_errors() {
        use dbpal_analyze::AnalyzerPolicy;
        let schema = schema();
        let pairs = vec![good_pair(), bad_pair(), warn_pair()];
        let (kept, report) = analyze_pairs(&schema, pairs, 1, AnalyzerPolicy::Reject);
        assert_eq!(kept.len(), 2, "error pair must be dropped, warn pair kept");
        assert_eq!(report.analyzed, 3);
        assert_eq!(report.flagged, 2);
        assert_eq!(report.rejected, 1);
        assert_eq!(report.codes.get("E0101"), Some(&1));
        assert_eq!(report.codes.get("W0201"), Some(&1));
        assert_eq!(
            report.rejected_provenance.get(&Provenance::Manual),
            Some(&1)
        );
    }

    #[test]
    fn analyze_pairs_warn_keeps_everything() {
        use dbpal_analyze::AnalyzerPolicy;
        let schema = schema();
        let pairs = vec![good_pair(), bad_pair(), warn_pair()];
        let (kept, report) = analyze_pairs(&schema, pairs, 1, AnalyzerPolicy::Warn);
        assert_eq!(kept.len(), 3);
        assert_eq!(report.flagged, 2);
        assert_eq!(report.rejected, 0);
        assert_eq!(report.codes.get("E0101"), Some(&1));
    }

    #[test]
    fn analyze_pairs_off_skips_analysis() {
        use dbpal_analyze::AnalyzerPolicy;
        let schema = schema();
        let pairs = vec![good_pair(), bad_pair()];
        let (kept, report) = analyze_pairs(&schema, pairs, 1, AnalyzerPolicy::Off);
        assert_eq!(kept.len(), 2);
        assert_eq!(report.analyzed, 0);
        assert!(report.codes.is_empty());
    }

    #[test]
    fn analyze_pairs_report_identical_across_threads() {
        use dbpal_analyze::AnalyzerPolicy;
        let schema = schema();
        // A batch large enough to span several chunks.
        let mut pairs = Vec::new();
        for _ in 0..70 {
            pairs.push(good_pair());
            pairs.push(bad_pair());
            pairs.push(warn_pair());
        }
        let run = |threads| analyze_pairs(&schema, pairs.clone(), threads, AnalyzerPolicy::Reject);
        let (kept1, rep1) = run(1);
        let (kept2, rep2) = run(2);
        let (kept8, rep8) = run(8);
        assert_eq!(rep1, rep2);
        assert_eq!(rep1, rep8);
        assert_eq!(kept1, kept2);
        assert_eq!(kept1, kept8);
    }

    #[test]
    fn default_pipeline_rejects_nothing_and_reports_clean() {
        let pipeline = TrainingPipeline::new(GenerationConfig::small());
        let (_, report) = pipeline.generate_with_report(&schema());
        report.check_consistency().expect("inconsistent report");
        assert_eq!(
            report.analyzer.policy,
            dbpal_analyze::AnalyzerPolicy::Reject
        );
        assert_eq!(report.analyzer.analyzed, report.final_pairs);
        assert_eq!(report.analyzer.flagged, 0, "generated pairs must be clean");
        assert_eq!(report.analyzer.rejected, 0);
        assert!(report.analyzer.codes.is_empty());
        assert!(report.render().contains("policy reject"));
    }

    #[test]
    fn off_policy_report_is_consistent() {
        let config = GenerationConfig {
            analyzer_policy: dbpal_analyze::AnalyzerPolicy::Off,
            ..GenerationConfig::small()
        };
        let (_, report) = TrainingPipeline::new(config).generate_with_report(&schema());
        report.check_consistency().expect("inconsistent report");
        assert_eq!(report.analyzer.analyzed, 0);
        assert!(report.render().contains("analyze   (off)"));
    }

    #[test]
    fn exhaustion_is_reported_not_silent() {
        // One table with one text column: most classes cannot instantiate
        // at all (failed draws) and the rest run out of distinct
        // instances long before a large budget (duplicate draws), so the
        // attempt cap (budget * 4 + 8) trips and the report must surface
        // the shortfall.
        let schema = SchemaBuilder::new("tiny")
            .table("t", |t| t.column("a", SqlType::Text))
            .build()
            .unwrap();
        let config = GenerationConfig {
            size_slot_fills: 50,
            num_para: 0,
            num_missing: 0,
            ..GenerationConfig::default()
        };
        let (corpus, report) = TrainingPipeline::new(config).generate_with_report(&schema);
        report.check_consistency().expect("inconsistent report");
        assert!(!corpus.is_empty(), "tiny schema produced nothing at all");
        let g = &report.generator;
        assert!(g.produced < g.budgeted, "tiny schema filled every budget");
        assert!(g.shortfall > 0, "shortfall not reported");
        assert!(g.exhausted_templates > 0, "no template reported exhausted");
        assert!(g.failed_draws > 0, "expected uninstantiable draws");
        assert!(g.duplicate_draws > 0, "expected duplicate draws");
        assert_eq!(g.retries(), g.failed_draws + g.duplicate_draws);
    }
}
