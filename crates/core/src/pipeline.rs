//! The end-to-end training-data pipeline: generate → augment → lemmatize.
//!
//! This is the flow of paper Figure 2 (left side): the Generator
//! instantiates seed templates against the schema, the Augmentation step
//! adds linguistic variations, and the Lemmatizer normalizes every NL
//! side. The output corpus can then be fed to any pluggable
//! [`crate::TranslationModel`].
//!
//! Every stage fans out across `config.threads` workers (see
//! DESIGN.md "Parallel pipeline"): each work unit draws from its own
//! [`dbpal_util::stream_seed`]-derived RNG stream and shards merge in
//! input order, so the corpus is byte-identical for a given seed at any
//! thread count. [`TrainingPipeline::generate_with_report`] additionally
//! returns a [`PipelineReport`] with per-stage wall time and pair
//! accounting.

use crate::templates::{catalog, SeedTemplate};
use crate::{
    Augmenter, GenerationConfig, Generator, GeneratorStats, Provenance, TrainingCorpus,
    TrainingPair,
};
use dbpal_nlp::Lemmatizer;
use dbpal_schema::Schema;
use dbpal_util::{par_map_indexed, stream_seed};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Wall-clock time spent in each pipeline stage.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTimings {
    /// Template instantiation (§3.1).
    pub generate: Duration,
    /// Augmentation (§3.2).
    pub augment: Duration,
    /// Lemmatization (§2.2.3).
    pub lemmatize: Duration,
    /// Duplicate removal.
    pub dedup: Duration,
    /// The whole pipeline run.
    pub total: Duration,
}

/// Accounting for one pipeline run: how many pairs each stage produced,
/// how many duplicates were dropped, and where the generator's sampling
/// loop spent its retries. Built by
/// [`TrainingPipeline::generate_with_report`].
///
/// The counters obey invariants checked by
/// [`PipelineReport::check_consistency`]:
/// `seed_pairs + augmented_pairs == pre_dedup_pairs`,
/// `pre_dedup_pairs - final_pairs == dedup_dropped`, and the
/// per-provenance counts sum to `final_pairs`.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Worker threads the run used (the resolved value, never 0).
    pub threads: usize,
    /// Pairs out of the instantiation stage.
    pub seed_pairs: usize,
    /// Pairs added by the augmentation stage.
    pub augmented_pairs: usize,
    /// Corpus size entering dedup (seed + augmented).
    pub pre_dedup_pairs: usize,
    /// Exact duplicates removed.
    pub dedup_dropped: usize,
    /// Pairs in the returned corpus.
    pub final_pairs: usize,
    /// Final pair count per provenance.
    pub provenance: BTreeMap<Provenance, usize>,
    /// Instantiation counters (retries, exhausted templates, shortfall).
    pub generator: GeneratorStats,
    /// Per-stage wall time.
    pub timings: StageTimings,
}

impl PipelineReport {
    /// Verify the internal accounting invariants; returns a description
    /// of the first violation.
    pub fn check_consistency(&self) -> Result<(), String> {
        if self.seed_pairs + self.augmented_pairs != self.pre_dedup_pairs {
            return Err(format!(
                "stage outputs do not sum: seed {} + augmented {} != pre-dedup {}",
                self.seed_pairs, self.augmented_pairs, self.pre_dedup_pairs
            ));
        }
        if self.pre_dedup_pairs < self.final_pairs {
            return Err(format!(
                "dedup grew the corpus: {} -> {}",
                self.pre_dedup_pairs, self.final_pairs
            ));
        }
        if self.pre_dedup_pairs - self.final_pairs != self.dedup_dropped {
            return Err(format!(
                "dedup drops mismatch: pre {} - final {} != dropped {}",
                self.pre_dedup_pairs, self.final_pairs, self.dedup_dropped
            ));
        }
        if self.provenance.values().sum::<usize>() != self.final_pairs {
            return Err(format!(
                "provenance counts sum to {}, corpus has {}",
                self.provenance.values().sum::<usize>(),
                self.final_pairs
            ));
        }
        if self.generator.produced != self.seed_pairs {
            return Err(format!(
                "generator produced {} but seed stage reports {}",
                self.generator.produced, self.seed_pairs
            ));
        }
        Ok(())
    }

    /// A multi-line human-readable rendering (printed by the bench
    /// binaries).
    pub fn render(&self) -> String {
        let ms = |d: Duration| format!("{:8.1}ms", d.as_secs_f64() * 1e3);
        let mut out = format!("pipeline report (threads = {})\n", self.threads);
        out += &format!(
            "  generate  {}  {} seed pairs (budgeted {}, retries {}, exhausted {}, shortfall {})\n",
            ms(self.timings.generate),
            self.seed_pairs,
            self.generator.budgeted,
            self.generator.retries(),
            self.generator.exhausted_templates,
            self.generator.shortfall,
        );
        out += &format!(
            "  augment   {}  +{} pairs\n",
            ms(self.timings.augment),
            self.augmented_pairs
        );
        out += &format!("  lemmatize {}\n", ms(self.timings.lemmatize));
        out += &format!(
            "  dedup     {}  -{} duplicates\n",
            ms(self.timings.dedup),
            self.dedup_dropped
        );
        let provenance = self
            .provenance
            .iter()
            .map(|(p, n)| format!("{} {n}", p.label()))
            .collect::<Vec<_>>()
            .join(", ");
        out += &format!(
            "  total     {}  {} pairs ({provenance})\n",
            ms(self.timings.total),
            self.final_pairs
        );
        out
    }
}

/// The DBPal training pipeline.
#[derive(Debug, Clone)]
pub struct TrainingPipeline {
    config: GenerationConfig,
}

impl TrainingPipeline {
    /// Create a pipeline with the given configuration.
    pub fn new(config: GenerationConfig) -> Self {
        TrainingPipeline { config }
    }

    /// Create a pipeline with the paper's default configuration.
    pub fn with_defaults() -> Self {
        Self::new(GenerationConfig::default())
    }

    /// The active configuration.
    pub fn config(&self) -> &GenerationConfig {
        &self.config
    }

    /// Run the full pipeline on a schema with the complete seed-template
    /// catalog.
    pub fn generate(&self, schema: &Schema) -> TrainingCorpus {
        self.generate_with_report(schema).0
    }

    /// As [`TrainingPipeline::generate`], also returning the per-stage
    /// [`PipelineReport`].
    pub fn generate_with_report(&self, schema: &Schema) -> (TrainingCorpus, PipelineReport) {
        self.generate_with_templates_and_report(schema, &catalog())
    }

    /// Run the full pipeline with an explicit template set (used by the
    /// seed-template-fraction experiment of §6.3.2).
    pub fn generate_with_templates(
        &self,
        schema: &Schema,
        templates: &[SeedTemplate],
    ) -> TrainingCorpus {
        self.generate_with_templates_and_report(schema, templates).0
    }

    /// As [`TrainingPipeline::generate_with_templates`], also returning
    /// the per-stage [`PipelineReport`].
    pub fn generate_with_templates_and_report(
        &self,
        schema: &Schema,
        templates: &[SeedTemplate],
    ) -> (TrainingCorpus, PipelineReport) {
        let threads = self.config.effective_threads();
        let run_start = Instant::now();

        // Step 1: instantiation (§3.1).
        let stage = Instant::now();
        let generator = Generator::new(schema, &self.config);
        let (mut corpus, generator_stats) = generator.generate_with_stats(templates);
        let generate_time = stage.elapsed();
        let seed_pairs = corpus.len();

        // Step 2: augmentation (§3.2).
        let stage = Instant::now();
        let augmenter = Augmenter::new(schema, &self.config);
        let additions = augmenter.augment(&corpus);
        let augmented_pairs = additions.len();
        for pair in additions {
            corpus.push(pair);
        }
        let augment_time = stage.elapsed();

        // Step 3: lemmatization (§2.2.3). The lemmatizer is pure lookup
        // state, so chunks of pairs lemmatize independently and the
        // per-chunk results zip back in order.
        let stage = Instant::now();
        let lemmatizer = Lemmatizer::new();
        let mut pairs: Vec<TrainingPair> = corpus.into_iter().collect();
        const CHUNK: usize = 64;
        let lemmas: Vec<Vec<Vec<String>>> = {
            let chunks: Vec<&[TrainingPair]> = pairs.chunks(CHUNK).collect();
            par_map_indexed(&chunks, threads, |_, chunk| {
                chunk
                    .iter()
                    .map(|p| lemmatizer.lemmatize_sentence(&p.nl))
                    .collect()
            })
        };
        for (chunk_lemmas, chunk_pairs) in lemmas.into_iter().zip(pairs.chunks_mut(CHUNK)) {
            for (nl_lemmas, pair) in chunk_lemmas.into_iter().zip(chunk_pairs.iter_mut()) {
                pair.nl_lemmas = nl_lemmas;
            }
        }
        let mut corpus = TrainingCorpus::from_pairs(pairs);
        let lemmatize_time = stage.elapsed();

        // Step 4: duplicate removal.
        let stage = Instant::now();
        let pre_dedup_pairs = corpus.len();
        let dedup_dropped = corpus.dedup();
        let dedup_time = stage.elapsed();

        let report = PipelineReport {
            threads,
            seed_pairs,
            augmented_pairs,
            pre_dedup_pairs,
            dedup_dropped,
            final_pairs: corpus.len(),
            provenance: corpus.provenance_counts().into_iter().collect(),
            generator: generator_stats,
            timings: StageTimings {
                generate: generate_time,
                augment: augment_time,
                lemmatize: lemmatize_time,
                dedup: dedup_time,
                total: run_start.elapsed(),
            },
        };
        (corpus, report)
    }

    /// Generate corpora for several schemas and merge them (the multi-
    /// schema setting of the Spider experiments, §6.1.2, where DBPal
    /// synthesizes data for every training — and, in the Full
    /// configuration, test — schema).
    pub fn generate_multi(&self, schemas: &[&Schema]) -> TrainingCorpus {
        let mut merged = TrainingCorpus::new();
        for (i, schema) in schemas.iter().enumerate() {
            // Vary the seed per schema so instance sampling differs.
            // Re-keying through `stream_seed` (rather than adding the
            // index) keeps adjacent (seed, schema-index) pairs from
            // colliding: seed s with schema i+1 must not see the same
            // stream as seed s+1 with schema i.
            let mut config = self.config.clone();
            config.seed = stream_seed(config.seed, i as u64);
            let pipeline = TrainingPipeline::new(config);
            merged.extend(pipeline.generate(schema));
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Provenance;
    use dbpal_schema::{SchemaBuilder, SemanticDomain, SqlType};

    fn schema() -> Schema {
        SchemaBuilder::new("hospital")
            .table("patients", |t| {
                t.column("name", SqlType::Text)
                    .column_with("age", SqlType::Integer, |c| c.domain(SemanticDomain::Age))
                    .column("disease", SqlType::Text)
                    .column("doctor_id", SqlType::Integer)
            })
            .table("doctors", |t| {
                t.column("id", SqlType::Integer).column("name", SqlType::Text)
            })
            .foreign_key("patients", "doctor_id", "doctors", "id")
            .build()
            .unwrap()
    }

    #[test]
    fn full_pipeline_produces_lemmatized_corpus() {
        let pipeline = TrainingPipeline::new(GenerationConfig::small());
        let corpus = pipeline.generate(&schema());
        assert!(corpus.len() > 200, "only {} pairs", corpus.len());
        for p in corpus.pairs() {
            assert!(!p.nl_lemmas.is_empty(), "unlemmatized pair: {}", p.nl);
        }
        let counts = corpus.provenance_counts();
        assert!(counts.contains_key(&Provenance::Seed));
        assert!(counts.contains_key(&Provenance::Paraphrased));
    }

    #[test]
    fn corpus_has_no_duplicates() {
        let pipeline = TrainingPipeline::new(GenerationConfig::small());
        let mut corpus = pipeline.generate(&schema());
        assert_eq!(corpus.dedup(), 0, "pipeline output contained duplicates");
    }

    #[test]
    fn pipeline_is_deterministic() {
        let pipeline = TrainingPipeline::new(GenerationConfig::small());
        let a: Vec<String> = pipeline.generate(&schema()).pairs().iter().map(|p| p.nl.clone()).collect();
        let b: Vec<String> = pipeline.generate(&schema()).pairs().iter().map(|p| p.nl.clone()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn template_subset_shrinks_corpus() {
        let pipeline = TrainingPipeline::new(GenerationConfig::small());
        let full = pipeline.generate(&schema()).len();
        let sub = pipeline
            .generate_with_templates(&schema(), &crate::templates::catalog_subset(0.1, 1))
            .len();
        assert!(sub < full / 3, "subset corpus {sub} vs full {full}");
    }

    #[test]
    fn multi_schema_merging() {
        let s1 = schema();
        let s2 = SchemaBuilder::new("geo")
            .table("cities", |t| {
                t.column("name", SqlType::Text)
                    .column_with("population", SqlType::Integer, |c| {
                        c.domain(SemanticDomain::Population)
                    })
                    .column("state", SqlType::Text)
            })
            .build()
            .unwrap();
        let pipeline = TrainingPipeline::new(GenerationConfig::small());
        let merged = pipeline.generate_multi(&[&s1, &s2]);
        let has_city = merged.pairs().iter().any(|p| p.sql_text().contains("cities"));
        let has_patients = merged.pairs().iter().any(|p| p.sql_text().contains("patients"));
        assert!(has_city && has_patients);
    }

    #[test]
    fn augmentation_grows_the_corpus() {
        let mut base_cfg = GenerationConfig::small();
        base_cfg.num_para = 0;
        base_cfg.num_missing = 0;
        let base = TrainingPipeline::new(base_cfg).generate(&schema()).len();
        let full = TrainingPipeline::new(GenerationConfig::small())
            .generate(&schema())
            .len();
        assert!(full > base, "augmentation added nothing: {full} vs {base}");
    }

    #[test]
    fn report_matches_corpus_and_is_consistent() {
        let pipeline = TrainingPipeline::new(GenerationConfig::small());
        let (corpus, report) = pipeline.generate_with_report(&schema());
        report.check_consistency().expect("inconsistent report");
        assert_eq!(report.final_pairs, corpus.len());
        assert_eq!(
            report.provenance.iter().map(|(p, n)| (*p, *n)).collect::<Vec<_>>(),
            {
                let mut v: Vec<_> = corpus.provenance_counts().into_iter().collect();
                v.sort();
                v
            }
        );
        assert!(report.threads >= 1);
        assert!(report.seed_pairs > 0);
        assert!(report.augmented_pairs > 0);
        assert!(report.timings.total >= report.timings.generate);
        let rendered = report.render();
        assert!(rendered.contains("generate"));
        assert!(rendered.contains("dedup"));
        assert!(rendered.contains(&format!("{} pairs", report.final_pairs)));
    }

    #[test]
    fn report_is_identical_across_thread_counts() {
        let base = GenerationConfig::small();
        let run = |threads: usize| {
            let cfg = GenerationConfig { threads, ..base.clone() };
            TrainingPipeline::new(cfg).generate_with_report(&schema()).1
        };
        let one = run(1);
        let four = run(4);
        assert_eq!(one.seed_pairs, four.seed_pairs);
        assert_eq!(one.augmented_pairs, four.augmented_pairs);
        assert_eq!(one.dedup_dropped, four.dedup_dropped);
        assert_eq!(one.final_pairs, four.final_pairs);
        assert_eq!(one.provenance, four.provenance);
        assert_eq!(one.generator, four.generator);
    }

    #[test]
    fn exhaustion_is_reported_not_silent() {
        // One table with one text column: most classes cannot instantiate
        // at all (failed draws) and the rest run out of distinct
        // instances long before a large budget (duplicate draws), so the
        // attempt cap (budget * 4 + 8) trips and the report must surface
        // the shortfall.
        let schema = SchemaBuilder::new("tiny")
            .table("t", |t| t.column("a", SqlType::Text))
            .build()
            .unwrap();
        let config = GenerationConfig {
            size_slot_fills: 50,
            num_para: 0,
            num_missing: 0,
            ..GenerationConfig::default()
        };
        let (corpus, report) = TrainingPipeline::new(config)
            .generate_with_report(&schema);
        report.check_consistency().expect("inconsistent report");
        assert!(!corpus.is_empty(), "tiny schema produced nothing at all");
        let g = &report.generator;
        assert!(g.produced < g.budgeted, "tiny schema filled every budget");
        assert!(g.shortfall > 0, "shortfall not reported");
        assert!(g.exhausted_templates > 0, "no template reported exhausted");
        assert!(g.failed_draws > 0, "expected uninstantiable draws");
        assert!(g.duplicate_draws > 0, "expected duplicate draws");
        assert_eq!(g.retries(), g.failed_draws + g.duplicate_draws);
    }
}
