//! The end-to-end training-data pipeline: generate → augment → lemmatize.
//!
//! This is the flow of paper Figure 2 (left side): the Generator
//! instantiates seed templates against the schema, the Augmentation step
//! adds linguistic variations, and the Lemmatizer normalizes every NL
//! side. The output corpus can then be fed to any pluggable
//! [`crate::TranslationModel`].

use crate::templates::{catalog, SeedTemplate};
use crate::{Augmenter, GenerationConfig, Generator, TrainingCorpus};
use dbpal_nlp::Lemmatizer;
use dbpal_schema::Schema;

/// The DBPal training pipeline.
#[derive(Debug, Clone)]
pub struct TrainingPipeline {
    config: GenerationConfig,
}

impl TrainingPipeline {
    /// Create a pipeline with the given configuration.
    pub fn new(config: GenerationConfig) -> Self {
        TrainingPipeline { config }
    }

    /// Create a pipeline with the paper's default configuration.
    pub fn with_defaults() -> Self {
        Self::new(GenerationConfig::default())
    }

    /// The active configuration.
    pub fn config(&self) -> &GenerationConfig {
        &self.config
    }

    /// Run the full pipeline on a schema with the complete seed-template
    /// catalog.
    pub fn generate(&self, schema: &Schema) -> TrainingCorpus {
        self.generate_with_templates(schema, &catalog())
    }

    /// Run the full pipeline with an explicit template set (used by the
    /// seed-template-fraction experiment of §6.3.2).
    pub fn generate_with_templates(
        &self,
        schema: &Schema,
        templates: &[SeedTemplate],
    ) -> TrainingCorpus {
        // Step 1: instantiation (§3.1).
        let mut generator = Generator::new(schema, &self.config);
        let mut corpus = generator.generate(templates);

        // Step 2: augmentation (§3.2).
        let mut augmenter = Augmenter::new(schema, &self.config);
        let additions = augmenter.augment(&corpus);
        for pair in additions {
            corpus.push(pair);
        }

        // Step 3: lemmatization (§2.2.3).
        let lemmatizer = Lemmatizer::new();
        let mut pairs = Vec::with_capacity(corpus.len());
        for mut pair in corpus {
            pair.nl_lemmas = lemmatizer.lemmatize_sentence(&pair.nl);
            pairs.push(pair);
        }
        let mut corpus = TrainingCorpus::from_pairs(pairs);
        corpus.dedup();
        corpus
    }

    /// Generate corpora for several schemas and merge them (the multi-
    /// schema setting of the Spider experiments, §6.1.2, where DBPal
    /// synthesizes data for every training — and, in the Full
    /// configuration, test — schema).
    pub fn generate_multi(&self, schemas: &[&Schema]) -> TrainingCorpus {
        let mut merged = TrainingCorpus::new();
        for (i, schema) in schemas.iter().enumerate() {
            // Vary the seed per schema so instance sampling differs.
            let mut config = self.config.clone();
            config.seed = config.seed.wrapping_add(i as u64);
            let pipeline = TrainingPipeline::new(config);
            merged.extend(pipeline.generate(schema));
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Provenance;
    use dbpal_schema::{SchemaBuilder, SemanticDomain, SqlType};

    fn schema() -> Schema {
        SchemaBuilder::new("hospital")
            .table("patients", |t| {
                t.column("name", SqlType::Text)
                    .column_with("age", SqlType::Integer, |c| c.domain(SemanticDomain::Age))
                    .column("disease", SqlType::Text)
                    .column("doctor_id", SqlType::Integer)
            })
            .table("doctors", |t| {
                t.column("id", SqlType::Integer).column("name", SqlType::Text)
            })
            .foreign_key("patients", "doctor_id", "doctors", "id")
            .build()
            .unwrap()
    }

    #[test]
    fn full_pipeline_produces_lemmatized_corpus() {
        let pipeline = TrainingPipeline::new(GenerationConfig::small());
        let corpus = pipeline.generate(&schema());
        assert!(corpus.len() > 200, "only {} pairs", corpus.len());
        for p in corpus.pairs() {
            assert!(!p.nl_lemmas.is_empty(), "unlemmatized pair: {}", p.nl);
        }
        let counts = corpus.provenance_counts();
        assert!(counts.contains_key(&Provenance::Seed));
        assert!(counts.contains_key(&Provenance::Paraphrased));
    }

    #[test]
    fn corpus_has_no_duplicates() {
        let pipeline = TrainingPipeline::new(GenerationConfig::small());
        let mut corpus = pipeline.generate(&schema());
        assert_eq!(corpus.dedup(), 0, "pipeline output contained duplicates");
    }

    #[test]
    fn pipeline_is_deterministic() {
        let pipeline = TrainingPipeline::new(GenerationConfig::small());
        let a: Vec<String> = pipeline.generate(&schema()).pairs().iter().map(|p| p.nl.clone()).collect();
        let b: Vec<String> = pipeline.generate(&schema()).pairs().iter().map(|p| p.nl.clone()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn template_subset_shrinks_corpus() {
        let pipeline = TrainingPipeline::new(GenerationConfig::small());
        let full = pipeline.generate(&schema()).len();
        let sub = pipeline
            .generate_with_templates(&schema(), &crate::templates::catalog_subset(0.1, 1))
            .len();
        assert!(sub < full / 3, "subset corpus {sub} vs full {full}");
    }

    #[test]
    fn multi_schema_merging() {
        let s1 = schema();
        let s2 = SchemaBuilder::new("geo")
            .table("cities", |t| {
                t.column("name", SqlType::Text)
                    .column_with("population", SqlType::Integer, |c| {
                        c.domain(SemanticDomain::Population)
                    })
                    .column("state", SqlType::Text)
            })
            .build()
            .unwrap();
        let pipeline = TrainingPipeline::new(GenerationConfig::small());
        let merged = pipeline.generate_multi(&[&s1, &s2]);
        let has_city = merged.pairs().iter().any(|p| p.sql_text().contains("cities"));
        let has_patients = merged.pairs().iter().any(|p| p.sql_text().contains("patients"));
        assert!(has_city && has_patients);
    }

    #[test]
    fn augmentation_grows_the_corpus() {
        let mut base_cfg = GenerationConfig::small();
        base_cfg.num_para = 0;
        base_cfg.num_missing = 0;
        let base = TrainingPipeline::new(base_cfg).generate(&schema()).len();
        let full = TrainingPipeline::new(GenerationConfig::small())
            .generate(&schema())
            .len();
        assert!(full > base, "augmentation added nothing: {full} vs {base}");
    }
}
