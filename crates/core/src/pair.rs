//! Training pairs and corpora.

use dbpal_sql::Query;
use std::collections::HashMap;
use std::fmt;

/// How a pair entered the corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Provenance {
    /// Direct instantiation of a seed template (§3.1).
    Seed,
    /// Automatic paraphrasing via the paraphrase store (§3.2.1).
    Paraphrased,
    /// Word-dropout duplicate modelling missing information (§3.2.2).
    Dropped,
    /// Domain-specific comparative/superlative substitution (§3.2.3).
    Comparative,
    /// Manually curated pair supplied by the user (the paper notes such
    /// data "can still be used to complement our proposed data generation
    /// pipeline", §1).
    Manual,
}

impl Provenance {
    /// Stable lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            Provenance::Seed => "seed",
            Provenance::Paraphrased => "paraphrased",
            Provenance::Dropped => "dropped",
            Provenance::Comparative => "comparative",
            Provenance::Manual => "manual",
        }
    }
}

/// One NL–SQL training pair.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingPair {
    /// The natural-language side as raw text (pre-lemmatization).
    pub nl: String,
    /// Lemmatized NL tokens (filled by the pipeline's lemmatization step).
    pub nl_lemmas: Vec<String>,
    /// The SQL side with placeholder constants.
    pub sql: Query,
    /// Id of the seed template this pair descends from.
    pub template_id: String,
    /// How the pair was produced.
    pub provenance: Provenance,
}

impl TrainingPair {
    /// Create a fresh (not yet lemmatized) pair.
    pub fn new(
        nl: impl Into<String>,
        sql: Query,
        template_id: impl Into<String>,
        provenance: Provenance,
    ) -> Self {
        TrainingPair {
            nl: nl.into(),
            nl_lemmas: Vec::new(),
            sql,
            template_id: template_id.into(),
            provenance,
        }
    }

    /// The SQL side rendered as text.
    pub fn sql_text(&self) -> String {
        self.sql.to_string()
    }
}

impl fmt::Display for TrainingPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ⇒ {}", self.nl, self.sql)
    }
}

/// A generated training corpus with provenance statistics.
#[derive(Debug, Clone, Default)]
pub struct TrainingCorpus {
    pairs: Vec<TrainingPair>,
}

impl TrainingCorpus {
    /// An empty corpus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap a list of pairs.
    pub fn from_pairs(pairs: Vec<TrainingPair>) -> Self {
        TrainingCorpus { pairs }
    }

    /// All pairs.
    pub fn pairs(&self) -> &[TrainingPair] {
        &self.pairs
    }

    /// Append a pair.
    pub fn push(&mut self, pair: TrainingPair) {
        self.pairs.push(pair);
    }

    /// Append all pairs of another corpus (e.g. merging DBPal synthetic
    /// data with an existing manually curated training set, §6.1.2).
    pub fn extend(&mut self, other: TrainingCorpus) {
        self.pairs.extend(other.pairs);
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Count of pairs per provenance.
    pub fn provenance_counts(&self) -> HashMap<Provenance, usize> {
        let mut m = HashMap::new();
        for p in &self.pairs {
            *m.entry(p.provenance).or_insert(0) += 1;
        }
        m
    }

    /// Count of pairs per seed template.
    pub fn template_counts(&self) -> HashMap<String, usize> {
        let mut m = HashMap::new();
        for p in &self.pairs {
            *m.entry(p.template_id.clone()).or_insert(0) += 1;
        }
        m
    }

    /// Remove exact duplicates (same lemmatized NL and same SQL text),
    /// keeping first occurrences. Returns the number removed.
    pub fn dedup(&mut self) -> usize {
        let mut seen = std::collections::HashSet::new();
        let before = self.pairs.len();
        self.pairs.retain(|p| {
            let key = (
                if p.nl_lemmas.is_empty() {
                    p.nl.to_lowercase()
                } else {
                    p.nl_lemmas.join(" ")
                },
                p.sql_text(),
            );
            seen.insert(key)
        });
        before - self.pairs.len()
    }

    /// A human-readable summary line.
    pub fn summary(&self) -> String {
        let counts = self.provenance_counts();
        let fmt_count = |p: Provenance| counts.get(&p).copied().unwrap_or(0);
        format!(
            "{} pairs (seed {}, paraphrased {}, dropped {}, comparative {}, manual {})",
            self.len(),
            fmt_count(Provenance::Seed),
            fmt_count(Provenance::Paraphrased),
            fmt_count(Provenance::Dropped),
            fmt_count(Provenance::Comparative),
            fmt_count(Provenance::Manual),
        )
    }

    /// Iterate over `(lemmatized NL, SQL text)` string pairs, the format
    /// consumed by translation models.
    pub fn text_pairs(&self) -> impl Iterator<Item = (String, String)> + '_ {
        self.pairs.iter().map(|p| {
            let nl = if p.nl_lemmas.is_empty() {
                p.nl.to_lowercase()
            } else {
                p.nl_lemmas.join(" ")
            };
            (nl, p.sql_text())
        })
    }
}

impl IntoIterator for TrainingCorpus {
    type Item = TrainingPair;
    type IntoIter = std::vec::IntoIter<TrainingPair>;

    fn into_iter(self) -> Self::IntoIter {
        self.pairs.into_iter()
    }
}

impl<'a> IntoIterator for &'a TrainingCorpus {
    type Item = &'a TrainingPair;
    type IntoIter = std::slice::Iter<'a, TrainingPair>;

    fn into_iter(self) -> Self::IntoIter {
        self.pairs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbpal_sql::parse_query;

    fn pair(nl: &str, sql: &str, prov: Provenance) -> TrainingPair {
        TrainingPair::new(nl, parse_query(sql).unwrap(), "t1", prov)
    }

    #[test]
    fn provenance_counts() {
        let mut c = TrainingCorpus::new();
        c.push(pair("a", "SELECT a FROM t", Provenance::Seed));
        c.push(pair("b", "SELECT a FROM t", Provenance::Seed));
        c.push(pair("c", "SELECT a FROM t", Provenance::Paraphrased));
        let counts = c.provenance_counts();
        assert_eq!(counts[&Provenance::Seed], 2);
        assert_eq!(counts[&Provenance::Paraphrased], 1);
    }

    #[test]
    fn dedup_removes_exact_duplicates() {
        let mut c = TrainingCorpus::new();
        c.push(pair("show a", "SELECT a FROM t", Provenance::Seed));
        c.push(pair("Show A", "SELECT a FROM t", Provenance::Paraphrased));
        c.push(pair("show b", "SELECT a FROM t", Provenance::Seed));
        assert_eq!(c.dedup(), 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn dedup_respects_lemmas_when_present() {
        let mut c = TrainingCorpus::new();
        let mut p1 = pair("shows a", "SELECT a FROM t", Provenance::Seed);
        p1.nl_lemmas = vec!["show".into(), "a".into()];
        let mut p2 = pair("showed a", "SELECT a FROM t", Provenance::Seed);
        p2.nl_lemmas = vec!["show".into(), "a".into()];
        c.push(p1);
        c.push(p2);
        assert_eq!(c.dedup(), 1);
    }

    #[test]
    fn text_pairs_prefer_lemmas() {
        let mut p = pair("Shows the A", "SELECT a FROM t", Provenance::Seed);
        p.nl_lemmas = vec!["show".into(), "the".into(), "a".into()];
        let c = TrainingCorpus::from_pairs(vec![p]);
        let (nl, sql) = c.text_pairs().next().unwrap();
        assert_eq!(nl, "show the a");
        assert_eq!(sql, "SELECT a FROM t");
    }

    #[test]
    fn merge_extends() {
        let mut a =
            TrainingCorpus::from_pairs(vec![pair("x", "SELECT a FROM t", Provenance::Seed)]);
        let b = TrainingCorpus::from_pairs(vec![pair("y", "SELECT a FROM t", Provenance::Manual)]);
        a.extend(b);
        assert_eq!(a.len(), 2);
        assert!(a.summary().contains("manual 1"));
    }
}
