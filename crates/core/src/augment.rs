//! Data augmentation: paraphrasing, word dropout, and domain-specific
//! comparatives (paper §3.2).

use crate::{GenerationConfig, Provenance, TrainingCorpus, TrainingPair};
use dbpal_nlp::{tokenize, ComparativeDictionary, ComparativeSense, ParaphraseStore, PosTagger};
use dbpal_schema::{Schema, SemanticDomain};
use dbpal_sql::{CmpOp, Pred, Scalar};
use dbpal_util::{Rng, SliceRandom};

/// The augmentation engine. Produces additional pairs from a seed corpus;
/// it never mutates the input pairs.
pub struct Augmenter<'a> {
    config: &'a GenerationConfig,
    schema: &'a Schema,
    store: ParaphraseStore,
    comparatives: ComparativeDictionary,
    tagger: PosTagger,
    rng: Rng,
}

impl<'a> Augmenter<'a> {
    /// Create an augmenter for a schema and configuration.
    pub fn new(schema: &'a Schema, config: &'a GenerationConfig) -> Self {
        Augmenter {
            config,
            schema,
            store: ParaphraseStore::new(),
            comparatives: ComparativeDictionary::new(),
            tagger: PosTagger::new(),
            rng: Rng::seed_from_u64(config.seed ^ 0xA0A0_A0A0),
        }
    }

    /// Run all augmentation steps over a corpus, returning the additions.
    ///
    /// Pairs are fanned out across `config.threads` workers in fixed-size
    /// chunks; every pair draws from its own RNG stream keyed by its
    /// stable corpus position, and chunk results concatenate in input
    /// order, so the output is byte-identical for a given seed regardless
    /// of the worker count.
    pub fn augment(&self, corpus: &TrainingCorpus) -> Vec<TrainingPair> {
        const CHUNK: usize = 32;
        let chunks: Vec<&[TrainingPair]> = corpus.pairs().chunks(CHUNK).collect();
        let par = &self.config.par;
        let shards = par.map_indexed(&chunks, self.config.effective_threads(), |ci, chunk| {
            let mut additions = Vec::new();
            for (j, pair) in chunk.iter().enumerate() {
                let mut rng =
                    Rng::for_stream(self.config.seed ^ 0xA0A0_A0A0, (ci * CHUNK + j) as u64);
                additions.extend(self.paraphrase_with(pair, &mut rng));
                additions.extend(self.drop_words_with(pair, &mut rng));
                additions.extend(self.comparative_variants_with(pair, &mut rng));
            }
            additions
        });
        shards.into_iter().flatten().collect()
    }

    /// Automatic paraphrasing (§3.2.1): replace random subclauses of size
    /// up to `size_para` with up to `num_para` paraphrases from the store.
    pub fn paraphrase(&mut self, pair: &TrainingPair) -> Vec<TrainingPair> {
        let mut rng = self.rng.clone();
        let out = self.paraphrase_with(pair, &mut rng);
        self.rng = rng;
        out
    }

    fn paraphrase_with(&self, pair: &TrainingPair, rng: &mut Rng) -> Vec<TrainingPair> {
        if self.config.num_para == 0 {
            return Vec::new();
        }
        let tokens = tokenize(&pair.nl);
        let mut out = Vec::new();
        // Collect candidate spans (start, len) whose phrase is in the store.
        let mut spans: Vec<(usize, usize)> = Vec::new();
        for n in 1..=self.config.size_para.max(1) {
            if n > tokens.len() {
                break;
            }
            for start in 0..=tokens.len() - n {
                if tokens[start..start + n].iter().any(|t| t.starts_with('@')) {
                    continue;
                }
                let phrase = tokens[start..start + n].join(" ");
                if self.store.contains(&phrase) {
                    spans.push((start, n));
                }
            }
        }
        spans.shuffle(rng);
        for (start, n) in spans {
            let phrase = tokens[start..start + n].join(" ");
            let mut alternatives = self.store.top(
                &phrase,
                self.config.num_para,
                self.config.paraphrase_min_quality,
            );
            // POS-aware filtering (§3.2.3 extension): the replacement's
            // leading word must belong to the same coarse word class as
            // the phrase it replaces, rejecting category-crossing swaps
            // such as verb → preposition.
            if self.config.pos_aware_paraphrasing {
                let original_tag = self.tagger.tag(&tokens[start]);
                alternatives.retain(|alt| {
                    let first = alt.phrase.split(' ').next().unwrap_or(alt.phrase);
                    self.tagger.tag(first) == original_tag
                });
            }
            for alt in alternatives {
                let mut new_tokens = Vec::with_capacity(tokens.len());
                new_tokens.extend_from_slice(&tokens[..start]);
                new_tokens.extend(alt.phrase.split(' ').map(str::to_string));
                new_tokens.extend_from_slice(&tokens[start + n..]);
                out.push(TrainingPair::new(
                    new_tokens.join(" "),
                    pair.sql.clone(),
                    pair.template_id.clone(),
                    Provenance::Paraphrased,
                ));
            }
        }
        out
    }

    /// Missing-information dropout (§3.2.2): with probability
    /// `rand_drop_p`, emit up to `num_missing` duplicates with one or two
    /// random words removed. Placeholders are never dropped, and when
    /// `pos_gated_dropout` is set only function-word classes are eligible
    /// (the §3.2.3 extension).
    pub fn drop_words(&mut self, pair: &TrainingPair) -> Vec<TrainingPair> {
        let mut rng = self.rng.clone();
        let out = self.drop_words_with(pair, &mut rng);
        self.rng = rng;
        out
    }

    fn drop_words_with(&self, pair: &TrainingPair, rng: &mut Rng) -> Vec<TrainingPair> {
        if self.config.num_missing == 0 || !rng.gen_bool(self.config.rand_drop_p) {
            return Vec::new();
        }
        let tokens = tokenize(&pair.nl);
        if tokens.len() < 3 {
            return Vec::new();
        }
        let eligible: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.starts_with('@'))
            .filter(|(_, t)| !self.config.pos_gated_dropout || self.tagger.tag(t).is_droppable())
            .map(|(i, _)| i)
            .collect();
        if eligible.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        for _ in 0..self.config.num_missing {
            let n_drop = if eligible.len() > 3 && rng.gen_bool(0.3) {
                2
            } else {
                1
            };
            let mut drop: Vec<usize> = eligible.choose_multiple(rng, n_drop).copied().collect();
            drop.sort_unstable();
            let new_tokens: Vec<String> = tokens
                .iter()
                .enumerate()
                .filter(|(i, _)| !drop.contains(i))
                .map(|(_, t)| t.clone())
                .collect();
            if new_tokens.len() == tokens.len() {
                continue;
            }
            out.push(TrainingPair::new(
                new_tokens.join(" "),
                pair.sql.clone(),
                pair.template_id.clone(),
                Provenance::Dropped,
            ));
        }
        out
    }

    /// Comparative/superlative substitution (§3.2.3): replace generic
    /// comparative phrases with domain-specific ones when the filtered
    /// column's domain is known, and additionally elide the attribute
    /// name before a domain phrase ("age older than @AGE" → "older than
    /// @AGE"), modelling implicit attribute references.
    pub fn comparative_variants(&mut self, pair: &TrainingPair) -> Vec<TrainingPair> {
        let mut rng = self.rng.clone();
        let out = self.comparative_variants_with(pair, &mut rng);
        self.rng = rng;
        out
    }

    fn comparative_variants_with(&self, pair: &TrainingPair, rng: &mut Rng) -> Vec<TrainingPair> {
        let Some(domain) = self.single_comparison_domain(pair) else {
            return Vec::new();
        };
        if domain == SemanticDomain::Generic {
            return Vec::new();
        }
        let mut out = Vec::new();
        let nl = pair.nl.to_lowercase();
        // Word-boundary containment: "over" must not match inside
        // "aged over"-style phrases that are already domain-specific.
        let has_phrase = |text: &str, phrase: &str| {
            text.split(' ')
                .collect::<Vec<_>>()
                .windows(phrase.split(' ').count())
                .any(|w| w.join(" ") == phrase)
        };
        for sense in [ComparativeSense::Greater, ComparativeSense::Less] {
            let domain_phrases_all: Vec<&str> =
                self.comparatives.domain_phrases(domain, sense).to_vec();
            for generic in self.comparatives.generic_phrases(sense) {
                if !has_phrase(&nl, generic) {
                    continue;
                }
                // Skip when the generic phrase only occurs inside an
                // already-domain-specific phrase.
                if domain_phrases_all
                    .iter()
                    .any(|dp| dp.contains(generic) && has_phrase(&nl, dp))
                {
                    continue;
                }
                let domain_phrases = self.comparatives.domain_phrases(domain, sense);
                if let Some(dp) = domain_phrases.choose(rng) {
                    let swapped = nl.replacen(generic, dp, 1);
                    out.push(TrainingPair::new(
                        swapped.clone(),
                        pair.sql.clone(),
                        pair.template_id.clone(),
                        Provenance::Comparative,
                    ));
                    // Attribute elision: drop the word immediately before
                    // the domain phrase when it is a plain word.
                    let tokens = tokenize(&swapped);
                    let first_dp = dp.split(' ').next().unwrap_or(dp);
                    if let Some(pos) = tokens.iter().position(|t| t == first_dp) {
                        if pos > 0 && !tokens[pos - 1].starts_with('@') {
                            let mut elided = tokens.clone();
                            elided.remove(pos - 1);
                            out.push(TrainingPair::new(
                                elided.join(" "),
                                pair.sql.clone(),
                                pair.template_id.clone(),
                                Provenance::Comparative,
                            ));
                        }
                    }
                }
            }
        }
        out
    }

    /// The domain of the column in the pair's (single) inequality
    /// comparison, if there is exactly one.
    fn single_comparison_domain(&self, pair: &TrainingPair) -> Option<SemanticDomain> {
        let mut found: Vec<SemanticDomain> = Vec::new();
        if let Some(p) = &pair.sql.where_pred {
            self.collect_inequality_domains(p, pair.sql.from.tables(), &mut found);
        }
        if found.len() == 1 {
            Some(found[0])
        } else {
            None
        }
    }

    fn collect_inequality_domains(
        &self,
        p: &Pred,
        tables: &[String],
        out: &mut Vec<SemanticDomain>,
    ) {
        match p {
            Pred::And(ps) | Pred::Or(ps) => {
                ps.iter()
                    .for_each(|p| self.collect_inequality_domains(p, tables, out));
            }
            Pred::Not(p) => self.collect_inequality_domains(p, tables, out),
            Pred::Compare {
                left: Scalar::Column(c),
                op: CmpOp::Gt | CmpOp::Lt | CmpOp::GtEq | CmpOp::LtEq,
                ..
            } => {
                // Resolve the column in the FROM tables (or its qualifier).
                let table_names: Vec<&str> = match &c.table {
                    Some(t) => vec![t.as_str()],
                    None => tables.iter().map(String::as_str).collect(),
                };
                for t in table_names {
                    if let Ok(cid) = self.schema.column_id(t, &c.column) {
                        out.push(self.schema.column(cid).domain());
                        return;
                    }
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbpal_schema::{SchemaBuilder, SqlType};
    use dbpal_sql::parse_query;

    fn schema() -> Schema {
        SchemaBuilder::new("hospital")
            .table("patients", |t| {
                t.column("name", SqlType::Text)
                    .column_with("age", SqlType::Integer, |c| c.domain(SemanticDomain::Age))
                    .column("disease", SqlType::Text)
            })
            .build()
            .unwrap()
    }

    fn pair(nl: &str, sql: &str) -> TrainingPair {
        TrainingPair::new(nl, parse_query(sql).unwrap(), "t", Provenance::Seed)
    }

    #[test]
    fn paraphrases_known_unigrams() {
        let schema = schema();
        let config = GenerationConfig::default();
        let mut aug = Augmenter::new(&schema, &config);
        let p = pair(
            "show the name of all patients with age @AGE",
            "SELECT name FROM patients WHERE age = @AGE",
        );
        let out = aug.paraphrase(&p);
        assert!(!out.is_empty());
        // The paper's example: "Show the names..." -> "Display the names...".
        assert!(
            out.iter().any(|q| q.nl.starts_with("display")),
            "no display paraphrase in {:?}",
            out.iter().map(|p| &p.nl).collect::<Vec<_>>()
        );
        for q in &out {
            assert_eq!(q.provenance, Provenance::Paraphrased);
            assert_eq!(q.sql, p.sql, "paraphrasing must not change the SQL");
            assert!(q.nl.contains("@AGE"), "placeholder lost in `{}`", q.nl);
        }
    }

    #[test]
    fn num_para_zero_disables_paraphrasing() {
        let schema = schema();
        let config = GenerationConfig {
            num_para: 0,
            ..Default::default()
        };
        let mut aug = Augmenter::new(&schema, &config);
        let p = pair("show the name", "SELECT name FROM patients");
        assert!(aug.paraphrase(&p).is_empty());
    }

    #[test]
    fn quality_floor_filters_noise() {
        let schema = schema();
        let strict = GenerationConfig {
            paraphrase_min_quality: 0.9,
            num_para: 10,
            ..Default::default()
        };
        let loose = GenerationConfig {
            paraphrase_min_quality: 0.0,
            ..strict.clone()
        };
        let p = pair("show the name of all patients", "SELECT name FROM patients");
        let n_strict = Augmenter::new(&schema, &strict).paraphrase(&p).len();
        let n_loose = Augmenter::new(&schema, &loose).paraphrase(&p).len();
        assert!(n_loose > n_strict);
    }

    #[test]
    fn bigram_paraphrases_respect_size_para() {
        let schema = schema();
        let uni = GenerationConfig {
            size_para: 1,
            num_para: 10,
            paraphrase_min_quality: 0.0,
            ..Default::default()
        };
        let bi = GenerationConfig {
            size_para: 2,
            ..uni.clone()
        };
        // "how many" is only in the store as a bigram.
        let p = pair(
            "how many patients are there",
            "SELECT COUNT(*) FROM patients",
        );
        let uni_out = Augmenter::new(&schema, &uni).paraphrase(&p);
        let bi_out = Augmenter::new(&schema, &bi).paraphrase(&p);
        let has_bigram_swap =
            |v: &[TrainingPair]| v.iter().any(|q| q.nl.contains("what number of"));
        assert!(!has_bigram_swap(&uni_out));
        assert!(has_bigram_swap(&bi_out));
    }

    #[test]
    fn pos_aware_paraphrasing_rejects_class_crossing_swaps() {
        let schema = schema();
        let plain = GenerationConfig {
            num_para: 10,
            paraphrase_min_quality: 0.0,
            ..Default::default()
        };
        let pos_aware = GenerationConfig {
            pos_aware_paraphrasing: true,
            ..plain.clone()
        };
        // "show" has verb paraphrases (display, list) and the noisy
        // multi-word "count off"-style entries; POS filtering must never
        // *add* alternatives, and the surviving ones must stay verbs.
        let p = pair("show the name of all patients", "SELECT name FROM patients");
        let plain_out = Augmenter::new(&schema, &plain).paraphrase(&p);
        let pos_out = Augmenter::new(&schema, &pos_aware).paraphrase(&p);
        assert!(pos_out.len() <= plain_out.len());
        assert!(pos_out.iter().any(|q| q.nl.starts_with("display")));
    }

    #[test]
    fn dropout_never_removes_placeholders() {
        let schema = schema();
        let config = GenerationConfig {
            rand_drop_p: 1.0,
            num_missing: 4,
            ..Default::default()
        };
        let mut aug = Augmenter::new(&schema, &config);
        let p = pair(
            "show the name of patients with age @AGE",
            "SELECT name FROM patients WHERE age = @AGE",
        );
        let out = aug.drop_words(&p);
        assert!(!out.is_empty());
        for q in &out {
            assert!(q.nl.contains("@AGE"), "placeholder dropped in `{}`", q.nl);
            assert!(tokenize(&q.nl).len() < tokenize(&p.nl).len());
            assert_eq!(q.provenance, Provenance::Dropped);
        }
    }

    #[test]
    fn dropout_probability_zero_is_silent() {
        let schema = schema();
        let config = GenerationConfig {
            rand_drop_p: 0.0,
            ..Default::default()
        };
        let mut aug = Augmenter::new(&schema, &config);
        let p = pair("show the name of patients", "SELECT name FROM patients");
        assert!(aug.drop_words(&p).is_empty());
    }

    #[test]
    fn pos_gated_dropout_only_drops_function_words() {
        let schema = schema();
        let config = GenerationConfig {
            rand_drop_p: 1.0,
            num_missing: 8,
            pos_gated_dropout: true,
            ..Default::default()
        };
        let mut aug = Augmenter::new(&schema, &config);
        let p = pair(
            "show the name of all patients with age @AGE",
            "SELECT name FROM patients WHERE age = @AGE",
        );
        for q in aug.drop_words(&p) {
            // Content words must survive.
            for w in ["name", "patients", "age"] {
                assert!(q.nl.contains(w), "content word {w} dropped in `{}`", q.nl);
            }
        }
    }

    #[test]
    fn comparative_substitution_uses_domain() {
        let schema = schema();
        let config = GenerationConfig::default();
        let mut aug = Augmenter::new(&schema, &config);
        let p = pair(
            "show the name of patients with age greater than @AGE",
            "SELECT name FROM patients WHERE age > @AGE",
        );
        let out = aug.comparative_variants(&p);
        assert!(
            out.iter().any(|q| {
                q.nl.contains("older than")
                    || q.nl.contains("above the age of")
                    || q.nl.contains("aged over")
            }),
            "no domain comparative in {:?}",
            out.iter().map(|p| &p.nl).collect::<Vec<_>>()
        );
        // Elision variant drops the attribute word: some output no
        // longer has "age" immediately before the inserted phrase.
        assert!(
            out.iter().any(|q| {
                let toks = tokenize(&q.nl);
                toks.windows(2).all(|w| {
                    !(w[0] == "age" && ["older", "above", "aged", "over"].contains(&w[1].as_str()))
                })
            }),
            "no elided variant in {:?}",
            out.iter().map(|p| &p.nl).collect::<Vec<_>>()
        );
    }

    #[test]
    fn comparative_substitution_skips_generic_domains() {
        let schema = SchemaBuilder::new("s")
            .table("t", |t| {
                t.column("a", SqlType::Text).column("n", SqlType::Integer)
            })
            .build()
            .unwrap();
        let config = GenerationConfig::default();
        let mut aug = Augmenter::new(&schema, &config);
        let p = pair(
            "show a of t with n greater than @N",
            "SELECT a FROM t WHERE n > @N",
        );
        assert!(aug.comparative_variants(&p).is_empty());
    }

    #[test]
    fn full_augment_marks_provenance() {
        let schema = schema();
        let config = GenerationConfig {
            rand_drop_p: 1.0,
            ..Default::default()
        };
        let aug = Augmenter::new(&schema, &config);
        let corpus = TrainingCorpus::from_pairs(vec![pair(
            "show the name of all patients with age greater than @AGE",
            "SELECT name FROM patients WHERE age > @AGE",
        )]);
        let out = aug.augment(&corpus);
        let provs: std::collections::HashSet<_> = out.iter().map(|p| p.provenance).collect();
        assert!(provs.contains(&Provenance::Paraphrased));
        assert!(provs.contains(&Provenance::Dropped));
        assert!(provs.contains(&Provenance::Comparative));
    }
}
