//! Hyperparameter optimization of the data-generation process.
//!
//! "In DBPal, we use a random search approach to automatically tune the
//! hyperparameters ϕ of the function Generate. For each candidate set of
//! parameters, the entire system pipeline, including data generation and
//! model training (labeled Generate(D, T, ϕ)), is completed and the
//! accuracy is returned." (paper §3.3)
//!
//! The module is generic over the evaluation function: callers supply a
//! closure that generates data for a candidate ϕ, trains their model, and
//! returns accuracy on the tuning workload T.

use crate::GenerationConfig;
use dbpal_util::Rng;

/// One trial of the search: a candidate ϕ and its measured accuracy.
#[derive(Debug, Clone)]
pub struct TrialResult {
    /// The candidate configuration.
    pub config: GenerationConfig,
    /// Accuracy of the model trained on data generated with `config`.
    pub accuracy: f64,
}

/// Random search over [`GenerationConfig`] candidates (§3.3; the paper
/// samples 68 candidate sets for Figure 4).
#[derive(Debug, Clone)]
pub struct RandomSearch {
    /// Number of candidate configurations to draw.
    pub trials: usize,
    /// RNG seed for candidate sampling.
    pub seed: u64,
}

impl RandomSearch {
    /// Create a random search with the given trial budget.
    pub fn new(trials: usize, seed: u64) -> Self {
        RandomSearch { trials, seed }
    }

    /// Run the search, invoking `generate` (the paper's
    /// `Generate(D, T, ϕ)`) for every sampled candidate.
    pub fn run(&self, mut generate: impl FnMut(&GenerationConfig) -> f64) -> Vec<TrialResult> {
        let mut rng = Rng::seed_from_u64(self.seed);
        let mut results = Vec::with_capacity(self.trials);
        for _ in 0..self.trials {
            let config = GenerationConfig::sample(&mut rng);
            let accuracy = generate(&config);
            results.push(TrialResult { config, accuracy });
        }
        results
    }

    /// Parallel variant of [`RandomSearch::run`]: trials are independent
    /// (each runs the full generate → train → evaluate loop), so the
    /// sweep parallelizes perfectly across `threads` workers. The result
    /// order and contents are identical to the sequential run.
    pub fn run_parallel(
        &self,
        threads: usize,
        generate: impl Fn(&GenerationConfig) -> f64 + Sync,
    ) -> Vec<TrialResult> {
        let mut rng = Rng::seed_from_u64(self.seed);
        let configs: Vec<GenerationConfig> = (0..self.trials)
            .map(|_| GenerationConfig::sample(&mut rng))
            .collect();
        let accuracies = dbpal_util::pooled_map_indexed(&configs, threads, |_, c| generate(c));
        configs
            .into_iter()
            .zip(accuracies)
            .map(|(config, accuracy)| TrialResult { config, accuracy })
            .collect()
    }
}

/// Exhaustive grid search over a small explicit grid — the alternative
/// the paper contrasts with random search ("grid search ... searches the
/// specified subset of hyperparameters ... exhaustively").
#[derive(Debug, Clone)]
pub struct GridSearch {
    /// Values tried for `num_para`.
    pub num_para: Vec<usize>,
    /// Values tried for `rand_drop_p`.
    pub rand_drop_p: Vec<f64>,
    /// Values tried for `paraphrase_min_quality`.
    pub min_quality: Vec<f32>,
}

impl Default for GridSearch {
    fn default() -> Self {
        GridSearch {
            num_para: vec![0, 2, 4],
            rand_drop_p: vec![0.0, 0.3, 0.6],
            min_quality: vec![0.0, 0.5, 0.8],
        }
    }
}

impl GridSearch {
    /// Number of grid points.
    pub fn size(&self) -> usize {
        self.num_para.len() * self.rand_drop_p.len() * self.min_quality.len()
    }

    /// Run the exhaustive search from a base configuration.
    pub fn run(
        &self,
        base: &GenerationConfig,
        mut generate: impl FnMut(&GenerationConfig) -> f64,
    ) -> Vec<TrialResult> {
        let mut results = Vec::with_capacity(self.size());
        for &np in &self.num_para {
            for &dp in &self.rand_drop_p {
                for &mq in &self.min_quality {
                    let mut config = base.clone();
                    config.num_para = np;
                    config.rand_drop_p = dp;
                    config.paraphrase_min_quality = mq;
                    let accuracy = generate(&config);
                    results.push(TrialResult { config, accuracy });
                }
            }
        }
        results
    }
}

/// The best trial by accuracy, if any.
pub fn best(results: &[TrialResult]) -> Option<&TrialResult> {
    results
        .iter()
        .max_by(|a, b| a.accuracy.total_cmp(&b.accuracy))
}

/// Summary statistics over trial accuracies: `(min, max, mean, stddev)`,
/// the numbers the paper reports for Figure 4 (worst 37.5%, best 55.5%,
/// mean 48.4%, σ 3.5%).
pub fn accuracy_stats(results: &[TrialResult]) -> (f64, f64, f64, f64) {
    if results.is_empty() {
        return (0.0, 0.0, 0.0, 0.0);
    }
    let accs: Vec<f64> = results.iter().map(|r| r.accuracy).collect();
    let min = accs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = accs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mean = accs.iter().sum::<f64>() / accs.len() as f64;
    let var = accs.iter().map(|a| (a - mean).powi(2)).sum::<f64>() / accs.len() as f64;
    (min, max, mean, var.sqrt())
}

/// Bucket accuracies into a histogram of `bins` equal-width bins over
/// `[min, max]` (Figure 4's rendering). Returns `(bin lower edge, count)`.
pub fn accuracy_histogram(results: &[TrialResult], bins: usize) -> Vec<(f64, usize)> {
    if results.is_empty() || bins == 0 {
        return Vec::new();
    }
    let (min, max, _, _) = accuracy_stats(results);
    let width = if max > min {
        (max - min) / bins as f64
    } else {
        1.0
    };
    let mut hist = vec![0usize; bins];
    for r in results {
        let mut b = ((r.accuracy - min) / width) as usize;
        if b >= bins {
            b = bins - 1;
        }
        hist[b] += 1;
    }
    hist.into_iter()
        .enumerate()
        .map(|(i, count)| (min + i as f64 * width, count))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic evaluation surface: prefers moderate paraphrasing and
    /// moderate dropout, like the real trade-off.
    fn surface(c: &GenerationConfig) -> f64 {
        let para = 1.0 - ((c.num_para as f64) - 3.0).abs() / 6.0;
        let drop = 1.0 - (c.rand_drop_p - 0.3).abs();
        (para + drop) / 2.0
    }

    #[test]
    fn random_search_runs_all_trials() {
        let search = RandomSearch::new(20, 42);
        let results = search.run(surface);
        assert_eq!(results.len(), 20);
    }

    #[test]
    fn random_search_is_deterministic_per_seed() {
        let a = RandomSearch::new(10, 7).run(surface);
        let b = RandomSearch::new(10, 7).run(surface);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.config, y.config);
            assert_eq!(x.accuracy, y.accuracy);
        }
    }

    #[test]
    fn parallel_run_matches_sequential() {
        let sequential = RandomSearch::new(12, 5).run(surface);
        let parallel = RandomSearch::new(12, 5).run_parallel(4, surface);
        assert_eq!(sequential.len(), parallel.len());
        for (a, b) in sequential.iter().zip(&parallel) {
            assert_eq!(a.config, b.config);
            assert!((a.accuracy - b.accuracy).abs() < 1e-12);
        }
    }

    #[test]
    fn best_finds_maximum() {
        let results = RandomSearch::new(30, 1).run(surface);
        let b = best(&results).unwrap();
        assert!(results.iter().all(|r| r.accuracy <= b.accuracy));
    }

    #[test]
    fn grid_search_covers_the_grid() {
        let grid = GridSearch::default();
        let base = GenerationConfig::default();
        let results = grid.run(&base, surface);
        assert_eq!(results.len(), grid.size());
        // All points distinct.
        let distinct: std::collections::HashSet<String> = results
            .iter()
            .map(|r| {
                format!(
                    "{}-{}-{}",
                    r.config.num_para, r.config.rand_drop_p, r.config.paraphrase_min_quality
                )
            })
            .collect();
        assert_eq!(distinct.len(), results.len());
    }

    #[test]
    fn stats_are_consistent() {
        let results = RandomSearch::new(50, 3).run(surface);
        let (min, max, mean, std) = accuracy_stats(&results);
        assert!(min <= mean && mean <= max);
        assert!(std >= 0.0);
    }

    #[test]
    fn histogram_counts_everything() {
        let results = RandomSearch::new(68, 4).run(surface);
        let hist = accuracy_histogram(&results, 10);
        assert_eq!(hist.len(), 10);
        assert_eq!(hist.iter().map(|(_, c)| c).sum::<usize>(), 68);
    }

    #[test]
    fn empty_results_handled() {
        assert_eq!(accuracy_stats(&[]), (0.0, 0.0, 0.0, 0.0));
        assert!(accuracy_histogram(&[], 10).is_empty());
        assert!(best(&[]).is_none());
    }
}
