#![warn(missing_docs)]
//! The DBPal training pipeline: the paper's primary contribution.
//!
//! DBPal synthesizes NL→SQL training data from a database schema alone
//! using weak supervision (paper §1): seed templates are instantiated
//! against the schema ([`Generator`], §3.1), augmented for linguistic
//! robustness ([`Augmenter`], §3.2 — automatic paraphrasing, word
//! dropout, domain comparatives), and lemmatized (§2.2.3). The resulting
//! [`TrainingCorpus`] trains any pluggable [`TranslationModel`] (§3.4).
//! A [`RandomSearch`] over [`GenerationConfig`] tunes the generation
//! parameters ϕ for a target schema (§3.3).
//!
//! # Quickstart
//!
//! ```
//! use dbpal_core::{GenerationConfig, TrainingPipeline};
//! use dbpal_schema::{SchemaBuilder, SqlType, SemanticDomain};
//!
//! let schema = SchemaBuilder::new("hospital")
//!     .table("patients", |t| {
//!         t.column("name", SqlType::Text)
//!             .column_with("age", SqlType::Integer, |c| c.domain(SemanticDomain::Age))
//!             .column("disease", SqlType::Text)
//!     })
//!     .build()
//!     .unwrap();
//!
//! let pipeline = TrainingPipeline::new(GenerationConfig::small());
//! let corpus = pipeline.generate(&schema);
//! assert!(corpus.len() > 100);
//! ```

mod augment;
mod config;
mod generator;
mod io;
mod lexicons;
mod model_api;
mod optimizer;
mod pair;
mod pipeline;
pub mod stream;
pub mod templates;

pub use augment::Augmenter;
pub use config::GenerationConfig;
pub use dbpal_analyze::AnalyzerPolicy;
pub use generator::{Generator, GeneratorStats};
pub use io::{
    corpus_from_json, corpus_from_jsonl, corpus_to_json, corpus_to_tsv, manual_corpus_from_tsv,
    pair_to_jsonl, CorpusIoError,
};
pub use lexicons::{
    agg_phrases, pick, BETWEEN_PHRASES, DISTINCT_PHRASES, EQ_PHRASES, EXISTS_PHRASES, FROM_PHRASES,
    GROUP_PHRASES, LIKE_PHRASES, NEQ_PHRASES, NULL_PHRASES, ORDER_ASC_PHRASES, ORDER_DESC_PHRASES,
    SELECT_PHRASES, WHERE_PHRASES,
};
pub use model_api::{evaluate_exact, EvalExample, TrainOptions, TranslationModel};
pub use optimizer::{
    accuracy_histogram, accuracy_stats, best, GridSearch, RandomSearch, TrialResult,
};
pub use pair::{Provenance, TrainingCorpus, TrainingPair};
pub use pipeline::{
    analyze_pairs, AnalyzerReport, PipelineReport, StageTimings, TrainingPipeline,
    SCORE_ERROR_WEIGHT,
};
pub use stream::{
    provenance_split_weight, AdmitOutcome, ChunkReport, CorpusSink, DedupPolicy, DigestSink,
    JsonlSink, MemorySink, SinkError, SplitSink, StreamDedup, StreamError, StreamOptions,
    StreamReport,
};
pub use templates::{catalog, catalog_subset, PatternCategory, QueryClass, SeedTemplate};
