//! The pluggable model interface.
//!
//! "DBPal is fully pluggable and is designed to improve the accuracy of
//! any existing NL2SQL deep learning model" (paper §3.4). This module
//! defines the contract a model must satisfy to be trained by the
//! pipeline, plus the evaluation helpers shared by the benchmarks.

use crate::TrainingCorpus;
use dbpal_nlp::Lemmatizer;
use dbpal_sql::{exact_set_match, Query};
use dbpal_util::intern::{Sym, Vocab};

/// Options controlling a training run.
#[derive(Debug, Clone)]
pub struct TrainOptions {
    /// Number of passes over the corpus.
    pub epochs: usize,
    /// RNG seed for parameter initialization and shuffling.
    pub seed: u64,
    /// Optional cap on the number of training pairs (random prefix after
    /// shuffling); used to scale the Figure 4 sweep down to laptop time.
    pub max_pairs: Option<usize>,
    /// Print progress to stderr.
    pub verbose: bool,
}

impl Default for TrainOptions {
    fn default() -> Self {
        TrainOptions {
            epochs: 8,
            seed: 13,
            max_pairs: None,
            verbose: false,
        }
    }
}

impl TrainOptions {
    /// A fast configuration for unit tests.
    pub fn fast() -> Self {
        TrainOptions {
            epochs: 2,
            max_pairs: Some(500),
            ..Default::default()
        }
    }
}

/// A pluggable NL→SQL translation model.
///
/// Models consume *lemmatized, anonymized* NL token sequences (the
/// runtime's pre-processing output, §4.1) and produce SQL queries with
/// placeholders (the post-processor restores constants and expands
/// `@JOIN`).
pub trait TranslationModel {
    /// Short human-readable model name.
    fn name(&self) -> &'static str;

    /// Train (or re-train) on a corpus. Implementations must reset any
    /// previous state.
    fn train(&mut self, corpus: &TrainingCorpus, opts: &TrainOptions);

    /// Translate a lemmatized NL token sequence into SQL. `None` when the
    /// model cannot produce a well-formed query.
    fn translate(&self, nl_lemmas: &[String]) -> Option<Query>;

    /// Translate an interned lemma sequence (ids issued by `vocab`).
    ///
    /// The default materializes the lemmas and delegates to
    /// [`TranslationModel::translate`], so every model works unchanged;
    /// models on the serving hot path override this to match on `Sym`
    /// ids directly and skip string construction entirely. Must agree
    /// with `translate` on the resolved token sequence.
    fn translate_syms(&self, lemmas: &[Sym], vocab: &Vocab) -> Option<Query> {
        let strings: Vec<String> = lemmas
            .iter()
            .map(|&s| String::from(vocab.resolve(s)))
            .collect();
        self.translate(&strings)
    }
}

/// One evaluation example: a (pre-anonymized) NL question and its gold
/// SQL. The paper "evaluates on test sets with pre-anonymized values"
/// (§4.1), so `nl` contains `@PLACEHOLDER` tokens.
#[derive(Debug, Clone)]
pub struct EvalExample {
    /// The NL question (raw, not lemmatized).
    pub nl: String,
    /// Gold SQL with placeholders.
    pub gold: Query,
    /// Equivalent alternative gold queries, if any (the Patients
    /// benchmark "manually enumerated possible semantically equivalent
    /// SQL query answers", §6.2.1).
    pub alternatives: Vec<Query>,
}

impl EvalExample {
    /// A simple example with no alternatives.
    pub fn new(nl: impl Into<String>, gold: Query) -> Self {
        EvalExample {
            nl: nl.into(),
            gold,
            alternatives: Vec::new(),
        }
    }

    /// Whether a predicted query matches the gold (or any enumerated
    /// alternative) under exact set match.
    pub fn matches(&self, predicted: &Query) -> bool {
        exact_set_match(predicted, &self.gold)
            || self
                .alternatives
                .iter()
                .any(|alt| exact_set_match(predicted, alt))
    }
}

/// Exact-set-match accuracy of a model over a workload.
///
/// NL inputs are lemmatized with the same [`Lemmatizer`] the pipeline
/// uses, mirroring the runtime pre-processing.
pub fn evaluate_exact(model: &dyn TranslationModel, workload: &[EvalExample]) -> f64 {
    if workload.is_empty() {
        return 0.0;
    }
    let lemmatizer = Lemmatizer::new();
    let mut correct = 0usize;
    for ex in workload {
        let lemmas = lemmatizer.lemmatize_sentence(&ex.nl);
        if let Some(pred) = model.translate(&lemmas) {
            if ex.matches(&pred) {
                correct += 1;
            }
        }
    }
    correct as f64 / workload.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Provenance, TrainingPair};
    use dbpal_sql::parse_query;
    use std::collections::HashMap;

    /// A trivial lookup model for testing the API plumbing.
    struct Memorizer {
        table: HashMap<String, Query>,
    }

    impl TranslationModel for Memorizer {
        fn name(&self) -> &'static str {
            "memorizer"
        }

        fn train(&mut self, corpus: &TrainingCorpus, _opts: &TrainOptions) {
            self.table.clear();
            for (nl, sql) in corpus.text_pairs() {
                self.table.insert(nl, parse_query(&sql).unwrap());
            }
        }

        fn translate(&self, nl_lemmas: &[String]) -> Option<Query> {
            self.table.get(&nl_lemmas.join(" ")).cloned()
        }
    }

    fn corpus() -> TrainingCorpus {
        let lem = dbpal_nlp::Lemmatizer::new();
        let mut pairs = Vec::new();
        for (nl, sql) in [
            ("show the name of patients", "SELECT name FROM patients"),
            (
                "show the name of patients with age @AGE",
                "SELECT name FROM patients WHERE age = @AGE",
            ),
        ] {
            let mut p = TrainingPair::new(nl, parse_query(sql).unwrap(), "t", Provenance::Seed);
            p.nl_lemmas = lem.lemmatize_sentence(nl);
            pairs.push(p);
        }
        TrainingCorpus::from_pairs(pairs)
    }

    #[test]
    fn memorizer_round_trips_through_api() {
        let mut m = Memorizer {
            table: HashMap::new(),
        };
        m.train(&corpus(), &TrainOptions::fast());
        let workload = vec![
            EvalExample::new(
                "Shows the names of patients",
                parse_query("SELECT name FROM patients").unwrap(),
            ),
            EvalExample::new(
                "unknown question",
                parse_query("SELECT age FROM patients").unwrap(),
            ),
        ];
        // Lemmatization maps "Shows the names" onto the trained "show the
        // name"; the unknown question misses.
        let acc = evaluate_exact(&m, &workload);
        assert!((acc - 0.5).abs() < 1e-9, "accuracy {acc}");
    }

    #[test]
    fn alternatives_count_as_correct() {
        let gold = parse_query("SELECT name FROM patients ORDER BY age DESC LIMIT 1").unwrap();
        let alt =
            parse_query("SELECT name FROM patients WHERE age = (SELECT MAX(age) FROM patients)")
                .unwrap();
        let mut ex = EvalExample::new("who is the oldest patient", gold);
        ex.alternatives.push(alt.clone());
        assert!(ex.matches(&alt));
    }

    #[test]
    fn empty_workload_scores_zero() {
        let m = Memorizer {
            table: HashMap::new(),
        };
        assert_eq!(evaluate_exact(&m, &[]), 0.0);
    }
}
