//! Data instantiation: turning seed templates + a schema into NL–SQL pairs.
//!
//! "The schema information is then used to instantiate these templates
//! using table and attribute names. ... We therefore randomly sample from
//! the possible instances to get a good coverage of different queries and
//! to keep the number of instances per query template balanced." (paper
//! §3.1). Constants never appear: filters use `@PLACEHOLDER` tokens, and
//! join queries use the `@JOIN` FROM-clause placeholder (§5.1).

use crate::templates::{QueryClass, SeedTemplate};
use crate::{lexicons, GenerationConfig, Provenance, TrainingCorpus, TrainingPair};
use dbpal_nlp::{ComparativeDictionary, ComparativeSense};
use dbpal_schema::{Column, ColumnId, Schema, SemanticDomain, Table, TableId};
use dbpal_sql::{
    AggArg, AggFunc, CmpOp, ColumnRef, FromClause, OrderDir, OrderKey, Pred, Query, Scalar,
    SelectItem,
};
use dbpal_util::{Rng, SliceRandom};
use std::collections::{HashMap, HashSet};

/// The template-instantiation engine.
pub struct Generator<'a> {
    schema: &'a Schema,
    config: &'a GenerationConfig,
    comparatives: ComparativeDictionary,
    rng: Rng,
}

/// Instantiation counters for one generation run (surfaced through
/// [`crate::PipelineReport`]): pairs produced against the summed
/// per-template instance budgets, and where the sampling loop spent its
/// retries. A non-zero [`GeneratorStats::shortfall`] means some template
/// ran out of attempts (`budget * 4 + 8`) before filling its budget —
/// under-production is reported, never silent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GeneratorStats {
    /// Pairs emitted, including GROUP BY variants.
    pub produced: usize,
    /// Summed per-template instance budgets (GROUP BY variants are a
    /// bonus on top and do not count against a budget).
    pub budgeted: usize,
    /// Draws that could not instantiate because the schema lacked the
    /// required structure (e.g. no numeric column for an aggregate).
    pub failed_draws: u64,
    /// Draws rejected because the exact instance was already produced.
    pub duplicate_draws: u64,
    /// Templates whose attempt budget ran out before the instance
    /// budget was filled.
    pub exhausted_templates: usize,
    /// Total instances short of the summed budgets.
    pub shortfall: usize,
}

impl GeneratorStats {
    /// Total retried draws (failed + duplicate).
    pub fn retries(&self) -> u64 {
        self.failed_draws + self.duplicate_draws
    }

    /// Accumulate another shard's counters.
    fn absorb(&mut self, other: &GeneratorStats) {
        self.produced += other.produced;
        self.budgeted += other.budgeted;
        self.failed_draws += other.failed_draws;
        self.duplicate_draws += other.duplicate_draws;
        self.exhausted_templates += other.exhausted_templates;
        self.shortfall += other.shortfall;
    }
}

/// A rendered filter: its SQL predicate and NL phrase.
struct FilterParts {
    pred: Pred,
    nl: String,
}

impl<'a> Generator<'a> {
    /// Create a generator for a schema and configuration.
    pub fn new(schema: &'a Schema, config: &'a GenerationConfig) -> Self {
        Generator {
            schema,
            config,
            comparatives: ComparativeDictionary::new(),
            rng: Rng::seed_from_u64(config.seed),
        }
    }

    /// Generate the balanced seed corpus for a set of templates.
    ///
    /// Each template receives a per-template instance budget
    /// (`size_slot_fills`, multiplied by the class boosts of Table 1), and
    /// duplicate instances are rejected so no template can dominate.
    pub fn generate(&self, templates: &[SeedTemplate]) -> TrainingCorpus {
        self.generate_with_stats(templates).0
    }

    /// As [`Generator::generate`], also returning the instantiation
    /// counters.
    ///
    /// Templates fan out across `config.threads` workers; each template
    /// draws from its own [`dbpal_util::stream_seed`]-derived RNG stream
    /// keyed by `(config.seed, template index)`, and the per-template
    /// shards merge in template order — so the corpus is byte-identical
    /// for a given seed at any thread count.
    pub fn generate_with_stats(
        &self,
        templates: &[SeedTemplate],
    ) -> (TrainingCorpus, GeneratorStats) {
        let threads = self.config.effective_threads();
        let shards = self
            .config
            .par
            .map_indexed(templates, threads, |i, t| self.generate_template(i, t));
        let mut corpus = TrainingCorpus::new();
        let mut stats = GeneratorStats::default();
        for (pairs, shard_stats) in shards {
            for pair in pairs {
                corpus.push(pair);
            }
            stats.absorb(&shard_stats);
        }
        (corpus, stats)
    }

    /// Instantiate one template's full instance budget on the template's
    /// own derived RNG stream.
    fn generate_template(
        &self,
        index: usize,
        template: &SeedTemplate,
    ) -> (Vec<TrainingPair>, GeneratorStats) {
        let mut rng = Rng::for_stream(self.config.seed, index as u64);
        let mut budget = self.config.size_slot_fills as f64;
        if template.class.is_join() {
            budget *= self.config.join_boost;
        }
        if template.class.is_agg() {
            budget *= self.config.agg_boost;
        }
        if template.class.is_nested() {
            budget *= self.config.nest_boost;
        }
        let budget = budget.round().max(1.0) as usize;
        let mut stats = GeneratorStats {
            budgeted: budget,
            ..GeneratorStats::default()
        };
        let mut pairs = Vec::new();
        let mut seen: HashSet<String> = HashSet::new();
        let mut produced = 0usize;
        // Sampling may repeat instances on small schemas; cap retries.
        let mut attempts = budget * 4 + 8;
        while produced < budget && attempts > 0 {
            attempts -= 1;
            let Some((nl, sql)) = self.instantiate_with(template, &mut rng) else {
                // This draw could not be instantiated (e.g. the chosen
                // table lacks a numeric column); try another draw
                // until the attempt budget runs out.
                stats.failed_draws += 1;
                continue;
            };
            if !seen.insert(format!("{nl}\u{1}{sql}")) {
                stats.duplicate_draws += 1;
                continue;
            }
            // Optionally emit a GROUP BY version of aggregate pairs
            // (the `groupby_p` parameter of Table 1).
            if matches!(template.class, QueryClass::Agg | QueryClass::AggWhere)
                && rng.gen_bool(self.config.group_by_p)
            {
                if let Some(pair) = self.groupby_version(&mut rng, &nl, &sql, template) {
                    pairs.push(pair);
                }
            }
            pairs.push(TrainingPair::new(
                nl,
                sql,
                template.id.clone(),
                Provenance::Seed,
            ));
            produced += 1;
        }
        if produced < budget {
            stats.exhausted_templates = 1;
            stats.shortfall = budget - produced;
        }
        stats.produced = pairs.len();
        (pairs, stats)
    }

    /// Instantiate one template; `None` when the schema lacks the
    /// required structure (e.g. no numeric column for an aggregate).
    /// Draws from the generator's own sequential stream.
    pub fn instantiate(&mut self, template: &SeedTemplate) -> Option<(String, Query)> {
        let mut rng = self.rng.clone();
        let out = self.instantiate_with(template, &mut rng);
        self.rng = rng;
        out
    }

    /// As [`Generator::instantiate`], drawing randomness from `rng` —
    /// the re-entrant form the parallel pipeline uses.
    pub fn instantiate_with(
        &self,
        template: &SeedTemplate,
        rng: &mut Rng,
    ) -> Option<(String, Query)> {
        let mut b = Bindings::new();
        let sql = self.build_sql(rng, template.class, &mut b)?;
        let nl = b.render(template.pattern)?;
        Some((nl, sql))
    }

    // ----- SQL construction per class -------------------------------

    fn build_sql(&self, rng: &mut Rng, class: QueryClass, b: &mut Bindings) -> Option<Query> {
        use QueryClass::*;
        match class {
            SelectAll => {
                let t = self.pick_table(rng, |_| true)?;
                self.bind_table(rng, b, t);
                Some(Query::simple(vec![SelectItem::Star], self.table_name(t)))
            }
            SelectAllWhere => {
                let t = self.pick_table(rng, |t| !t.columns().is_empty())?;
                self.bind_table(rng, b, t);
                let f = self.make_filter(rng, t, &mut HashSet::new(), false)?;
                b.set("filter", f.nl.clone());
                let mut q = Query::simple(vec![SelectItem::Star], self.table_name(t));
                q.where_pred = Some(f.pred);
                Some(q)
            }
            SelectCol => {
                let t = self.pick_table(rng, |_| true)?;
                self.bind_table(rng, b, t);
                let (att, col) = self.pick_column(rng, t, |_| true, &HashSet::new())?;
                b.set("att", self.col_surface(rng, col));
                Some(Query::simple(
                    vec![SelectItem::Column(att)],
                    self.table_name(t),
                ))
            }
            SelectColWhere => {
                let t = self.pick_table(rng, |t| t.column_count() >= 2)?;
                self.bind_table(rng, b, t);
                let mut used = HashSet::new();
                let (att, col) = self.pick_column(rng, t, |_| true, &used)?;
                used.insert(col);
                b.set("att", self.col_surface(rng, col));
                let f = self.make_filter(rng, t, &mut used, false)?;
                b.set("filter", f.nl.clone());
                let mut q = Query::simple(vec![SelectItem::Column(att)], self.table_name(t));
                q.where_pred = Some(f.pred);
                Some(q)
            }
            SelectColsWhere => {
                let t = self.pick_table(rng, |t| t.column_count() >= 3)?;
                self.bind_table(rng, b, t);
                let mut used = HashSet::new();
                let (a1, c1) = self.pick_column(rng, t, |_| true, &used)?;
                used.insert(c1);
                let (a2, c2) = self.pick_column(rng, t, |_| true, &used)?;
                used.insert(c2);
                b.set("att", self.col_surface(rng, c1));
                b.set("att2", self.col_surface(rng, c2));
                let f = self.make_filter(rng, t, &mut used, false)?;
                b.set("filter", f.nl.clone());
                let mut q = Query::simple(
                    vec![SelectItem::Column(a1), SelectItem::Column(a2)],
                    self.table_name(t),
                );
                q.where_pred = Some(f.pred);
                Some(q)
            }
            SelectColWhere2 => {
                let t = self.pick_table(rng, |t| t.column_count() >= 3)?;
                self.bind_table(rng, b, t);
                let mut used = HashSet::new();
                let (att, col) = self.pick_column(rng, t, |_| true, &used)?;
                used.insert(col);
                b.set("att", self.col_surface(rng, col));
                let f1 = self.make_filter(rng, t, &mut used, false)?;
                let f2 = self.make_filter(rng, t, &mut used, false)?;
                b.set("filter", f1.nl.clone());
                b.set("filter2", f2.nl.clone());
                let mut q = Query::simple(vec![SelectItem::Column(att)], self.table_name(t));
                q.where_pred = Some(Pred::and(vec![f1.pred, f2.pred]));
                Some(q)
            }
            Distinct => {
                let t = self.pick_table(rng, |_| true)?;
                self.bind_table(rng, b, t);
                let (att, col) = self.pick_column(rng, t, |_| true, &HashSet::new())?;
                b.set("att", self.col_surface(rng, col));
                b.set("distinct", lexicons::pick(rng, lexicons::DISTINCT_PHRASES));
                let mut q = Query::simple(vec![SelectItem::Column(att)], self.table_name(t));
                q.distinct = true;
                Some(q)
            }
            Agg | AggWhere => {
                let t = self.pick_table(rng, has_numeric)?;
                self.bind_table(rng, b, t);
                let func = *class.agg_choices().choose(rng)?;
                let mut used = HashSet::new();
                let (att, col) = self.pick_column(rng, t, |c| c.sql_type().is_numeric(), &used)?;
                used.insert(col);
                b.set("att", self.col_surface(rng, col));
                b.set("agg", lexicons::pick(rng, lexicons::agg_phrases(func)));
                let mut q = Query::simple(
                    vec![SelectItem::Aggregate(func, agg_col(att))],
                    self.table_name(t),
                );
                if class == AggWhere {
                    let f = self.make_filter(rng, t, &mut used, false)?;
                    b.set("filter", f.nl.clone());
                    q.where_pred = Some(f.pred);
                }
                Some(q)
            }
            CountAll | CountWhere => {
                let t = self.pick_table(rng, |_| true)?;
                self.bind_table(rng, b, t);
                let mut q = Query::simple(
                    vec![SelectItem::Aggregate(AggFunc::Count, AggArg::Star)],
                    self.table_name(t),
                );
                if class == CountWhere {
                    let f = self.make_filter(rng, t, &mut HashSet::new(), false)?;
                    b.set("filter", f.nl.clone());
                    q.where_pred = Some(f.pred);
                }
                Some(q)
            }
            GroupBy => {
                let t = self.pick_table(rng, |t| has_numeric(t) && has_text(t))?;
                self.bind_table(rng, b, t);
                let func = *class.agg_choices().choose(rng)?;
                let mut used = HashSet::new();
                let (att, acol) = self.pick_column(rng, t, |c| c.sql_type().is_numeric(), &used)?;
                used.insert(acol);
                let (gatt, gcol) = self.pick_column(rng, t, |c| c.sql_type().is_text(), &used)?;
                b.set("att", self.col_surface(rng, acol));
                b.set("group", self.col_surface(rng, gcol));
                b.set("agg", lexicons::pick(rng, lexicons::agg_phrases(func)));
                b.set("grpphrase", lexicons::pick(rng, lexicons::GROUP_PHRASES));
                let mut q = Query::simple(
                    vec![
                        SelectItem::Column(gatt.clone()),
                        SelectItem::Aggregate(func, agg_col(att)),
                    ],
                    self.table_name(t),
                );
                q.group_by = vec![gatt];
                Some(q)
            }
            GroupByCount => {
                let t = self.pick_table(rng, has_text)?;
                self.bind_table(rng, b, t);
                let (gatt, gcol) =
                    self.pick_column(rng, t, |c| c.sql_type().is_text(), &HashSet::new())?;
                b.set("group", self.col_surface(rng, gcol));
                b.set("grpphrase", lexicons::pick(rng, lexicons::GROUP_PHRASES));
                let mut q = Query::simple(
                    vec![
                        SelectItem::Column(gatt.clone()),
                        SelectItem::Aggregate(AggFunc::Count, AggArg::Star),
                    ],
                    self.table_name(t),
                );
                q.group_by = vec![gatt];
                Some(q)
            }
            GroupByHaving => {
                let t = self.pick_table(rng, has_text)?;
                self.bind_table(rng, b, t);
                let (gatt, gcol) =
                    self.pick_column(rng, t, |c| c.sql_type().is_text(), &HashSet::new())?;
                b.set("group", self.col_surface(rng, gcol));
                let mut q =
                    Query::simple(vec![SelectItem::Column(gatt.clone())], self.table_name(t));
                q.group_by = vec![gatt];
                q.having = Some(Pred::Compare {
                    left: Scalar::Aggregate(AggFunc::Count, AggArg::Star),
                    op: CmpOp::Gt,
                    right: Scalar::placeholder("CNT"),
                });
                Some(q)
            }
            TopOne | BottomOne => {
                let t = self.pick_table(rng, has_numeric)?;
                self.bind_table(rng, b, t);
                let (natt, ncol) =
                    self.pick_column(rng, t, |c| c.sql_type().is_numeric(), &HashSet::new())?;
                b.set("natt", self.col_surface(rng, ncol));
                let max = class == TopOne;
                let sense = if max {
                    ComparativeSense::Max
                } else {
                    ComparativeSense::Min
                };
                let phrase = self.comparative_phrase(rng, ncol, sense);
                b.set(if max { "supmax" } else { "supmin" }, phrase);
                let mut q = Query::simple(vec![SelectItem::Star], self.table_name(t));
                q.order_by = vec![(
                    OrderKey::Column(natt),
                    if max { OrderDir::Desc } else { OrderDir::Asc },
                )];
                q.limit = Some(1);
                Some(q)
            }
            OrderBy { desc } => {
                let t = self.pick_table(rng, |t| has_numeric(t) && t.column_count() >= 2)?;
                self.bind_table(rng, b, t);
                let mut used = HashSet::new();
                let (att, col) = self.pick_column(rng, t, |_| true, &used)?;
                used.insert(col);
                let (natt, ncol) =
                    self.pick_column(rng, t, |c| c.sql_type().is_numeric(), &used)?;
                b.set("att", self.col_surface(rng, col));
                b.set("natt", self.col_surface(rng, ncol));
                b.set("ordasc", lexicons::pick(rng, lexicons::ORDER_ASC_PHRASES));
                b.set("orddesc", lexicons::pick(rng, lexicons::ORDER_DESC_PHRASES));
                let mut q = Query::simple(vec![SelectItem::Column(att)], self.table_name(t));
                q.order_by = vec![(
                    OrderKey::Column(natt),
                    if desc { OrderDir::Desc } else { OrderDir::Asc },
                )];
                Some(q)
            }
            Between => {
                let t = self.pick_table(rng, |t| has_numeric(t) && t.column_count() >= 2)?;
                self.bind_table(rng, b, t);
                let mut used = HashSet::new();
                let (att, col) = self.pick_column(rng, t, |_| true, &used)?;
                used.insert(col);
                let (ncolref, ncol) =
                    self.pick_column(rng, t, |c| c.sql_type().is_numeric(), &used)?;
                b.set("att", self.col_surface(rng, col));
                b.set("natt", self.col_surface(rng, ncol));
                let base = self.placeholder_name(ncol, false);
                b.set_raw("@LOW", format!("@{base}_LOW"));
                b.set_raw("@HIGH", format!("@{base}_HIGH"));
                let mut q = Query::simple(vec![SelectItem::Column(att)], self.table_name(t));
                q.where_pred = Some(Pred::Between {
                    col: ncolref,
                    low: Scalar::placeholder(format!("{base}_LOW")),
                    high: Scalar::placeholder(format!("{base}_HIGH")),
                });
                Some(q)
            }
            InList => {
                let t = self.pick_table(rng, |t| t.column_count() >= 2)?;
                self.bind_table(rng, b, t);
                let mut used = HashSet::new();
                let (att, col) = self.pick_column(rng, t, |_| true, &used)?;
                used.insert(col);
                let (ccolref, ccol) = self.pick_column(rng, t, |_| true, &used)?;
                b.set("att", self.col_surface(rng, col));
                b.set("catt", self.col_surface(rng, ccol));
                let base = self.placeholder_name(ccol, false);
                b.set_raw("@V1", format!("@{base}_1"));
                b.set_raw("@V2", format!("@{base}_2"));
                let mut q = Query::simple(vec![SelectItem::Column(att)], self.table_name(t));
                q.where_pred = Some(Pred::InList {
                    col: ccolref,
                    values: vec![
                        Scalar::placeholder(format!("{base}_1")),
                        Scalar::placeholder(format!("{base}_2")),
                    ],
                    negated: false,
                });
                Some(q)
            }
            Like => {
                let t = self.pick_table(rng, |t| has_text(t) && t.column_count() >= 2)?;
                self.bind_table(rng, b, t);
                let mut used = HashSet::new();
                let (att, col) = self.pick_column(rng, t, |_| true, &used)?;
                used.insert(col);
                let (tcolref, tcol) =
                    self.pick_column(rng, t, |c| c.sql_type().is_text(), &used)?;
                b.set("att", self.col_surface(rng, col));
                b.set("tatt", self.col_surface(rng, tcol));
                b.set("like", lexicons::pick(rng, lexicons::LIKE_PHRASES));
                let base = self.placeholder_name(tcol, false);
                b.set_raw("@PAT", format!("@{base}"));
                let mut q = Query::simple(vec![SelectItem::Column(att)], self.table_name(t));
                q.where_pred = Some(Pred::Like {
                    col: tcolref,
                    pattern: Scalar::placeholder(base),
                    negated: false,
                });
                Some(q)
            }
            IsNull => {
                let t = self.pick_table(rng, |t| has_text(t) && t.column_count() >= 2)?;
                self.bind_table(rng, b, t);
                let mut used = HashSet::new();
                let (att, col) = self.pick_column(rng, t, |_| true, &used)?;
                used.insert(col);
                let (tcolref, tcol) =
                    self.pick_column(rng, t, |c| c.sql_type().is_text(), &used)?;
                b.set("att", self.col_surface(rng, col));
                b.set("tatt", self.col_surface(rng, tcol));
                b.set("nullphrase", lexicons::pick(rng, lexicons::NULL_PHRASES));
                let mut q = Query::simple(vec![SelectItem::Column(att)], self.table_name(t));
                q.where_pred = Some(Pred::IsNull {
                    col: tcolref,
                    negated: false,
                });
                Some(q)
            }
            Neq => {
                let t = self.pick_table(rng, |t| t.column_count() >= 2)?;
                self.bind_table(rng, b, t);
                let mut used = HashSet::new();
                let (att, col) = self.pick_column(rng, t, |_| true, &used)?;
                used.insert(col);
                let (ccolref, ccol) = self.pick_column(rng, t, |_| true, &used)?;
                b.set("att", self.col_surface(rng, col));
                b.set("catt", self.col_surface(rng, ccol));
                let base = self.placeholder_name(ccol, false);
                b.set_raw("@V1", format!("@{base}"));
                let mut q = Query::simple(vec![SelectItem::Column(att)], self.table_name(t));
                q.where_pred = Some(Pred::Compare {
                    left: Scalar::Column(ccolref),
                    op: CmpOp::NotEq,
                    right: Scalar::placeholder(base),
                });
                Some(q)
            }
            Disjunction => {
                let t = self.pick_table(rng, |t| t.column_count() >= 3)?;
                self.bind_table(rng, b, t);
                let mut used = HashSet::new();
                let (att, col) = self.pick_column(rng, t, |_| true, &used)?;
                used.insert(col);
                b.set("att", self.col_surface(rng, col));
                let f1 = self.make_filter(rng, t, &mut used, false)?;
                let f2 = self.make_filter(rng, t, &mut used, false)?;
                b.set("filter", f1.nl.clone());
                b.set("filter2", f2.nl.clone());
                let mut q = Query::simple(vec![SelectItem::Column(att)], self.table_name(t));
                q.where_pred = Some(Pred::Or(vec![f1.pred, f2.pred]));
                Some(q)
            }
            JoinSelect | JoinAgg => {
                let (t1, t2) = self.pick_join_pair(rng)?;
                self.bind_join_tables(rng, b, t1, t2);
                let numeric_needed = class == JoinAgg;
                let (att, col) = self.pick_column(
                    rng,
                    t1,
                    |c| !numeric_needed || c.sql_type().is_numeric(),
                    &HashSet::new(),
                )?;
                let att = qualify(att, self.table_name(t1));
                b.set("attq", self.col_surface(rng, col));
                let f2 = self.make_filter(rng, t2, &mut HashSet::new(), true)?;
                b.set("filter2q", f2.nl.clone());
                let select = if class == JoinAgg {
                    let func = *class.agg_choices().choose(rng)?;
                    b.set("agg", lexicons::pick(rng, lexicons::agg_phrases(func)));
                    vec![SelectItem::Aggregate(func, agg_col(att))]
                } else {
                    vec![SelectItem::Column(att)]
                };
                Some(Query {
                    distinct: false,
                    select,
                    from: FromClause::JoinPlaceholder,
                    where_pred: Some(f2.pred),
                    group_by: vec![],
                    having: None,
                    order_by: vec![],
                    limit: None,
                })
            }
            JoinGroupBy => {
                let (t1, t2) = self.pick_join_pair(rng)?;
                self.bind_join_tables(rng, b, t1, t2);
                if !has_numeric(self.schema.table(t1)) || !has_text(self.schema.table(t2)) {
                    return None;
                }
                let func = *class.agg_choices().choose(rng)?;
                let (att, acol) =
                    self.pick_column(rng, t1, |c| c.sql_type().is_numeric(), &HashSet::new())?;
                let att = qualify(att, self.table_name(t1));
                let (gatt, gcol) =
                    self.pick_column(rng, t2, |c| c.sql_type().is_text(), &HashSet::new())?;
                let gatt = qualify(gatt, self.table_name(t2));
                b.set("attq", self.col_surface(rng, acol));
                b.set("groupq", self.col_surface(rng, gcol));
                b.set("agg", lexicons::pick(rng, lexicons::agg_phrases(func)));
                b.set("grpphrase", lexicons::pick(rng, lexicons::GROUP_PHRASES));
                Some(Query {
                    distinct: false,
                    select: vec![
                        SelectItem::Column(gatt.clone()),
                        SelectItem::Aggregate(func, agg_col(att)),
                    ],
                    from: FromClause::JoinPlaceholder,
                    where_pred: None,
                    group_by: vec![gatt],
                    having: None,
                    order_by: vec![],
                    limit: None,
                })
            }
            NestedScalar { max } => {
                let t = self.pick_table(rng, |t| has_numeric(t) && t.column_count() >= 3)?;
                self.bind_table(rng, b, t);
                let mut used = HashSet::new();
                let (att, col) = self.pick_column(rng, t, |_| true, &used)?;
                used.insert(col);
                let (natt, ncol) =
                    self.pick_column(rng, t, |c| c.sql_type().is_numeric(), &used)?;
                used.insert(ncol);
                b.set("att", self.col_surface(rng, col));
                b.set("natt", self.col_surface(rng, ncol));
                let f = self.make_filter(rng, t, &mut used, false)?;
                b.set("filter", f.nl.clone());
                let func = if max { AggFunc::Max } else { AggFunc::Min };
                let mut inner = Query::simple(
                    vec![SelectItem::Aggregate(func, agg_col(natt.clone()))],
                    self.table_name(t),
                );
                inner.where_pred = Some(f.pred.clone());
                let mut q = Query::simple(vec![SelectItem::Column(att)], self.table_name(t));
                q.where_pred = Some(Pred::and(vec![
                    Pred::Compare {
                        left: Scalar::Column(natt),
                        op: CmpOp::Eq,
                        right: Scalar::Subquery(Box::new(inner)),
                    },
                    f.pred,
                ]));
                Some(q)
            }
            NestedIn => {
                let (t1, c1, t2, c2) = self.pick_compatible_columns(rng)?;
                self.bind_join_tables(rng, b, t1, t2);
                b.set("att", self.col_surface(rng, c1));
                let f2 = self.make_filter(rng, t2, &mut [c2].into_iter().collect(), true)?;
                b.set("filter2q", f2.nl.clone());
                let inner_col = ColumnRef::unqualified(self.schema.column(c2).name());
                let mut inner =
                    Query::simple(vec![SelectItem::Column(inner_col)], self.table_name(t2));
                inner.where_pred = Some(f2.pred);
                let outer_col = ColumnRef::unqualified(self.schema.column(c1).name());
                let mut q = Query::simple(
                    vec![SelectItem::Column(outer_col.clone())],
                    self.table_name(t1),
                );
                q.where_pred = Some(Pred::InSubquery {
                    col: outer_col,
                    query: Box::new(inner),
                    negated: false,
                });
                Some(q)
            }
            NotLike => {
                let t = self.pick_table(rng, |t| has_text(t) && t.column_count() >= 2)?;
                self.bind_table(rng, b, t);
                let mut used = HashSet::new();
                let (att, col) = self.pick_column(rng, t, |_| true, &used)?;
                used.insert(col);
                let (tcolref, tcol) =
                    self.pick_column(rng, t, |c| c.sql_type().is_text(), &used)?;
                b.set("att", self.col_surface(rng, col));
                b.set("tatt", self.col_surface(rng, tcol));
                b.set("like", lexicons::pick(rng, lexicons::LIKE_PHRASES));
                let base = self.placeholder_name(tcol, false);
                b.set_raw("@PAT", format!("@{base}"));
                let mut q = Query::simple(vec![SelectItem::Column(att)], self.table_name(t));
                q.where_pred = Some(Pred::Like {
                    col: tcolref,
                    pattern: Scalar::placeholder(base),
                    negated: true,
                });
                Some(q)
            }
            CountDistinct => {
                let t = self.pick_table(rng, |_| true)?;
                self.bind_table(rng, b, t);
                let (att, col) = self.pick_column(rng, t, |_| true, &HashSet::new())?;
                b.set("att", self.col_surface(rng, col));
                b.set("distinct", lexicons::pick(rng, lexicons::DISTINCT_PHRASES));
                let q = Query::simple(
                    vec![SelectItem::Aggregate(AggFunc::Count, agg_col(att))],
                    self.table_name(t),
                );
                Some(q)
            }
            TopN { limit } => {
                let t = self.pick_table(rng, has_numeric)?;
                self.bind_table(rng, b, t);
                let (natt, ncol) =
                    self.pick_column(rng, t, |c| c.sql_type().is_numeric(), &HashSet::new())?;
                b.set("natt", self.col_surface(rng, ncol));
                b.set(
                    "supmax",
                    self.comparative_phrase(rng, ncol, ComparativeSense::Max),
                );
                b.set_raw("@N", limit.to_string());
                let mut q = Query::simple(vec![SelectItem::Star], self.table_name(t));
                q.order_by = vec![(OrderKey::Column(natt), OrderDir::Desc)];
                q.limit = Some(limit);
                Some(q)
            }
            NotBetween => {
                let t = self.pick_table(rng, |t| has_numeric(t) && t.column_count() >= 2)?;
                self.bind_table(rng, b, t);
                let mut used = HashSet::new();
                let (att, col) = self.pick_column(rng, t, |_| true, &used)?;
                used.insert(col);
                let (ncolref, ncol) =
                    self.pick_column(rng, t, |c| c.sql_type().is_numeric(), &used)?;
                b.set("att", self.col_surface(rng, col));
                b.set("natt", self.col_surface(rng, ncol));
                let base = self.placeholder_name(ncol, false);
                b.set_raw("@LOW", format!("@{base}_LOW"));
                b.set_raw("@HIGH", format!("@{base}_HIGH"));
                let mut q = Query::simple(vec![SelectItem::Column(att)], self.table_name(t));
                q.where_pred = Some(Pred::Not(Box::new(Pred::Between {
                    col: ncolref,
                    low: Scalar::placeholder(format!("{base}_LOW")),
                    high: Scalar::placeholder(format!("{base}_HIGH")),
                })));
                Some(q)
            }
            NestedExists => {
                if self.schema.table_count() < 2 {
                    return None;
                }
                let t1 = self.pick_table(rng, |_| true)?;
                let t2 = self.pick_table_excluding(rng, t1)?;
                self.bind_join_tables(rng, b, t1, t2);
                let (att, col) = self.pick_column(rng, t1, |_| true, &HashSet::new())?;
                b.set("att", self.col_surface(rng, col));
                let f2 = self.make_filter(rng, t2, &mut HashSet::new(), true)?;
                b.set("filter2q", f2.nl.clone());
                let mut inner = Query::simple(vec![SelectItem::Star], self.table_name(t2));
                inner.where_pred = Some(f2.pred);
                let mut q = Query::simple(vec![SelectItem::Column(att)], self.table_name(t1));
                q.where_pred = Some(Pred::Exists {
                    query: Box::new(inner),
                    negated: false,
                });
                Some(q)
            }
        }
    }

    /// Emit the GROUP BY variant of an aggregate pair (the `groupby_p`
    /// parameter of Table 1). The NL gets a group suffix; the SQL gets a
    /// GROUP BY over a text column.
    fn groupby_version(
        &self,
        rng: &mut Rng,
        nl: &str,
        sql: &Query,
        template: &SeedTemplate,
    ) -> Option<TrainingPair> {
        let table_name = sql.from.tables().first()?.clone();
        let tid = self.schema.table_id(&table_name)?;
        let t = self.schema.table(tid);
        let used: HashSet<ColumnId> = sql
            .columns_mentioned()
            .iter()
            .filter_map(|c| self.schema.column_id(&table_name, &c.column).ok())
            .collect();
        let (gatt, gcol) = self.pick_column(rng, tid, |c| c.sql_type().is_text(), &used)?;
        let _ = t;
        let grp = lexicons::pick(rng, lexicons::GROUP_PHRASES);
        let nl = format!("{nl} {grp} {}", self.col_surface(rng, gcol));
        let mut q = sql.clone();
        q.select.insert(0, SelectItem::Column(gatt.clone()));
        q.group_by = vec![gatt];
        Some(TrainingPair::new(
            nl,
            q,
            format!("{}+group", template.id),
            Provenance::Seed,
        ))
    }

    // ----- slot-filling helpers --------------------------------------

    fn table_name(&self, t: TableId) -> String {
        self.schema.table(t).name().to_lowercase()
    }

    fn pick_table(&self, rng: &mut Rng, accept: impl Fn(&Table) -> bool) -> Option<TableId> {
        let candidates: Vec<TableId> = self
            .schema
            .tables_with_ids()
            .filter(|(_, t)| accept(t))
            .map(|(id, _)| id)
            .collect();
        candidates.choose(rng).copied()
    }

    fn pick_table_excluding(&self, rng: &mut Rng, exclude: TableId) -> Option<TableId> {
        let candidates: Vec<TableId> = self
            .schema
            .tables_with_ids()
            .filter(|(id, _)| *id != exclude)
            .map(|(id, _)| id)
            .collect();
        candidates.choose(rng).copied()
    }

    /// Pick a column of `t` satisfying `accept`, excluding `used`.
    /// Returns the (unqualified) AST reference and the column id.
    fn pick_column(
        &self,
        rng: &mut Rng,
        t: TableId,
        accept: impl Fn(&Column) -> bool,
        used: &HashSet<ColumnId>,
    ) -> Option<(ColumnRef, ColumnId)> {
        let table = self.schema.table(t);
        let candidates: Vec<(u32, &Column)> = table
            .columns()
            .iter()
            .enumerate()
            .map(|(i, c)| (i as u32, c))
            .filter(|(i, c)| accept(c) && !used.contains(&ColumnId::new(t, *i)))
            .collect();
        let &(idx, col) = candidates.choose(rng)?;
        Some((ColumnRef::unqualified(col.name()), ColumnId::new(t, idx)))
    }

    /// A random NL surface form of a column (readable name or synonym).
    fn col_surface(&self, rng: &mut Rng, col: ColumnId) -> String {
        let phrases = self.schema.column(col).nl_phrases();
        phrases[rng.gen_range(0..phrases.len())].clone()
    }

    /// A random NL surface form of a table.
    fn table_surface(&self, rng: &mut Rng, t: TableId) -> String {
        let phrases = self.schema.table(t).nl_phrases();
        phrases[rng.gen_range(0..phrases.len())].clone()
    }

    fn bind_table(&self, rng: &mut Rng, b: &mut Bindings, t: TableId) {
        let surface = self.table_surface(rng, t);
        b.set("table", surface);
        b.set("select", lexicons::pick(rng, lexicons::SELECT_PHRASES));
        b.set("from", lexicons::pick(rng, lexicons::FROM_PHRASES));
        b.set("where", lexicons::pick(rng, lexicons::WHERE_PHRASES));
    }

    fn bind_join_tables(&self, rng: &mut Rng, b: &mut Bindings, t1: TableId, t2: TableId) {
        self.bind_table(rng, b, t1);
        let surface2 = self.table_surface(rng, t2);
        b.set("table2", surface2);
    }

    /// The placeholder base name for a column: `AGE` for single-table
    /// contexts, `DOCTORS.NAME` when qualification is required (join and
    /// cross-table contexts, paper §5.1's `@DOCTOR.NAME`).
    fn placeholder_name(&self, col: ColumnId, qualified: bool) -> String {
        let c = self.schema.column(col);
        if qualified {
            format!(
                "{}.{}",
                self.schema.table(col.table).name().to_uppercase(),
                c.name().to_uppercase()
            )
        } else {
            c.name().to_uppercase()
        }
    }

    /// Build a random filter on a column of `t` not in `used`.
    fn make_filter(
        &self,
        rng: &mut Rng,
        t: TableId,
        used: &mut HashSet<ColumnId>,
        qualified: bool,
    ) -> Option<FilterParts> {
        let (colref, col) = self.pick_column(rng, t, |_| true, used)?;
        used.insert(col);
        let column = self.schema.column(col);
        let surface = self.col_surface(rng, col);
        let ph = self.placeholder_name(col, qualified);
        let colref = if qualified {
            qualify(colref, self.table_name(t))
        } else {
            colref
        };
        let (op, nl) = if column.sql_type().is_numeric() {
            // Weighted operator choice: equality is most common.
            let roll: f64 = rng.next_f64();
            if roll < 0.5 {
                let eq = lexicons::pick(rng, lexicons::EQ_PHRASES);
                (CmpOp::Eq, format!("{surface} {eq} @{ph}"))
            } else if roll < 0.75 {
                let phrase = self.comparative_phrase(rng, col, ComparativeSense::Greater);
                (CmpOp::Gt, format!("{surface} {phrase} @{ph}"))
            } else {
                let phrase = self.comparative_phrase(rng, col, ComparativeSense::Less);
                (CmpOp::Lt, format!("{surface} {phrase} @{ph}"))
            }
        } else {
            let eq = lexicons::pick(rng, lexicons::EQ_PHRASES);
            (CmpOp::Eq, format!("{surface} {eq} @{ph}"))
        };
        Some(FilterParts {
            pred: Pred::Compare {
                left: Scalar::Column(colref),
                op,
                right: Scalar::placeholder(ph),
            },
            nl,
        })
    }

    /// A comparative phrase for a column, preferring a domain-specific
    /// phrase when the column has a non-generic domain (paper §3.2.3).
    fn comparative_phrase(&self, rng: &mut Rng, col: ColumnId, sense: ComparativeSense) -> String {
        let domain = self.schema.column(col).domain();
        let phrases = if domain != SemanticDomain::Generic && rng.gen_bool(0.5) {
            self.comparatives.domain_phrases(domain, sense).to_vec()
        } else {
            self.comparatives.generic_phrases(sense).to_vec()
        };
        let pick = phrases[rng.gen_range(0..phrases.len())];
        pick.to_string()
    }

    /// Find two tables with type-compatible columns for NestedIn.
    fn pick_compatible_columns(
        &self,
        rng: &mut Rng,
    ) -> Option<(TableId, ColumnId, TableId, ColumnId)> {
        let mut candidates = Vec::new();
        for (t1, table1) in self.schema.tables_with_ids() {
            for (t2, table2) in self.schema.tables_with_ids() {
                if t1 == t2 || table2.column_count() < 2 {
                    continue;
                }
                for (i1, c1) in table1.columns().iter().enumerate() {
                    for (i2, c2) in table2.columns().iter().enumerate() {
                        let compatible = c1.sql_type() == c2.sql_type()
                            && c1.sql_type().is_text()
                            && (c1.name() == c2.name() || c1.domain() == c2.domain());
                        if compatible {
                            candidates.push((
                                t1,
                                ColumnId::new(t1, i1 as u32),
                                t2,
                                ColumnId::new(t2, i2 as u32),
                            ));
                        }
                    }
                }
            }
        }
        candidates.choose(rng).copied()
    }

    /// Pick a foreign-key-connected pair of tables (child, parent),
    /// honoring `size_tables >= 2`.
    fn pick_join_pair(&self, rng: &mut Rng) -> Option<(TableId, TableId)> {
        if self.config.size_tables < 2 {
            return None;
        }
        let fks = self.schema.foreign_keys();
        let fk = fks.choose(rng)?;
        Some((fk.from.table, fk.to.table))
    }
}

fn has_numeric(t: &Table) -> bool {
    t.columns().iter().any(|c| c.sql_type().is_numeric())
}

fn has_text(t: &Table) -> bool {
    t.columns().iter().any(|c| c.sql_type().is_text())
}

fn agg_col(c: ColumnRef) -> AggArg {
    AggArg::Column(c)
}

fn qualify(c: ColumnRef, table: String) -> ColumnRef {
    ColumnRef {
        table: Some(table),
        column: c.column,
    }
}

/// Slot bindings for one instantiation.
struct Bindings {
    slots: HashMap<&'static str, String>,
    raw: Vec<(&'static str, String)>,
}

impl Bindings {
    fn new() -> Self {
        Bindings {
            slots: HashMap::new(),
            raw: Vec::new(),
        }
    }

    fn set(&mut self, slot: &'static str, value: impl Into<String>) {
        self.slots.insert(slot, value.into());
    }

    /// Raw textual replacement applied before slot filling (used for the
    /// pseudo-placeholders `@LOW`, `@V1`, `@PAT`, ... in patterns).
    fn set_raw(&mut self, from: &'static str, to: String) {
        self.raw.push((from, to));
    }

    /// Render a pattern; `None` if it references an unbound slot.
    fn render(&self, pattern: &str) -> Option<String> {
        let mut text = pattern.to_string();
        for (from, to) in &self.raw {
            text = text.replace(from, to);
        }
        let mut out = String::with_capacity(text.len() * 2);
        let mut rest = text.as_str();
        while let Some(start) = rest.find('{') {
            out.push_str(&rest[..start]);
            let end = start + rest[start..].find('}')?;
            let slot = &rest[start + 1..end];
            out.push_str(self.slots.get(slot)?);
            rest = &rest[end + 1..];
        }
        out.push_str(rest);
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates::catalog;
    use dbpal_schema::{SchemaBuilder, SqlType};

    fn hospital_schema() -> Schema {
        SchemaBuilder::new("hospital")
            .table("patients", |t| {
                t.synonym("people")
                    .column("name", SqlType::Text)
                    .column_with("age", SqlType::Integer, |c| c.domain(SemanticDomain::Age))
                    .column_with("disease", SqlType::Text, |c| c.synonym("illness"))
                    .column_with("length_of_stay", SqlType::Integer, |c| {
                        c.domain(SemanticDomain::Duration)
                            .readable("length of stay")
                    })
                    .column("doctor_id", SqlType::Integer)
            })
            .table("doctors", |t| {
                t.column("id", SqlType::Integer)
                    .column("name", SqlType::Text)
                    .column("specialty", SqlType::Text)
                    .primary_key("id")
            })
            .foreign_key("patients", "doctor_id", "doctors", "id")
            .build()
            .unwrap()
    }

    #[test]
    fn generates_pairs_for_every_class() {
        let schema = hospital_schema();
        let config = GenerationConfig::small();
        let g = Generator::new(&schema, &config);
        let corpus = g.generate(&catalog());
        let templates_hit: std::collections::HashSet<&str> = corpus
            .pairs()
            .iter()
            .map(|p| p.template_id.split('.').next().unwrap())
            .collect();
        // Every class family should instantiate on this schema.
        for family in [
            "select_all",
            "select_col_where",
            "agg",
            "count_all",
            "group_by",
            "top_one",
            "between",
            "join_select",
            "join_agg",
            "nested_max",
            "nested_in",
        ] {
            assert!(
                templates_hit.contains(family),
                "family {family} produced no pairs; hit = {templates_hit:?}"
            );
        }
    }

    #[test]
    fn generated_sql_is_parseable_and_printable() {
        let schema = hospital_schema();
        let config = GenerationConfig::small();
        let g = Generator::new(&schema, &config);
        let corpus = g.generate(&catalog());
        assert!(corpus.len() > 100);
        for p in corpus.pairs() {
            let text = p.sql_text();
            let reparsed = dbpal_sql::parse_query(&text)
                .unwrap_or_else(|e| panic!("unparseable generated SQL `{text}`: {e}"));
            assert_eq!(&reparsed, &p.sql, "round trip mismatch for `{text}`");
        }
    }

    #[test]
    fn nl_side_has_no_unfilled_slots() {
        let schema = hospital_schema();
        let config = GenerationConfig::small();
        let g = Generator::new(&schema, &config);
        let corpus = g.generate(&catalog());
        for p in corpus.pairs() {
            assert!(
                !p.nl.contains('{') && !p.nl.contains('}'),
                "unfilled slot in `{}` ({})",
                p.nl,
                p.template_id
            );
        }
    }

    #[test]
    fn placeholders_match_between_nl_and_sql() {
        let schema = hospital_schema();
        let config = GenerationConfig::small();
        let g = Generator::new(&schema, &config);
        let corpus = g.generate(&catalog());
        for p in corpus.pairs() {
            for ph in p.sql.placeholders() {
                if ph == "CNT" {
                    // GROUP BY HAVING uses @CNT in both sides.
                }
                assert!(
                    p.nl.to_uppercase().contains(&format!("@{ph}")),
                    "SQL placeholder @{ph} missing from NL `{}` (sql: {})",
                    p.nl,
                    p.sql
                );
            }
        }
    }

    #[test]
    fn respects_slot_fill_budget() {
        let schema = hospital_schema();
        let mut config = GenerationConfig::small();
        config.size_slot_fills = 3;
        config.join_boost = 1.0;
        config.agg_boost = 1.0;
        config.nest_boost = 1.0;
        config.group_by_p = 0.0;
        let g = Generator::new(&schema, &config);
        let corpus = g.generate(&catalog());
        for (tmpl, count) in corpus.template_counts() {
            assert!(
                count <= 3,
                "template {tmpl} produced {count} pairs, budget was 3"
            );
        }
    }

    #[test]
    fn boosts_scale_instance_counts() {
        let schema = hospital_schema();
        let mut low = GenerationConfig::small();
        low.nest_boost = 0.5;
        low.group_by_p = 0.0;
        let mut high = low.clone();
        high.nest_boost = 3.0;
        let count = |cfg: &GenerationConfig| {
            let g = Generator::new(&schema, cfg);
            g.generate(&catalog())
                .pairs()
                .iter()
                .filter(|p| p.template_id.starts_with("nested"))
                .count()
        };
        assert!(count(&high) > count(&low));
    }

    #[test]
    fn group_by_p_zero_suppresses_groupby_variants() {
        let schema = hospital_schema();
        let mut config = GenerationConfig::small();
        config.group_by_p = 0.0;
        let g = Generator::new(&schema, &config);
        let corpus = g.generate(&catalog());
        assert!(corpus
            .pairs()
            .iter()
            .all(|p| !p.template_id.ends_with("+group")));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let schema = hospital_schema();
        let config = GenerationConfig::small();
        let run = || {
            let g = Generator::new(&schema, &config);
            g.generate(&catalog())
                .pairs()
                .iter()
                .map(|p| p.nl.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn join_queries_use_join_placeholder() {
        let schema = hospital_schema();
        let config = GenerationConfig::small();
        let g = Generator::new(&schema, &config);
        let corpus = g.generate(&catalog());
        let join_pairs: Vec<_> = corpus
            .pairs()
            .iter()
            .filter(|p| p.template_id.starts_with("join"))
            .collect();
        assert!(!join_pairs.is_empty());
        for p in join_pairs {
            assert_eq!(p.sql.from, FromClause::JoinPlaceholder, "{}", p.sql);
        }
    }

    #[test]
    fn single_table_schema_skips_join_classes() {
        let schema = SchemaBuilder::new("solo")
            .table("t", |t| {
                t.column("a", SqlType::Text)
                    .column("b", SqlType::Integer)
                    .column("c", SqlType::Text)
            })
            .build()
            .unwrap();
        let config = GenerationConfig::small();
        let g = Generator::new(&schema, &config);
        let corpus = g.generate(&catalog());
        assert!(corpus.len() > 50);
        assert!(corpus
            .pairs()
            .iter()
            .all(|p| !p.template_id.starts_with("join")));
    }

    #[test]
    fn domain_comparatives_appear() {
        let schema = hospital_schema();
        let config = GenerationConfig {
            size_slot_fills: 60,
            ..GenerationConfig::default()
        };
        let g = Generator::new(&schema, &config);
        let corpus = g.generate(&catalog());
        let has_domain_phrase = corpus
            .pairs()
            .iter()
            .any(|p| p.nl.contains("older than") || p.nl.contains("younger than"));
        assert!(has_domain_phrase, "no age-domain comparative generated");
    }
}
