//! Multi-domain schema blueprints and the schema generator.
//!
//! The real Spider benchmark "contains 200 database schemas ... spanning
//! 138 distinct domains (e.g., automotive, social networking, geography)"
//! (paper §6.1.1). This module is the offline substitute: a library of
//! domain blueprints (tables, typed columns with semantic domains and
//! synonyms, foreign keys) from which [`SchemaGenerator`] derives many
//! concrete schemas by sampling column subsets.

use dbpal_schema::{Schema, SchemaBuilder, SemanticDomain, SqlType};
use dbpal_util::Rng;

/// A column blueprint: name, type, semantic domain, synonyms.
#[derive(Debug, Clone, Copy)]
pub struct ColumnBlueprint {
    /// SQL identifier.
    pub name: &'static str,
    /// Declared type.
    pub ty: SqlType,
    /// Semantic domain (drives comparative augmentation).
    pub domain: SemanticDomain,
    /// NL synonyms.
    pub synonyms: &'static [&'static str],
}

/// A table blueprint.
#[derive(Debug, Clone, Copy)]
pub struct TableBlueprint {
    /// SQL identifier.
    pub name: &'static str,
    /// NL synonyms.
    pub synonyms: &'static [&'static str],
    /// Columns; the first two are always kept, the rest are sampled.
    pub columns: &'static [ColumnBlueprint],
}

/// A domain blueprint: up to two tables plus a foreign key between them.
#[derive(Debug, Clone, Copy)]
pub struct DomainBlueprint {
    /// Domain label (also the schema-name prefix).
    pub name: &'static str,
    /// The main table.
    pub primary: TableBlueprint,
    /// Optional second table joined to the primary one.
    pub secondary: Option<TableBlueprint>,
    /// `(primary column, secondary column)` of the foreign key.
    pub fk: Option<(&'static str, &'static str)>,
}

macro_rules! col {
    ($name:literal, $ty:ident) => {
        ColumnBlueprint { name: $name, ty: SqlType::$ty, domain: SemanticDomain::Generic, synonyms: &[] }
    };
    ($name:literal, $ty:ident, $domain:ident) => {
        ColumnBlueprint { name: $name, ty: SqlType::$ty, domain: SemanticDomain::$domain, synonyms: &[] }
    };
    ($name:literal, $ty:ident, $domain:ident, [$($syn:literal),*]) => {
        ColumnBlueprint { name: $name, ty: SqlType::$ty, domain: SemanticDomain::$domain, synonyms: &[$($syn),*] }
    };
}

/// The built-in domain blueprints.
pub fn blueprints() -> Vec<DomainBlueprint> {
    vec![
        DomainBlueprint {
            name: "geography",
            primary: TableBlueprint {
                name: "cities",
                synonyms: &["towns", "municipalities"],
                columns: &[
                    col!("name", Text),
                    col!(
                        "population",
                        Integer,
                        Population,
                        ["inhabitants", "residents"]
                    ),
                    col!("area", Float, Area, ["size"]),
                    col!("elevation", Integer, Height, ["altitude"]),
                    col!("state_id", Integer),
                ],
            },
            secondary: Some(TableBlueprint {
                name: "states",
                synonyms: &["provinces", "regions"],
                columns: &[
                    col!("id", Integer),
                    col!("name", Text),
                    col!("capital", Text),
                    col!("area", Float, Area),
                ],
            }),
            fk: Some(("state_id", "id")),
        },
        DomainBlueprint {
            name: "flights",
            primary: TableBlueprint {
                name: "flights",
                synonyms: &["plane trips"],
                columns: &[
                    col!("flight_number", Text, Generic, ["code"]),
                    col!("duration", Integer, Duration, ["flight time"]),
                    col!("price", Float, Money, ["fare", "cost"]),
                    col!("distance", Integer, Length),
                    col!("airline_id", Integer),
                ],
            },
            secondary: Some(TableBlueprint {
                name: "airlines",
                synonyms: &["carriers"],
                columns: &[
                    col!("id", Integer),
                    col!("name", Text),
                    col!("country", Text, Generic, ["nation"]),
                    col!("fleet_size", Integer, Count_),
                ],
            }),
            fk: Some(("airline_id", "id")),
        },
        DomainBlueprint {
            name: "automotive",
            primary: TableBlueprint {
                name: "cars",
                synonyms: &["vehicles", "automobiles"],
                columns: &[
                    col!("model", Text),
                    col!("horsepower", Integer, Speed, ["power"]),
                    col!("price", Float, Money, ["cost"]),
                    col!("weight", Integer, Weight),
                    col!("year", Integer, Time, ["model year"]),
                    col!("maker_id", Integer),
                ],
            },
            secondary: Some(TableBlueprint {
                name: "makers",
                synonyms: &["manufacturers", "brands"],
                columns: &[
                    col!("id", Integer),
                    col!("name", Text),
                    col!("country", Text),
                ],
            }),
            fk: Some(("maker_id", "id")),
        },
        DomainBlueprint {
            name: "university",
            primary: TableBlueprint {
                name: "students",
                synonyms: &["pupils", "learners"],
                columns: &[
                    col!("name", Text),
                    col!("age", Integer, Age),
                    col!("gpa", Float, Generic, ["grade average", "grades"]),
                    col!("major", Text, Generic, ["field of study"]),
                    col!("advisor_id", Integer),
                ],
            },
            secondary: Some(TableBlueprint {
                name: "professors",
                synonyms: &["faculty", "instructors"],
                columns: &[
                    col!("id", Integer),
                    col!("name", Text),
                    col!("department", Text, Generic, ["division"]),
                    col!("salary", Integer, Money),
                ],
            }),
            fk: Some(("advisor_id", "id")),
        },
        DomainBlueprint {
            name: "retail",
            primary: TableBlueprint {
                name: "products",
                synonyms: &["items", "goods"],
                columns: &[
                    col!("name", Text, Generic, ["title"]),
                    col!("price", Float, Money, ["cost"]),
                    col!("stock", Integer, Generic, ["inventory", "quantity"]),
                    col!("weight", Float, Weight),
                    col!("supplier_id", Integer),
                ],
            },
            secondary: Some(TableBlueprint {
                name: "suppliers",
                synonyms: &["vendors"],
                columns: &[
                    col!("id", Integer),
                    col!("name", Text),
                    col!("city", Text, Generic, ["location"]),
                    col!("rating", Integer),
                ],
            }),
            fk: Some(("supplier_id", "id")),
        },
        DomainBlueprint {
            name: "music",
            primary: TableBlueprint {
                name: "songs",
                synonyms: &["tracks", "tunes"],
                columns: &[
                    col!("title", Text, Generic, ["name"]),
                    col!("duration", Integer, Duration, ["length"]),
                    col!("plays", Integer, Count_, ["streams", "listens"]),
                    col!("year", Integer, Time),
                    col!("artist_id", Integer),
                ],
            },
            secondary: Some(TableBlueprint {
                name: "artists",
                synonyms: &["musicians", "performers"],
                columns: &[
                    col!("id", Integer),
                    col!("name", Text),
                    col!("genre", Text, Generic, ["style"]),
                    col!("age", Integer, Age),
                ],
            }),
            fk: Some(("artist_id", "id")),
        },
        DomainBlueprint {
            name: "sports",
            primary: TableBlueprint {
                name: "players",
                synonyms: &["athletes"],
                columns: &[
                    col!("name", Text),
                    col!("age", Integer, Age),
                    col!("height", Integer, Height),
                    col!("goals", Integer, Count_, ["scores"]),
                    col!("team_id", Integer),
                ],
            },
            secondary: Some(TableBlueprint {
                name: "teams",
                synonyms: &["clubs", "squads"],
                columns: &[
                    col!("id", Integer),
                    col!("name", Text),
                    col!("city", Text, Generic, ["home town"]),
                    col!("wins", Integer, Count_, ["victories"]),
                ],
            }),
            fk: Some(("team_id", "id")),
        },
        DomainBlueprint {
            name: "library",
            primary: TableBlueprint {
                name: "books",
                synonyms: &["volumes", "publications"],
                columns: &[
                    col!("title", Text, Generic, ["name"]),
                    col!("pages", Integer, Length, ["page count"]),
                    col!("year", Integer, Time, ["publication year"]),
                    col!("genre", Text, Generic, ["category"]),
                    col!("author_id", Integer),
                ],
            },
            secondary: Some(TableBlueprint {
                name: "authors",
                synonyms: &["writers"],
                columns: &[
                    col!("id", Integer),
                    col!("name", Text),
                    col!("nationality", Text, Generic, ["country"]),
                    col!("age", Integer, Age),
                ],
            }),
            fk: Some(("author_id", "id")),
        },
        DomainBlueprint {
            name: "hr",
            primary: TableBlueprint {
                name: "employees",
                synonyms: &["workers", "staff"],
                columns: &[
                    col!("name", Text),
                    col!("salary", Integer, Money, ["pay", "wage", "earnings"]),
                    col!("age", Integer, Age),
                    col!("tenure", Integer, Duration, ["years of service"]),
                    col!("department_id", Integer),
                ],
            },
            secondary: Some(TableBlueprint {
                name: "departments",
                synonyms: &["divisions", "units"],
                columns: &[
                    col!("id", Integer),
                    col!("name", Text),
                    col!("budget", Integer, Money),
                    col!("floor", Integer),
                ],
            }),
            fk: Some(("department_id", "id")),
        },
        DomainBlueprint {
            name: "restaurants",
            primary: TableBlueprint {
                name: "restaurants",
                synonyms: &["eateries", "diners"],
                columns: &[
                    col!("name", Text),
                    col!("rating", Float, Generic, ["stars", "score"]),
                    col!("price_range", Integer, Money, ["cost level"]),
                    col!("capacity", Integer, Count_, ["seats"]),
                    col!("city", Text, Generic, ["location"]),
                ],
            },
            secondary: None,
            fk: None,
        },
        DomainBlueprint {
            name: "realestate",
            primary: TableBlueprint {
                name: "houses",
                synonyms: &["homes", "properties"],
                columns: &[
                    col!("address", Text, Generic, ["location"]),
                    col!("price", Integer, Money, ["cost", "value"]),
                    col!("area", Float, Area, ["square footage", "size"]),
                    col!("bedrooms", Integer, Count_, ["rooms"]),
                    col!("year_built", Integer, Time, ["construction year"]),
                ],
            },
            secondary: None,
            fk: None,
        },
        DomainBlueprint {
            name: "hospital",
            primary: TableBlueprint {
                name: "patients",
                synonyms: &["people", "cases"],
                columns: &[
                    col!("name", Text),
                    col!("age", Integer, Age, ["years"]),
                    col!(
                        "disease",
                        Text,
                        Generic,
                        ["illness", "condition", "diagnosis"]
                    ),
                    col!(
                        "length_of_stay",
                        Integer,
                        Duration,
                        ["stay", "hospital stay"]
                    ),
                    col!("weight", Integer, Weight),
                    col!("doctor_id", Integer),
                ],
            },
            secondary: Some(TableBlueprint {
                name: "doctors",
                synonyms: &["physicians"],
                columns: &[
                    col!("id", Integer),
                    col!("name", Text),
                    col!("specialty", Text, Generic, ["field"]),
                    col!("salary", Integer, Money, ["pay", "wage"]),
                ],
            }),
            fk: Some(("doctor_id", "id")),
        },
    ]
}

// SemanticDomain has no `Count_` variant; alias the generic counting
// domain onto `Generic` via a module-local constant trick is not possible
// with the macro above, so define it as a type alias at the macro level.
#[allow(non_upper_case_globals)]
trait CountAlias {
    const Count_: SemanticDomain = SemanticDomain::Generic;
}
impl CountAlias for SemanticDomain {}

/// Generates concrete schemas from the blueprints.
pub struct SchemaGenerator {
    rng: Rng,
    blueprints: Vec<DomainBlueprint>,
}

impl SchemaGenerator {
    /// Create a generator with a seed.
    pub fn new(seed: u64) -> Self {
        SchemaGenerator {
            rng: Rng::seed_from_u64(seed),
            blueprints: blueprints(),
        }
    }

    /// Number of available domains.
    pub fn domain_count(&self) -> usize {
        self.blueprints.len()
    }

    /// Derive `n` schemas by cycling domains and sampling column subsets.
    /// Names are suffixed so multiple schemas per domain stay distinct.
    pub fn generate(&mut self, n: usize) -> Vec<Schema> {
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let bp = self.blueprints[i % self.blueprints.len()];
            out.push(self.instantiate(&bp, i));
        }
        out
    }

    fn instantiate(&mut self, bp: &DomainBlueprint, index: usize) -> Schema {
        let name = format!("{}_{index}", bp.name);
        let mut builder = SchemaBuilder::new(name);
        builder = builder.table(bp.primary.name, |mut t| {
            for syn in bp.primary.synonyms {
                t = t.synonym(*syn);
            }
            for (i, c) in self.sample_columns(bp.primary.columns, bp.fk.map(|(p, _)| p)) {
                let _ = i;
                t = t.column_with(c.name, c.ty, |mut cb| {
                    cb = cb.domain(c.domain);
                    for syn in c.synonyms {
                        cb = cb.synonym(*syn);
                    }
                    cb
                });
            }
            t
        });
        if let Some(sec) = &bp.secondary {
            builder = builder.table(sec.name, |mut t| {
                for syn in sec.synonyms {
                    t = t.synonym(*syn);
                }
                for (_, c) in self.sample_columns(sec.columns, bp.fk.map(|(_, s)| s)) {
                    t = t.column_with(c.name, c.ty, |mut cb| {
                        cb = cb.domain(c.domain);
                        for syn in c.synonyms {
                            cb = cb.synonym(*syn);
                        }
                        cb
                    });
                }
                t
            });
            if let Some((pc, sc)) = bp.fk {
                builder = builder.foreign_key(bp.primary.name, pc, sec.name, sc);
            }
        }
        builder.build().expect("blueprint schemas are valid")
    }

    /// Keep the first two columns and any FK column; sample the rest.
    fn sample_columns<'b>(
        &mut self,
        columns: &'b [ColumnBlueprint],
        must_keep: Option<&str>,
    ) -> Vec<(usize, &'b ColumnBlueprint)> {
        let mut kept: Vec<(usize, &ColumnBlueprint)> = Vec::new();
        for (i, c) in columns.iter().enumerate() {
            let mandatory = i < 2 || Some(c.name) == must_keep;
            if mandatory || self.rng.gen_bool(0.8) {
                kept.push((i, c));
            }
        }
        kept
    }
}

/// Populate a database with deterministic synthetic rows for a schema
/// produced by [`SchemaGenerator`] (used by result-equivalence checks and
/// the value index).
pub fn populate(schema: &Schema, rows_per_table: usize, seed: u64) -> dbpal_engine::Database {
    use dbpal_schema::Value;
    let mut rng = Rng::seed_from_u64(seed);
    let mut db = dbpal_engine::Database::new(schema.clone());
    const WORDS: &[&str] = &[
        "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta", "iota", "kappa",
        "lambda", "sigma", "omega", "nova", "terra", "luna", "vega", "orion", "atlas", "juno",
    ];
    for table in schema.tables() {
        for row_idx in 0..rows_per_table {
            let row: Vec<Value> = table
                .columns()
                .iter()
                .map(|c| match c.sql_type() {
                    SqlType::Integer => Value::Int(if c.name() == "id" {
                        row_idx as i64 + 1
                    } else {
                        rng.gen_range(1..120)
                    }),
                    SqlType::Float => Value::Float((rng.gen_range(10..9999) as f64) / 10.0),
                    SqlType::Text => {
                        let w = WORDS[rng.gen_range(0..WORDS.len())];
                        Value::Text(format!("{w}{}", rng.gen_range(0..5)))
                    }
                    SqlType::Boolean => Value::Bool(rng.gen_bool(0.5)),
                })
                .collect();
            db.insert(table.name(), row).expect("row fits schema");
        }
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blueprints_build_valid_schemas() {
        let mut g = SchemaGenerator::new(1);
        let n = g.domain_count();
        let schemas = g.generate(n);
        assert_eq!(schemas.len(), n);
        for s in &schemas {
            assert!(s.table_count() >= 1);
            assert!(s.column_count() >= 2);
        }
    }

    #[test]
    fn schema_names_are_distinct() {
        let mut g = SchemaGenerator::new(2);
        let schemas = g.generate(24);
        let names: std::collections::HashSet<&str> = schemas.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 24);
    }

    #[test]
    fn sampling_varies_columns() {
        let mut g = SchemaGenerator::new(3);
        let schemas = g.generate(24);
        // Two instantiations of the same domain should differ in width
        // at least somewhere across the batch.
        let widths: Vec<usize> = schemas.iter().map(|s| s.column_count()).collect();
        let distinct: std::collections::HashSet<usize> = widths.iter().copied().collect();
        assert!(
            distinct.len() > 1,
            "all schemas identical width: {widths:?}"
        );
    }

    #[test]
    fn fk_columns_always_kept() {
        let mut g = SchemaGenerator::new(4);
        for s in g.generate(36) {
            if s.table_count() == 2 {
                assert_eq!(s.foreign_keys().len(), 1, "schema {} lost its FK", s.name());
            }
        }
    }

    #[test]
    fn populate_fills_all_tables() {
        let mut g = SchemaGenerator::new(5);
        let schema = g.generate(1).pop().unwrap();
        let db = populate(&schema, 20, 7);
        for t in schema.tables() {
            assert_eq!(db.row_count(t.name()).unwrap(), 20);
        }
    }

    #[test]
    fn populate_is_deterministic() {
        let mut g = SchemaGenerator::new(5);
        let schema = g.generate(1).pop().unwrap();
        let a = populate(&schema, 5, 7);
        let b = populate(&schema, 5, 7);
        let q = dbpal_sql::parse_query(&format!("SELECT * FROM {}", schema.tables()[0].name()))
            .unwrap();
        assert_eq!(a.execute(&q).unwrap().rows(), b.execute(&q).unwrap().rows());
    }
}
