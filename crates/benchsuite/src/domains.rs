//! Multi-domain schema blueprints and the schema generator.
//!
//! The real Spider benchmark "contains 200 database schemas ... spanning
//! 138 distinct domains (e.g., automotive, social networking, geography)"
//! (paper §6.1.1). This module is the offline substitute: a library of
//! domain blueprints (tables, typed columns with semantic domains and
//! synonyms, foreign keys) from which [`SchemaGenerator`] derives many
//! concrete schemas by sampling column subsets.

use dbpal_schema::{Schema, SchemaBuilder, SemanticDomain, SqlType};
use dbpal_util::Rng;

/// A column blueprint: name, type, semantic domain, synonyms.
#[derive(Debug, Clone, Copy)]
pub struct ColumnBlueprint {
    /// SQL identifier.
    pub name: &'static str,
    /// Declared type.
    pub ty: SqlType,
    /// Semantic domain (drives comparative augmentation).
    pub domain: SemanticDomain,
    /// NL synonyms.
    pub synonyms: &'static [&'static str],
}

/// A table blueprint.
#[derive(Debug, Clone, Copy)]
pub struct TableBlueprint {
    /// SQL identifier.
    pub name: &'static str,
    /// NL synonyms.
    pub synonyms: &'static [&'static str],
    /// Columns; the first two are always kept, the rest are sampled.
    pub columns: &'static [ColumnBlueprint],
}

/// A domain blueprint: up to three tables plus the foreign keys of a
/// join chain. Two-table domains exercise single joins; three-table
/// chains (fact → dimension → dimension) exercise multi-hop joins and
/// nested aggregates; FK-less twins with identical column shapes are
/// the union-compatible structure set-operation corpora need (the SQL
/// subset has no `UNION` node, so "set ops" here means generating over
/// structurally compatible relations, stated honestly).
#[derive(Debug, Clone, Copy)]
pub struct DomainBlueprint {
    /// Domain label (also the schema-name prefix).
    pub name: &'static str,
    /// The main table.
    pub primary: TableBlueprint,
    /// Optional second table joined to the primary one.
    pub secondary: Option<TableBlueprint>,
    /// Optional third table joined to the secondary one.
    pub tertiary: Option<TableBlueprint>,
    /// `(primary column, secondary column)` of the first foreign key.
    pub fk: Option<(&'static str, &'static str)>,
    /// `(secondary column, tertiary column)` of the second foreign key.
    pub fk2: Option<(&'static str, &'static str)>,
}

macro_rules! col {
    ($name:literal, $ty:ident) => {
        ColumnBlueprint { name: $name, ty: SqlType::$ty, domain: SemanticDomain::Generic, synonyms: &[] }
    };
    ($name:literal, $ty:ident, $domain:ident) => {
        ColumnBlueprint { name: $name, ty: SqlType::$ty, domain: SemanticDomain::$domain, synonyms: &[] }
    };
    ($name:literal, $ty:ident, $domain:ident, [$($syn:literal),*]) => {
        ColumnBlueprint { name: $name, ty: SqlType::$ty, domain: SemanticDomain::$domain, synonyms: &[$($syn),*] }
    };
}

/// The built-in domain blueprints.
pub fn blueprints() -> Vec<DomainBlueprint> {
    vec![
        DomainBlueprint {
            name: "geography",
            primary: TableBlueprint {
                name: "cities",
                synonyms: &["towns", "municipalities"],
                columns: &[
                    col!("name", Text),
                    col!(
                        "population",
                        Integer,
                        Population,
                        ["inhabitants", "residents"]
                    ),
                    col!("area", Float, Area, ["size"]),
                    col!("elevation", Integer, Height, ["altitude"]),
                    col!("state_id", Integer),
                ],
            },
            secondary: Some(TableBlueprint {
                name: "states",
                synonyms: &["provinces", "regions"],
                columns: &[
                    col!("id", Integer),
                    col!("name", Text),
                    col!("capital", Text),
                    col!("area", Float, Area),
                ],
            }),
            tertiary: None,
            fk: Some(("state_id", "id")),
            fk2: None,
        },
        DomainBlueprint {
            name: "flights",
            primary: TableBlueprint {
                name: "flights",
                synonyms: &["plane trips"],
                columns: &[
                    col!("flight_number", Text, Generic, ["code"]),
                    col!("duration", Integer, Duration, ["flight time"]),
                    col!("price", Float, Money, ["fare", "cost"]),
                    col!("distance", Integer, Length),
                    col!("airline_id", Integer),
                ],
            },
            secondary: Some(TableBlueprint {
                name: "airlines",
                synonyms: &["carriers"],
                columns: &[
                    col!("id", Integer),
                    col!("name", Text),
                    col!("country", Text, Generic, ["nation"]),
                    col!("fleet_size", Integer, Count_),
                ],
            }),
            tertiary: None,
            fk: Some(("airline_id", "id")),
            fk2: None,
        },
        DomainBlueprint {
            name: "automotive",
            primary: TableBlueprint {
                name: "cars",
                synonyms: &["vehicles", "automobiles"],
                columns: &[
                    col!("model", Text),
                    col!("horsepower", Integer, Speed, ["power"]),
                    col!("price", Float, Money, ["cost"]),
                    col!("weight", Integer, Weight),
                    col!("year", Integer, Time, ["model year"]),
                    col!("maker_id", Integer),
                ],
            },
            secondary: Some(TableBlueprint {
                name: "makers",
                synonyms: &["manufacturers", "brands"],
                columns: &[
                    col!("id", Integer),
                    col!("name", Text),
                    col!("country", Text),
                ],
            }),
            tertiary: None,
            fk: Some(("maker_id", "id")),
            fk2: None,
        },
        DomainBlueprint {
            name: "university",
            primary: TableBlueprint {
                name: "students",
                synonyms: &["pupils", "learners"],
                columns: &[
                    col!("name", Text),
                    col!("age", Integer, Age),
                    col!("gpa", Float, Generic, ["grade average", "grades"]),
                    col!("major", Text, Generic, ["field of study"]),
                    col!("advisor_id", Integer),
                ],
            },
            secondary: Some(TableBlueprint {
                name: "professors",
                synonyms: &["faculty", "instructors"],
                columns: &[
                    col!("id", Integer),
                    col!("name", Text),
                    col!("department", Text, Generic, ["division"]),
                    col!("salary", Integer, Money),
                ],
            }),
            tertiary: None,
            fk: Some(("advisor_id", "id")),
            fk2: None,
        },
        DomainBlueprint {
            name: "retail",
            primary: TableBlueprint {
                name: "products",
                synonyms: &["items", "goods"],
                columns: &[
                    col!("name", Text, Generic, ["title"]),
                    col!("price", Float, Money, ["cost"]),
                    col!("stock", Integer, Generic, ["inventory", "quantity"]),
                    col!("weight", Float, Weight),
                    col!("supplier_id", Integer),
                ],
            },
            secondary: Some(TableBlueprint {
                name: "suppliers",
                synonyms: &["vendors"],
                columns: &[
                    col!("id", Integer),
                    col!("name", Text),
                    col!("city", Text, Generic, ["location"]),
                    col!("rating", Integer),
                ],
            }),
            tertiary: None,
            fk: Some(("supplier_id", "id")),
            fk2: None,
        },
        DomainBlueprint {
            name: "music",
            primary: TableBlueprint {
                name: "songs",
                synonyms: &["tracks", "tunes"],
                columns: &[
                    col!("title", Text, Generic, ["name"]),
                    col!("duration", Integer, Duration, ["length"]),
                    col!("plays", Integer, Count_, ["streams", "listens"]),
                    col!("year", Integer, Time),
                    col!("artist_id", Integer),
                ],
            },
            secondary: Some(TableBlueprint {
                name: "artists",
                synonyms: &["musicians", "performers"],
                columns: &[
                    col!("id", Integer),
                    col!("name", Text),
                    col!("genre", Text, Generic, ["style"]),
                    col!("age", Integer, Age),
                ],
            }),
            tertiary: None,
            fk: Some(("artist_id", "id")),
            fk2: None,
        },
        DomainBlueprint {
            name: "sports",
            primary: TableBlueprint {
                name: "players",
                synonyms: &["athletes"],
                columns: &[
                    col!("name", Text),
                    col!("age", Integer, Age),
                    col!("height", Integer, Height),
                    col!("goals", Integer, Count_, ["scores"]),
                    col!("team_id", Integer),
                ],
            },
            secondary: Some(TableBlueprint {
                name: "teams",
                synonyms: &["clubs", "squads"],
                columns: &[
                    col!("id", Integer),
                    col!("name", Text),
                    col!("city", Text, Generic, ["home town"]),
                    col!("wins", Integer, Count_, ["victories"]),
                ],
            }),
            tertiary: None,
            fk: Some(("team_id", "id")),
            fk2: None,
        },
        DomainBlueprint {
            name: "library",
            primary: TableBlueprint {
                name: "books",
                synonyms: &["volumes", "publications"],
                columns: &[
                    col!("title", Text, Generic, ["name"]),
                    col!("pages", Integer, Length, ["page count"]),
                    col!("year", Integer, Time, ["publication year"]),
                    col!("genre", Text, Generic, ["category"]),
                    col!("author_id", Integer),
                ],
            },
            secondary: Some(TableBlueprint {
                name: "authors",
                synonyms: &["writers"],
                columns: &[
                    col!("id", Integer),
                    col!("name", Text),
                    col!("nationality", Text, Generic, ["country"]),
                    col!("age", Integer, Age),
                ],
            }),
            tertiary: None,
            fk: Some(("author_id", "id")),
            fk2: None,
        },
        DomainBlueprint {
            name: "hr",
            primary: TableBlueprint {
                name: "employees",
                synonyms: &["workers", "staff"],
                columns: &[
                    col!("name", Text),
                    col!("salary", Integer, Money, ["pay", "wage", "earnings"]),
                    col!("age", Integer, Age),
                    col!("tenure", Integer, Duration, ["years of service"]),
                    col!("department_id", Integer),
                ],
            },
            secondary: Some(TableBlueprint {
                name: "departments",
                synonyms: &["divisions", "units"],
                columns: &[
                    col!("id", Integer),
                    col!("name", Text),
                    col!("budget", Integer, Money),
                    col!("floor", Integer),
                ],
            }),
            tertiary: None,
            fk: Some(("department_id", "id")),
            fk2: None,
        },
        DomainBlueprint {
            name: "restaurants",
            primary: TableBlueprint {
                name: "restaurants",
                synonyms: &["eateries", "diners"],
                columns: &[
                    col!("name", Text),
                    col!("rating", Float, Generic, ["stars", "score"]),
                    col!("price_range", Integer, Money, ["cost level"]),
                    col!("capacity", Integer, Count_, ["seats"]),
                    col!("city", Text, Generic, ["location"]),
                ],
            },
            secondary: None,
            tertiary: None,
            fk: None,
            fk2: None,
        },
        DomainBlueprint {
            name: "realestate",
            primary: TableBlueprint {
                name: "houses",
                synonyms: &["homes", "properties"],
                columns: &[
                    col!("address", Text, Generic, ["location"]),
                    col!("price", Integer, Money, ["cost", "value"]),
                    col!("area", Float, Area, ["square footage", "size"]),
                    col!("bedrooms", Integer, Count_, ["rooms"]),
                    col!("year_built", Integer, Time, ["construction year"]),
                ],
            },
            secondary: None,
            tertiary: None,
            fk: None,
            fk2: None,
        },
        DomainBlueprint {
            name: "hospital",
            primary: TableBlueprint {
                name: "patients",
                synonyms: &["people", "cases"],
                columns: &[
                    col!("name", Text),
                    col!("age", Integer, Age, ["years"]),
                    col!(
                        "disease",
                        Text,
                        Generic,
                        ["illness", "condition", "diagnosis"]
                    ),
                    col!(
                        "length_of_stay",
                        Integer,
                        Duration,
                        ["stay", "hospital stay"]
                    ),
                    col!("weight", Integer, Weight),
                    col!("doctor_id", Integer),
                ],
            },
            secondary: Some(TableBlueprint {
                name: "doctors",
                synonyms: &["physicians"],
                columns: &[
                    col!("id", Integer),
                    col!("name", Text),
                    col!("specialty", Text, Generic, ["field"]),
                    col!("salary", Integer, Money, ["pay", "wage"]),
                ],
            }),
            tertiary: None,
            fk: Some(("doctor_id", "id")),
            fk2: None,
        },
        // Three-table fact → dimension → dimension chain: multi-hop
        // joins and nested aggregates (revenue per customer city).
        DomainBlueprint {
            name: "ecommerce",
            primary: TableBlueprint {
                name: "order_items",
                synonyms: &["line items", "purchases"],
                columns: &[
                    col!("sku", Text, Generic, ["product code"]),
                    col!("quantity", Integer, Count_, ["units", "amount"]),
                    col!("unit_price", Float, Money, ["price", "cost"]),
                    col!("discount", Float, Money, ["markdown"]),
                    col!("order_id", Integer),
                ],
            },
            secondary: Some(TableBlueprint {
                name: "orders",
                synonyms: &["carts", "checkouts"],
                columns: &[
                    col!("id", Integer),
                    col!("total", Float, Money, ["order value"]),
                    col!("item_count", Integer, Count_, ["items"]),
                    col!("customer_id", Integer),
                ],
            }),
            tertiary: Some(TableBlueprint {
                name: "customers",
                synonyms: &["buyers", "shoppers"],
                columns: &[
                    col!("id", Integer),
                    col!("name", Text),
                    col!("city", Text, Generic, ["location"]),
                    col!("age", Integer, Age),
                ],
            }),
            fk: Some(("order_id", "id")),
            fk2: Some(("customer_id", "id")),
        },
        // Another multi-hop chain with different type mixes.
        DomainBlueprint {
            name: "cinema",
            primary: TableBlueprint {
                name: "screenings",
                synonyms: &["showings", "showtimes"],
                columns: &[
                    col!("auditorium", Text, Generic, ["screen", "hall"]),
                    col!("attendance", Integer, Count_, ["viewers", "audience"]),
                    col!("ticket_price", Float, Money, ["admission", "fare"]),
                    col!("film_id", Integer),
                ],
            },
            secondary: Some(TableBlueprint {
                name: "films",
                synonyms: &["movies", "pictures"],
                columns: &[
                    col!("id", Integer),
                    col!("title", Text, Generic, ["name"]),
                    col!("runtime", Integer, Duration, ["length"]),
                    col!("year", Integer, Time, ["release year"]),
                    col!("director_id", Integer),
                ],
            }),
            tertiary: Some(TableBlueprint {
                name: "directors",
                synonyms: &["filmmakers"],
                columns: &[
                    col!("id", Integer),
                    col!("name", Text),
                    col!("nationality", Text, Generic, ["country"]),
                    col!("age", Integer, Age),
                ],
            }),
            fk: Some(("film_id", "id")),
            fk2: Some(("director_id", "id")),
        },
        // FK-less twin tables with identical column shapes — the
        // union-compatible structure set-operation corpora generate
        // over (see the [`DomainBlueprint`] docs for the honest scope).
        DomainBlueprint {
            name: "transit",
            primary: TableBlueprint {
                name: "bus_routes",
                synonyms: &["bus lines"],
                columns: &[
                    col!("name", Text, Generic, ["route"]),
                    col!("length", Float, Length, ["distance"]),
                    col!("ridership", Integer, Count_, ["passengers", "riders"]),
                    col!("fare", Float, Money, ["ticket price"]),
                ],
            },
            secondary: Some(TableBlueprint {
                name: "tram_routes",
                synonyms: &["tram lines", "streetcar lines"],
                columns: &[
                    col!("name", Text, Generic, ["route"]),
                    col!("length", Float, Length, ["distance"]),
                    col!("ridership", Integer, Count_, ["passengers", "riders"]),
                    col!("fare", Float, Money, ["ticket price"]),
                ],
            }),
            tertiary: None,
            fk: None,
            fk2: None,
        },
    ]
}

// SemanticDomain has no `Count_` variant; alias the generic counting
// domain onto `Generic` via a module-local constant trick is not possible
// with the macro above, so define it as a type alias at the macro level.
#[allow(non_upper_case_globals)]
trait CountAlias {
    const Count_: SemanticDomain = SemanticDomain::Generic;
}
impl CountAlias for SemanticDomain {}

/// Generates concrete schemas from the blueprints.
pub struct SchemaGenerator {
    rng: Rng,
    blueprints: Vec<DomainBlueprint>,
}

impl SchemaGenerator {
    /// Create a generator with a seed.
    pub fn new(seed: u64) -> Self {
        SchemaGenerator {
            rng: Rng::seed_from_u64(seed),
            blueprints: blueprints(),
        }
    }

    /// Number of available domains.
    pub fn domain_count(&self) -> usize {
        self.blueprints.len()
    }

    /// Derive `n` schemas by cycling domains and sampling column subsets.
    /// Names are suffixed so multiple schemas per domain stay distinct.
    pub fn generate(&mut self, n: usize) -> Vec<Schema> {
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let bp = self.blueprints[i % self.blueprints.len()];
            out.push(self.instantiate(&bp, i));
        }
        out
    }

    fn instantiate(&mut self, bp: &DomainBlueprint, index: usize) -> Schema {
        let name = format!("{}_{index}", bp.name);
        let mut builder = SchemaBuilder::new(name);
        let keep_primary: Vec<&str> = bp.fk.iter().map(|(p, _)| *p).collect();
        builder = self.add_table(builder, &bp.primary, &keep_primary);
        if let Some(sec) = &bp.secondary {
            // The secondary table must keep both ends it participates
            // in: the target of fk and the source of fk2.
            let mut keep_secondary: Vec<&str> = bp.fk.iter().map(|(_, s)| *s).collect();
            keep_secondary.extend(bp.fk2.iter().map(|(s, _)| *s));
            builder = self.add_table(builder, sec, &keep_secondary);
            if let Some((pc, sc)) = bp.fk {
                builder = builder.foreign_key(bp.primary.name, pc, sec.name, sc);
            }
            if let Some(ter) = &bp.tertiary {
                let keep_tertiary: Vec<&str> = bp.fk2.iter().map(|(_, t)| *t).collect();
                builder = self.add_table(builder, ter, &keep_tertiary);
                if let Some((sc2, tc)) = bp.fk2 {
                    builder = builder.foreign_key(sec.name, sc2, ter.name, tc);
                }
            }
        }
        builder.build().expect("blueprint schemas are valid")
    }

    fn add_table(
        &mut self,
        builder: SchemaBuilder,
        table: &TableBlueprint,
        must_keep: &[&str],
    ) -> SchemaBuilder {
        let kept = self.sample_columns(table.columns, must_keep);
        builder.table(table.name, |mut t| {
            for syn in table.synonyms {
                t = t.synonym(*syn);
            }
            for c in kept {
                t = t.column_with(c.name, c.ty, |mut cb| {
                    cb = cb.domain(c.domain);
                    for syn in c.synonyms {
                        cb = cb.synonym(*syn);
                    }
                    cb
                });
            }
            t
        })
    }

    /// Keep the first two columns and any FK columns; sample the rest.
    fn sample_columns<'b>(
        &mut self,
        columns: &'b [ColumnBlueprint],
        must_keep: &[&str],
    ) -> Vec<&'b ColumnBlueprint> {
        let mut kept: Vec<&ColumnBlueprint> = Vec::new();
        for (i, c) in columns.iter().enumerate() {
            let mandatory = i < 2 || must_keep.contains(&c.name);
            if mandatory || self.rng.gen_bool(0.8) {
                kept.push(c);
            }
        }
        kept
    }
}

/// Populate a database with deterministic synthetic rows for a schema
/// produced by [`SchemaGenerator`] (used by result-equivalence checks and
/// the value index).
pub fn populate(schema: &Schema, rows_per_table: usize, seed: u64) -> dbpal_engine::Database {
    use dbpal_schema::Value;
    let mut rng = Rng::seed_from_u64(seed);
    let mut db = dbpal_engine::Database::new(schema.clone());
    const WORDS: &[&str] = &[
        "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta", "iota", "kappa",
        "lambda", "sigma", "omega", "nova", "terra", "luna", "vega", "orion", "atlas", "juno",
    ];
    for table in schema.tables() {
        for row_idx in 0..rows_per_table {
            let row: Vec<Value> = table
                .columns()
                .iter()
                .map(|c| match c.sql_type() {
                    SqlType::Integer => Value::Int(if c.name() == "id" {
                        row_idx as i64 + 1
                    } else {
                        rng.gen_range(1..120)
                    }),
                    SqlType::Float => Value::Float((rng.gen_range(10..9999) as f64) / 10.0),
                    SqlType::Text => {
                        let w = WORDS[rng.gen_range(0..WORDS.len())];
                        Value::Text(format!("{w}{}", rng.gen_range(0..5)))
                    }
                    SqlType::Boolean => Value::Bool(rng.gen_bool(0.5)),
                })
                .collect();
            db.insert(table.name(), row).expect("row fits schema");
        }
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blueprints_build_valid_schemas() {
        let mut g = SchemaGenerator::new(1);
        let n = g.domain_count();
        let schemas = g.generate(n);
        assert_eq!(schemas.len(), n);
        for s in &schemas {
            assert!(s.table_count() >= 1);
            assert!(s.column_count() >= 2);
        }
    }

    #[test]
    fn schema_names_are_distinct() {
        let mut g = SchemaGenerator::new(2);
        let schemas = g.generate(24);
        let names: std::collections::HashSet<&str> = schemas.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 24);
    }

    #[test]
    fn sampling_varies_columns() {
        let mut g = SchemaGenerator::new(3);
        let schemas = g.generate(24);
        // Two instantiations of the same domain should differ in width
        // at least somewhere across the batch.
        let widths: Vec<usize> = schemas.iter().map(|s| s.column_count()).collect();
        let distinct: std::collections::HashSet<usize> = widths.iter().copied().collect();
        assert!(
            distinct.len() > 1,
            "all schemas identical width: {widths:?}"
        );
    }

    #[test]
    fn fk_columns_always_kept() {
        let bps = blueprints();
        let mut g = SchemaGenerator::new(4);
        // Three cycles over the domain list: column sampling must never
        // drop a foreign key declared by the blueprint.
        for (i, s) in g.generate(bps.len() * 3).into_iter().enumerate() {
            let bp = &bps[i % bps.len()];
            let expected = bp.fk.iter().count() + bp.fk2.iter().count();
            assert_eq!(
                s.foreign_keys().len(),
                expected,
                "schema {} has wrong FK count",
                s.name()
            );
        }
    }

    #[test]
    fn three_table_chains_join_end_to_end() {
        let bps = blueprints();
        let chains: Vec<&DomainBlueprint> = bps.iter().filter(|bp| bp.tertiary.is_some()).collect();
        assert!(chains.len() >= 2, "expected multi-hop domains");
        for bp in chains {
            let fk = bp.fk.expect("chain needs fk");
            let fk2 = bp.fk2.expect("chain needs fk2");
            let sec = bp.secondary.as_ref().unwrap();
            let ter = bp.tertiary.as_ref().unwrap();
            assert!(bp.primary.columns.iter().any(|c| c.name == fk.0));
            assert!(sec.columns.iter().any(|c| c.name == fk.1));
            assert!(sec.columns.iter().any(|c| c.name == fk2.0));
            assert!(ter.columns.iter().any(|c| c.name == fk2.1));
        }
    }

    #[test]
    fn twin_table_domains_are_union_compatible() {
        let bps = blueprints();
        let twins: Vec<&DomainBlueprint> = bps
            .iter()
            .filter(|bp| bp.secondary.is_some() && bp.fk.is_none())
            .collect();
        assert!(!twins.is_empty(), "expected a set-operation domain");
        for bp in twins {
            let sec = bp.secondary.as_ref().unwrap();
            assert_eq!(bp.primary.columns.len(), sec.columns.len());
            for (a, b) in bp.primary.columns.iter().zip(sec.columns) {
                assert_eq!(a.name, b.name);
                assert_eq!(a.ty, b.ty);
            }
        }
    }

    #[test]
    fn populate_fills_all_tables() {
        let mut g = SchemaGenerator::new(5);
        let schema = g.generate(1).pop().unwrap();
        let db = populate(&schema, 20, 7);
        for t in schema.tables() {
            assert_eq!(db.row_count(t.name()).unwrap(), 20);
        }
    }

    #[test]
    fn populate_is_deterministic() {
        let mut g = SchemaGenerator::new(5);
        let schema = g.generate(1).pop().unwrap();
        let a = populate(&schema, 5, 7);
        let b = populate(&schema, 5, 7);
        let q = dbpal_sql::parse_query(&format!("SELECT * FROM {}", schema.tables()[0].name()))
            .unwrap();
        assert_eq!(a.execute(&q).unwrap().rows(), b.execute(&q).unwrap().rows());
    }
}
