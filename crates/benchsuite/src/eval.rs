//! Evaluation harness: accuracy scoring and breakdowns.

use crate::spider::SpiderExample;
use dbpal_core::{TrainingCorpus, TranslationModel};
use dbpal_nlp::Lemmatizer;
use dbpal_sql::{exact_set_match, Difficulty, QueryPattern};
use std::collections::{BTreeMap, HashSet};
use std::fmt;

/// A correct/total tally.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalOutcome {
    /// Correctly translated examples.
    pub correct: usize,
    /// Total examples.
    pub total: usize,
}

impl EvalOutcome {
    /// Accuracy in `[0, 1]`; 0 for an empty bucket.
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }

    /// Add one example outcome.
    pub fn record(&mut self, correct: bool) {
        self.total += 1;
        if correct {
            self.correct += 1;
        }
    }

    /// Merge another tally in.
    pub fn merge(&mut self, other: EvalOutcome) {
        self.correct += other.correct;
        self.total += other.total;
    }
}

impl fmt::Display for EvalOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.3} ({}/{})",
            self.accuracy(),
            self.correct,
            self.total
        )
    }
}

/// Accuracy broken down by Spider difficulty (the rows of Table 2).
#[derive(Debug, Clone, Default)]
pub struct DifficultyReport {
    /// Per-difficulty tallies.
    pub per_difficulty: BTreeMap<Difficulty, EvalOutcome>,
    /// Overall tally.
    pub overall: EvalOutcome,
}

impl DifficultyReport {
    /// Accuracy for one tier.
    pub fn accuracy(&self, d: Difficulty) -> f64 {
        self.per_difficulty
            .get(&d)
            .map_or(0.0, EvalOutcome::accuracy)
    }
}

/// Evaluate a model on Spider-style examples with exact set match
/// (§6.1.1), broken down by difficulty.
pub fn evaluate_spider(
    model: &dyn TranslationModel,
    examples: &[SpiderExample],
) -> DifficultyReport {
    let lemmatizer = Lemmatizer::new();
    let mut report = DifficultyReport::default();
    for ex in examples {
        let lemmas = lemmatizer.lemmatize_sentence(&ex.nl);
        let correct = model
            .translate(&lemmas)
            .is_some_and(|pred| exact_set_match(&pred, &ex.gold));
        report
            .per_difficulty
            .entry(ex.difficulty)
            .or_default()
            .record(correct);
        report.overall.record(correct);
    }
    report
}

/// Table 4's pattern-coverage buckets: where (if anywhere) a test query's
/// pattern appears in the training data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CoverageBucket {
    /// In both the Spider training set and the DBPal-generated data.
    Both,
    /// Only in the DBPal-generated data.
    DbpalOnly,
    /// Only in the Spider training set.
    SpiderOnly,
    /// In neither.
    Unseen,
}

impl CoverageBucket {
    /// All buckets in Table 4's column order.
    pub const ALL: [CoverageBucket; 4] = [
        CoverageBucket::Both,
        CoverageBucket::DbpalOnly,
        CoverageBucket::SpiderOnly,
        CoverageBucket::Unseen,
    ];

    /// Display label matching Table 4.
    pub fn label(self) -> &'static str {
        match self {
            CoverageBucket::Both => "Both",
            CoverageBucket::DbpalOnly => "DBPal",
            CoverageBucket::SpiderOnly => "Spider",
            CoverageBucket::Unseen => "Unseen",
        }
    }
}

/// The pattern signatures present in a training corpus.
pub fn pattern_set(corpus: &TrainingCorpus) -> HashSet<String> {
    corpus
        .pairs()
        .iter()
        .map(|p| QueryPattern::of(&p.sql).signature().to_string())
        .collect()
}

/// Assign a test example to its coverage bucket.
pub fn bucket_of(
    example: &SpiderExample,
    spider_patterns: &HashSet<String>,
    dbpal_patterns: &HashSet<String>,
) -> CoverageBucket {
    let sig = QueryPattern::of(&example.gold).signature().to_string();
    match (
        spider_patterns.contains(&sig),
        dbpal_patterns.contains(&sig),
    ) {
        (true, true) => CoverageBucket::Both,
        (false, true) => CoverageBucket::DbpalOnly,
        (true, false) => CoverageBucket::SpiderOnly,
        (false, false) => CoverageBucket::Unseen,
    }
}

/// Evaluate a model with the Table 4 coverage breakdown.
pub fn evaluate_coverage(
    model: &dyn TranslationModel,
    examples: &[SpiderExample],
    spider_patterns: &HashSet<String>,
    dbpal_patterns: &HashSet<String>,
) -> BTreeMap<CoverageBucket, EvalOutcome> {
    let lemmatizer = Lemmatizer::new();
    let mut report: BTreeMap<CoverageBucket, EvalOutcome> = BTreeMap::new();
    for ex in examples {
        let lemmas = lemmatizer.lemmatize_sentence(&ex.nl);
        let correct = model
            .translate(&lemmas)
            .is_some_and(|pred| exact_set_match(&pred, &ex.gold));
        report
            .entry(bucket_of(ex, spider_patterns, dbpal_patterns))
            .or_default()
            .record(correct);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbpal_sql::parse_query;

    #[test]
    fn outcome_accuracy() {
        let mut o = EvalOutcome::default();
        assert_eq!(o.accuracy(), 0.0);
        o.record(true);
        o.record(false);
        assert!((o.accuracy() - 0.5).abs() < 1e-12);
        let mut other = EvalOutcome::default();
        other.record(true);
        o.merge(other);
        assert_eq!(o.correct, 2);
        assert_eq!(o.total, 3);
    }

    #[test]
    fn bucket_assignment() {
        let gold = parse_query("SELECT a FROM t WHERE b = @B").unwrap();
        let sig = QueryPattern::of(&gold).signature().to_string();
        let ex = SpiderExample {
            schema_idx: 0,
            nl: "x @B".into(),
            gold,
            difficulty: Difficulty::Easy,
        };
        let with: HashSet<String> = [sig.clone()].into_iter().collect();
        let without: HashSet<String> = HashSet::new();
        assert_eq!(bucket_of(&ex, &with, &with), CoverageBucket::Both);
        assert_eq!(bucket_of(&ex, &without, &with), CoverageBucket::DbpalOnly);
        assert_eq!(bucket_of(&ex, &with, &without), CoverageBucket::SpiderOnly);
        assert_eq!(bucket_of(&ex, &without, &without), CoverageBucket::Unseen);
    }

    #[test]
    fn bucket_labels_match_table4() {
        let labels: Vec<&str> = CoverageBucket::ALL.iter().map(|b| b.label()).collect();
        assert_eq!(labels, vec!["Both", "DBPal", "Spider", "Unseen"]);
    }
}
