//! The GeoQuery-like tuning workload (DESIGN.md substitution #4).
//!
//! The paper tunes the generator's hyperparameters against "the full
//! GeoQuery query test set of 280 pairs" (§6.3.3). The original GeoQuery
//! data is not available offline, so this module builds a geography
//! workload of the same size and role: 280 NL–SQL pairs over a
//! US-geography schema, phrased with the crowd catalogs (i.e. *not*
//! DBPal's own seed phrasings, so tuning against it is meaningful).

use crate::crowd;
use dbpal_core::{EvalExample, GenerationConfig, Generator};
use dbpal_schema::{Schema, SchemaBuilder, SemanticDomain, SqlType};
use std::collections::HashSet;

/// The GeoQuery-like tuning workload.
pub struct GeoQueryBench {
    schema: Schema,
    examples: Vec<EvalExample>,
}

/// Number of pairs in the workload, matching the paper.
pub const GEOQUERY_SIZE: usize = 280;

impl GeoQueryBench {
    /// Build the workload.
    pub fn new() -> Self {
        let schema = geo_schema();
        let mut templates = crowd::train_catalog();
        templates.extend(crowd::test_extra_catalog());
        let config = GenerationConfig {
            size_slot_fills: 8,
            join_boost: 1.0,
            agg_boost: 1.0,
            nest_boost: 1.0,
            group_by_p: 0.0,
            num_para: 0,
            num_missing: 0,
            rand_drop_p: 0.0,
            seed: 0x6E0,
            ..GenerationConfig::default()
        };
        let mut generator = Generator::new(&schema, &config);
        let mut examples = Vec::with_capacity(GEOQUERY_SIZE);
        let mut seen = HashSet::new();
        // Round-robin over templates until 280 distinct pairs exist.
        'outer: loop {
            let mut progressed = false;
            for tmpl in &templates {
                if examples.len() >= GEOQUERY_SIZE {
                    break 'outer;
                }
                for _ in 0..4 {
                    if let Some((nl, sql)) = generator.instantiate(tmpl) {
                        if seen.insert(format!("{nl}\u{1}{sql}")) {
                            examples.push(EvalExample::new(nl, sql));
                            progressed = true;
                            break;
                        }
                    }
                }
            }
            if !progressed {
                break;
            }
        }
        GeoQueryBench { schema, examples }
    }

    /// The geography schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The tuning examples.
    pub fn examples(&self) -> &[EvalExample] {
        &self.examples
    }
}

impl Default for GeoQueryBench {
    fn default() -> Self {
        Self::new()
    }
}

/// The US-geography schema.
pub fn geo_schema() -> Schema {
    SchemaBuilder::new("geoquery")
        .table("states", |t| {
            t.synonym("provinces")
                .column("name", SqlType::Text)
                .column_with("area", SqlType::Float, |c| {
                    c.domain(SemanticDomain::Area).synonym("size")
                })
                .column_with("population", SqlType::Integer, |c| {
                    c.domain(SemanticDomain::Population)
                        .synonym("inhabitants")
                        .synonym("residents")
                })
                .column("capital", SqlType::Text)
        })
        .table("cities", |t| {
            t.synonym("towns")
                .column("name", SqlType::Text)
                .column_with("population", SqlType::Integer, |c| {
                    c.domain(SemanticDomain::Population)
                })
                .column("state_id", SqlType::Integer)
        })
        .table("mountains", |t| {
            t.synonym("peaks")
                .column("name", SqlType::Text)
                .column_with("height", SqlType::Integer, |c| {
                    c.domain(SemanticDomain::Height).synonym("elevation")
                })
                .column("state_id", SqlType::Integer)
        })
        .table("state_info", |t| {
            t.column("id", SqlType::Integer)
                .column("abbreviation", SqlType::Text)
                .primary_key("id")
        })
        .foreign_key("cities", "state_id", "state_info", "id")
        .foreign_key("mountains", "state_id", "state_info", "id")
        .build()
        .expect("geo schema is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_has_280_pairs() {
        let bench = GeoQueryBench::new();
        assert_eq!(bench.examples().len(), GEOQUERY_SIZE);
    }

    #[test]
    fn pairs_are_distinct() {
        let bench = GeoQueryBench::new();
        let distinct: HashSet<String> = bench
            .examples()
            .iter()
            .map(|e| format!("{}\u{1}{}", e.nl, e.gold))
            .collect();
        assert_eq!(distinct.len(), GEOQUERY_SIZE);
    }

    #[test]
    fn workload_is_deterministic() {
        let a = GeoQueryBench::new();
        let b = GeoQueryBench::new();
        for (x, y) in a.examples().iter().zip(b.examples()) {
            assert_eq!(x.nl, y.nl);
        }
    }

    #[test]
    fn covers_multiple_query_shapes() {
        let bench = GeoQueryBench::new();
        let with_agg = bench
            .examples()
            .iter()
            .filter(|e| e.gold.has_aggregate())
            .count();
        let with_where = bench
            .examples()
            .iter()
            .filter(|e| e.gold.where_pred.is_some())
            .count();
        assert!(with_agg > 20);
        assert!(with_where > 50);
    }
}
