//! The *Patients* benchmark (ParaphraseBench, paper §6.2).
//!
//! "The schema of our new benchmark models a medical database comprised
//! of hospital patients with attributes such as name, age, and disease.
//! ... In total, the benchmark consists of 399 carefully crafted pairs of
//! NL-SQL queries" grouped into seven linguistic-variation categories of
//! 57 queries each: naive, syntactic, morphological, lexical, semantic,
//! missing, and mixed. "Unlike other benchmarks that test for exact
//! syntactic match of SQL queries, Patients tests instead for semantic
//! equivalence."
//!
//! This module reconstructs the benchmark programmatically: 19 base query
//! intents × 3 attribute variants × 7 category phrasings, following the
//! published category examples (§6.2.1).

use dbpal_core::TranslationModel;
use dbpal_engine::Database;
use dbpal_nlp::Lemmatizer;
use dbpal_runtime::{bind_constants, Binding};
use dbpal_schema::{ColumnId, Schema, SchemaBuilder, SemanticDomain, SqlType, TableId, Value};
use dbpal_sql::{exact_set_match, parse_query, Query};
use std::collections::BTreeMap;

/// The seven linguistic-variation categories (§6.2.1), in Table 3's
/// column order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LinguisticCategory {
    /// Direct verbalization of the SQL.
    Naive,
    /// Structural rearrangements (clause fronting).
    Syntactic,
    /// Synonymous words and phrases.
    Lexical,
    /// Inflection-heavy phrasings (affixes, stemming).
    Morphological,
    /// Re-lexicalized phrasings with the same meaning.
    Semantic,
    /// Implicit references; the attribute is never named.
    Missing,
    /// Combinations of the above.
    Mixed,
}

impl LinguisticCategory {
    /// All categories in Table 3 order.
    pub const ALL: [LinguisticCategory; 7] = [
        LinguisticCategory::Naive,
        LinguisticCategory::Syntactic,
        LinguisticCategory::Lexical,
        LinguisticCategory::Morphological,
        LinguisticCategory::Semantic,
        LinguisticCategory::Missing,
        LinguisticCategory::Mixed,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            LinguisticCategory::Naive => "Naive",
            LinguisticCategory::Syntactic => "Syntactic",
            LinguisticCategory::Lexical => "Lexical",
            LinguisticCategory::Morphological => "Morphological",
            LinguisticCategory::Semantic => "Semantic",
            LinguisticCategory::Missing => "Missing",
            LinguisticCategory::Mixed => "Mixed",
        }
    }
}

/// One benchmark query.
#[derive(Debug, Clone)]
pub struct PatientsQuery {
    /// Category of the phrasing.
    pub category: LinguisticCategory,
    /// The NL question (pre-anonymized, contains placeholders).
    pub nl: String,
    /// Gold SQL with placeholders.
    pub gold: Query,
    /// Manually enumerated semantically equivalent alternatives.
    pub alternatives: Vec<Query>,
}

/// The complete benchmark: schema, data, and 399 queries.
pub struct PatientsBenchmark {
    schema: Schema,
    db: Database,
    queries: Vec<PatientsQuery>,
}

/// A substitution set for one variant of a base item.
struct Sub {
    /// Selected attribute: SQL name and NL phrase.
    sel: (&'static str, &'static str),
    /// Filter attribute: SQL name, NL phrase, placeholder name.
    fil: (&'static str, &'static str, &'static str),
}

/// Schema-specific synonym surface for an attribute ("illness" for
/// `disease`). The semantic/missing frames use these, exercising
/// vocabulary a model can only learn from target-schema training data
/// (the paper's §6.2.2 explanation of the DBPal (Full) gains).
fn synonym_of(attr: &str) -> &'static str {
    match attr {
        "age" => "years",
        "disease" => "illness",
        "length_of_stay" => "stay",
        _ => "name",
    }
}

/// One base intent: a SQL pattern and seven NL frames.
struct BaseItem {
    sql: &'static str,
    /// `[naive, syntactic, lexical, morphological, semantic, missing, mixed]`.
    nls: [&'static str; 7],
    alternatives: &'static [&'static str],
}

impl PatientsBenchmark {
    /// Build the benchmark (schema, sample data, 399 queries).
    pub fn new() -> Self {
        let schema = patients_schema();
        let db = populate_patients(&schema);
        let queries = build_queries();
        debug_assert_eq!(queries.len(), 399);
        PatientsBenchmark {
            schema,
            db,
            queries,
        }
    }

    /// The Patients schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The populated benchmark database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// All 399 queries.
    pub fn queries(&self) -> &[PatientsQuery] {
        &self.queries
    }

    /// Queries of one category (57 each).
    pub fn queries_in(&self, category: LinguisticCategory) -> Vec<&PatientsQuery> {
        self.queries
            .iter()
            .filter(|q| q.category == category)
            .collect()
    }

    /// Evaluate a model with the benchmark's semantic-equivalence
    /// criterion; returns per-category tallies plus the overall tally.
    pub fn evaluate(
        &self,
        model: &dyn TranslationModel,
    ) -> (
        BTreeMap<LinguisticCategory, crate::EvalOutcome>,
        crate::EvalOutcome,
    ) {
        let lemmatizer = Lemmatizer::new();
        let mut per: BTreeMap<LinguisticCategory, crate::EvalOutcome> = BTreeMap::new();
        let mut overall = crate::EvalOutcome::default();
        for q in &self.queries {
            let lemmas = lemmatizer.lemmatize_sentence(&q.nl);
            let correct = match model.translate(&lemmas) {
                Some(pred) => self.is_equivalent(&pred, q),
                None => false,
            };
            per.entry(q.category).or_default().record(correct);
            overall.record(correct);
        }
        (per, overall)
    }

    /// Semantic equivalence: exact set match against the gold or any
    /// enumerated alternative, falling back to result equivalence on the
    /// benchmark database with a standard constant binding (§6.2.1).
    pub fn is_equivalent(&self, predicted: &Query, query: &PatientsQuery) -> bool {
        if exact_set_match(predicted, &query.gold) {
            return true;
        }
        if query
            .alternatives
            .iter()
            .any(|alt| exact_set_match(predicted, alt))
        {
            return true;
        }
        // Execution match: bind both with the standard constants and
        // compare result multisets.
        let bindings = standard_bindings(&self.schema);
        let Ok(gold_bound) = bind_constants(&query.gold, &bindings) else {
            return false;
        };
        let Ok(pred_bound) = bind_constants(predicted, &bindings) else {
            return false;
        };
        let (Ok(gold_result), Ok(pred_result)) =
            (self.db.execute(&gold_bound), self.db.execute(&pred_bound))
        else {
            return false;
        };
        gold_result.semantically_equal(&pred_result)
    }
}

impl Default for PatientsBenchmark {
    fn default() -> Self {
        Self::new()
    }
}

/// The benchmark schema.
pub fn patients_schema() -> Schema {
    SchemaBuilder::new("patients_bench")
        .table("patients", |t| {
            t.synonym("people")
                .synonym("cases")
                .column("name", SqlType::Text)
                .column_with("age", SqlType::Integer, |c| {
                    c.domain(SemanticDomain::Age).synonym("years")
                })
                .column_with("disease", SqlType::Text, |c| {
                    c.synonym("illness")
                        .synonym("condition")
                        .synonym("diagnosis")
                })
                .column_with("length_of_stay", SqlType::Integer, |c| {
                    c.domain(SemanticDomain::Duration)
                        .readable("length of stay")
                        .synonym("stay")
                        .synonym("hospital stay")
                })
        })
        .build()
        .expect("patients schema is valid")
}

fn populate_patients(schema: &Schema) -> Database {
    let mut db = Database::new(schema.clone());
    let diseases = ["influenza", "asthma", "diabetes", "migraine"];
    let names = [
        "alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi", "ivan", "judy",
        "mallory", "nick", "olivia", "peggy", "quentin", "rosa", "steve", "trent", "ursula",
        "victor",
    ];
    for (i, name) in names.iter().enumerate() {
        // Ages and stays are strictly increasing so each numeric column
        // has a unique maximum/minimum; otherwise `ORDER BY ... LIMIT 1`
        // and the nested-MAX alternative would legitimately disagree.
        let age = 20 + (i as i64) * 3; // 20..77
        let disease = diseases[i % diseases.len()];
        let stay = 1 + i as i64; // 1..20
        db.insert(
            "patients",
            vec![
                Value::Text(name.to_string()),
                Value::Int(age),
                Value::Text(disease.to_string()),
                Value::Int(stay),
            ],
        )
        .expect("row fits");
    }
    // Ensure the standard binding constants hit real data.
    db.insert(
        "patients",
        vec![
            Value::Text("zoe".into()),
            Value::Int(80),
            Value::Text("influenza".into()),
            Value::Int(10),
        ],
    )
    .expect("row fits");
    db
}

/// The standard constants used when scoring by execution.
fn standard_bindings(schema: &Schema) -> Vec<Binding> {
    let table = TableId(0);
    let col = |name: &str| {
        let (idx, _) = schema.tables()[0].column_by_name(name).expect("col");
        ColumnId::new(table, idx)
    };
    vec![
        Binding {
            placeholder: "AGE".into(),
            value: Value::Int(80),
            column: col("age"),
        },
        Binding {
            placeholder: "AGE_LOW".into(),
            value: Value::Int(30),
            column: col("age"),
        },
        Binding {
            placeholder: "AGE_HIGH".into(),
            value: Value::Int(60),
            column: col("age"),
        },
        Binding {
            placeholder: "DISEASE".into(),
            value: Value::Text("influenza".into()),
            column: col("disease"),
        },
        Binding {
            placeholder: "DISEASE_2".into(),
            value: Value::Text("asthma".into()),
            column: col("disease"),
        },
        Binding {
            placeholder: "NAME".into(),
            value: Value::Text("alice".into()),
            column: col("name"),
        },
        Binding {
            placeholder: "LENGTH_OF_STAY".into(),
            value: Value::Int(10),
            column: col("length_of_stay"),
        },
        Binding {
            placeholder: "LENGTH_OF_STAY_LOW".into(),
            value: Value::Int(3),
            column: col("length_of_stay"),
        },
        Binding {
            placeholder: "LENGTH_OF_STAY_HIGH".into(),
            value: Value::Int(12),
            column: col("length_of_stay"),
        },
    ]
}

/// The 19 base intents. Markers: `{sel}`/`{sel_nl}` selected attribute,
/// `{fil}`/`{fil_nl}` filter attribute, `{PH}` the filter placeholder.
/// NL frame order: naive, syntactic, lexical, morphological, semantic,
/// missing, mixed.
fn base_items() -> Vec<BaseItem> {
    vec![
        // 1. Point lookup.
        BaseItem {
            sql: "SELECT {sel} FROM patients WHERE {fil} = @{PH}",
            nls: [
                "what is the {sel_nl} of patients where {fil_nl} is @{PH}",
                "where {fil_nl} is @{PH} , what is the {sel_nl} of patients",
                "show the {sel_nl} of people whose {fil_nl} is @{PH}",
                "what are the {sel_nl}s of patients whose {fil_nl} equaled @{PH}",
                "for anyone whose {fil_syn} reads @{PH} , tell me their {sel_syn}",
                "what is the {sel_syn} of patients with @{PH}",
                "whose {fil_nl} equaled @{PH} , show those people their {sel_nl}",
            ],
            alternatives: &[],
        },
        // 2. Full rows by filter.
        BaseItem {
            sql: "SELECT * FROM patients WHERE {fil} = @{PH}",
            nls: [
                "show all patients where {fil_nl} is @{PH}",
                "where {fil_nl} is @{PH} , show all patients",
                "display every person whose {fil_nl} is @{PH}",
                "show all of the patients having {fil_nl} equaling @{PH}",
                "bring up the full records for a {fil_syn} of @{PH}",
                "show all patients with @{PH}",
                "having {fil_nl} equaling @{PH} , display every person",
            ],
            alternatives: &[],
        },
        // 3. Average with filter (the paper's running example).
        BaseItem {
            sql: "SELECT AVG({sel}) FROM patients WHERE {fil} = @{PH}",
            nls: [
                "what is the average {sel_nl} of patients where {fil_nl} is @{PH}",
                "where {fil_nl} is @{PH} , what is the average {sel_nl} of patients",
                "what is the mean {sel_nl} of patients where {fil_nl} is @{PH}",
                "what is the averaged {sel_nl} of patients where {fil_nl} equaled @{PH}",
                "on average , how much {sel_syn} do patients with {fil_syn} @{PH} have",
                "what is the average {sel_syn} of patients who are @{PH}",
                "where {fil_nl} equaled @{PH} , what is the mean {sel_nl} of patients",
            ],
            alternatives: &[],
        },
        // 4. Count with filter.
        BaseItem {
            sql: "SELECT COUNT(*) FROM patients WHERE {fil} = @{PH}",
            nls: [
                "how many patients have {fil_nl} @{PH}",
                "with {fil_nl} @{PH} , how many patients are there",
                "what is the number of people with {fil_nl} @{PH}",
                "how many of the patients are having {fil_nl} equaling @{PH}",
                "give the patient count for a {fil_syn} of @{PH}",
                "how many patients have @{PH}",
                "with {fil_nl} equaling @{PH} , what is the number of people",
            ],
            alternatives: &[],
        },
        // 5. Maximum of a column.
        BaseItem {
            sql: "SELECT MAX({sel}) FROM patients",
            nls: [
                "what is the maximum {sel_nl} of patients",
                "of all patients , what is the maximum {sel_nl}",
                "what is the highest {sel_nl} among the people",
                "what is the {sel_nl} maximized over all patients",
                "how high does the {sel_nl} of any patient get",
                "what is the maximum {sel_nl}",
                "of all people , what is the highest {sel_nl}",
            ],
            alternatives: &[],
        },
        // 6. Minimum of a column.
        BaseItem {
            sql: "SELECT MIN({sel}) FROM patients",
            nls: [
                "what is the minimum {sel_nl} of patients",
                "of all patients , what is the minimum {sel_nl}",
                "what is the lowest {sel_nl} among the people",
                "what is the {sel_nl} minimized over all patients",
                "how low does the {sel_nl} of any patient get",
                "what is the minimum {sel_nl}",
                "of all people , what is the lowest {sel_nl}",
            ],
            alternatives: &[],
        },
        // 7. Count all.
        BaseItem {
            sql: "SELECT COUNT(*) FROM patients",
            nls: [
                "how many patients are there",
                "in total , how many patients are there",
                "what is the number of people",
                "how many patients exist",
                "give the total patient headcount",
                "how many are there",
                "in total , what is the number of people",
            ],
            alternatives: &[],
        },
        // 8. Distinct values.
        BaseItem {
            sql: "SELECT DISTINCT {sel} FROM patients",
            nls: [
                "show the distinct {sel_nl} of patients",
                "among all patients , show the distinct {sel_nl}",
                "show the different {sel_nl} of the people",
                "show the {sel_nl}s of patients without duplicates",
                "which {sel_nl} values occur at all among patients",
                "show the distinct {sel_nl}",
                "among all people , show the different {sel_nl}",
            ],
            alternatives: &[],
        },
        // 9. Greater-than filter (domain comparatives).
        BaseItem {
            sql: "SELECT {sel} FROM patients WHERE {fil} > @{PH}",
            nls: [
                "show the {sel_nl} of patients with {fil_nl} greater than @{PH}",
                "with {fil_nl} greater than @{PH} , show the {sel_nl} of patients",
                "show the {sel_nl} of people whose {fil_nl} is above @{PH}",
                "show the {sel_nl}s of patients having {fil_nl} exceeding @{PH}",
                "whenever the {fil_syn} tops @{PH} , report that patient 's {sel_syn}",
                "show the {sel_syn} of patients over @{PH}",
                "whose {fil_nl} is above @{PH} , show those people their {sel_nl}",
            ],
            alternatives: &[],
        },
        // 10. Less-than filter.
        BaseItem {
            sql: "SELECT {sel} FROM patients WHERE {fil} < @{PH}",
            nls: [
                "show the {sel_nl} of patients with {fil_nl} less than @{PH}",
                "with {fil_nl} less than @{PH} , show the {sel_nl} of patients",
                "show the {sel_nl} of people whose {fil_nl} is below @{PH}",
                "show the {sel_nl}s of patients having {fil_nl} undercutting @{PH}",
                "whenever the {fil_syn} stays under @{PH} , report that patient 's {sel_syn}",
                "show the {sel_syn} of patients under @{PH}",
                "whose {fil_nl} is below @{PH} , show those people their {sel_nl}",
            ],
            alternatives: &[],
        },
        // 11. Range (BETWEEN).
        BaseItem {
            sql: "SELECT {sel} FROM patients WHERE {fil} BETWEEN @{PH}_LOW AND @{PH}_HIGH",
            nls: [
                "show the {sel_nl} of patients with {fil_nl} between @{PH}_LOW and @{PH}_HIGH",
                "with {fil_nl} between @{PH}_LOW and @{PH}_HIGH , show the {sel_nl} of patients",
                "show the {sel_nl} of people whose {fil_nl} ranges from @{PH}_LOW to @{PH}_HIGH",
                "show the {sel_nl}s of patients having {fil_nl} bounded by @{PH}_LOW and @{PH}_HIGH",
                "report the {sel_nl} whenever the {fil_nl} falls inside @{PH}_LOW to @{PH}_HIGH",
                "show the {sel_nl} of patients between @{PH}_LOW and @{PH}_HIGH",
                "whose {fil_nl} ranges from @{PH}_LOW to @{PH}_HIGH , show those people their {sel_nl}",
            ],
            alternatives: &[],
        },
        // 12. Sum.
        BaseItem {
            sql: "SELECT SUM({sel}) FROM patients",
            nls: [
                "what is the total {sel_nl} of all patients",
                "over all patients , what is the total {sel_nl}",
                "what is the combined {sel_nl} of the people",
                "what is the {sel_nl} summed across all patients",
                "if you add up every patient 's {sel_syn} , what do you get",
                "what is the total {sel_nl}",
                "over all people , what is the combined {sel_nl}",
            ],
            alternatives: &[],
        },
        // 13. Group count by disease.
        BaseItem {
            sql: "SELECT disease, COUNT(*) FROM patients GROUP BY disease",
            nls: [
                "how many patients are there for each disease",
                "for each disease , how many patients are there",
                "count the people per illness",
                "how many patients exist for each of the diseases",
                "break the patient numbers down by what they suffer from",
                "how many patients for each disease",
                "per illness , how many people exist",
            ],
            alternatives: &[],
        },
        // 14. Group average by disease.
        BaseItem {
            sql: "SELECT disease, AVG({sel}) FROM patients GROUP BY disease",
            nls: [
                "what is the average {sel_nl} of patients for each disease",
                "for each disease , what is the average {sel_nl} of patients",
                "what is the mean {sel_nl} of the people per illness",
                "what is the averaged {sel_nl} of patients for each of the diseases",
                "compare the typical {sel_syn} across the different illnesses",
                "what is the average {sel_nl} for each disease",
                "per illness , what is the mean {sel_nl} of people",
            ],
            alternatives: &[],
        },
        // 15. Superlative row (max), with nested alternative.
        BaseItem {
            sql: "SELECT * FROM patients ORDER BY {sel} DESC LIMIT 1",
            nls: [
                "show the patient with the highest {sel_nl}",
                "of all patients , show the one with the highest {sel_nl}",
                "display the person with the greatest {sel_nl}",
                "show the patient whose {sel_nl} is the very highest",
                "which patient tops the list by {sel_syn}",
                "show the highest {sel_nl} patient",
                "of all people , display the one with the greatest {sel_nl}",
            ],
            alternatives: &["SELECT * FROM patients WHERE {sel} = (SELECT MAX({sel}) FROM patients)"],
        },
        // 16. Superlative row (min), with nested alternative.
        BaseItem {
            sql: "SELECT * FROM patients ORDER BY {sel} ASC LIMIT 1",
            nls: [
                "show the patient with the lowest {sel_nl}",
                "of all patients , show the one with the lowest {sel_nl}",
                "display the person with the smallest {sel_nl}",
                "show the patient whose {sel_nl} is the very lowest",
                "which patient sits at the bottom by {sel_syn}",
                "show the lowest {sel_nl} patient",
                "of all people , display the one with the smallest {sel_nl}",
            ],
            alternatives: &["SELECT * FROM patients WHERE {sel} = (SELECT MIN({sel}) FROM patients)"],
        },
        // 17. Conjunction of two filters.
        BaseItem {
            sql: "SELECT {sel} FROM patients WHERE {fil} = @{PH} AND length_of_stay > @LENGTH_OF_STAY",
            nls: [
                "show the {sel_nl} of patients with {fil_nl} @{PH} and length of stay greater than @LENGTH_OF_STAY",
                "with {fil_nl} @{PH} and length of stay greater than @LENGTH_OF_STAY , show the {sel_nl} of patients",
                "show the {sel_nl} of people having {fil_nl} @{PH} who stay longer than @LENGTH_OF_STAY",
                "show the {sel_nl}s of patients having {fil_nl} equaling @{PH} and staying over @LENGTH_OF_STAY",
                "among those staying past @LENGTH_OF_STAY whose {fil_nl} reads @{PH} , report the {sel_nl}",
                "show the {sel_nl} of patients with @{PH} staying longer than @LENGTH_OF_STAY",
                "who stay longer than @LENGTH_OF_STAY , show the {sel_nl} of people having {fil_nl} @{PH}",
            ],
            alternatives: &[],
        },
        // 18. Disjunction.
        BaseItem {
            sql: "SELECT {sel} FROM patients WHERE disease = @DISEASE OR disease = @DISEASE_2",
            nls: [
                "show the {sel_nl} of patients with disease @DISEASE or disease @DISEASE_2",
                "with disease @DISEASE or @DISEASE_2 , show the {sel_nl} of patients",
                "show the {sel_nl} of people whose illness is @DISEASE or @DISEASE_2",
                "show the {sel_nl}s of patients having diseases @DISEASE or @DISEASE_2",
                "whether it is @DISEASE or @DISEASE_2 , report the {sel_nl} of those patients",
                "show the {sel_nl} of patients with @DISEASE or @DISEASE_2",
                "whose illness is @DISEASE or @DISEASE_2 , show those people their {sel_nl}",
            ],
            alternatives: &["SELECT {sel} FROM patients WHERE disease IN (@DISEASE, @DISEASE_2)"],
        },
        // 19. Inequality filter.
        BaseItem {
            sql: "SELECT {sel} FROM patients WHERE {fil} <> @{PH}",
            nls: [
                "show the {sel_nl} of patients whose {fil_nl} is not @{PH}",
                "whose {fil_nl} is not @{PH} , show the {sel_nl} of patients",
                "show the {sel_nl} of people with a {fil_nl} other than @{PH}",
                "show the {sel_nl}s of patients not having {fil_nl} equaling @{PH}",
                "leave out {fil_nl} @{PH} and report the {sel_nl} of the rest",
                "show the {sel_nl} of patients not @{PH}",
                "with a {fil_nl} other than @{PH} , show those people their {sel_nl}",
            ],
            alternatives: &["SELECT {sel} FROM patients WHERE NOT ({fil} = @{PH})"],
        },
    ]
}

/// The three substitution variants applied to every base item.
fn variants() -> [Sub; 3] {
    [
        Sub {
            sel: ("name", "name"),
            fil: ("age", "age", "AGE"),
        },
        Sub {
            sel: ("length_of_stay", "length of stay"),
            fil: ("age", "age", "AGE"),
        },
        Sub {
            sel: ("age", "age"),
            fil: ("disease", "disease", "DISEASE"),
        },
    ]
}

/// Variants for bases whose selected attribute must be numeric
/// (`AVG`/`SUM` are undefined over text).
fn variants_numeric() -> [Sub; 3] {
    [
        Sub {
            sel: ("length_of_stay", "length of stay"),
            fil: ("age", "age", "AGE"),
        },
        Sub {
            sel: ("age", "age"),
            fil: ("disease", "disease", "DISEASE"),
        },
        Sub {
            sel: ("length_of_stay", "length of stay"),
            fil: ("disease", "disease", "DISEASE"),
        },
    ]
}

fn substitute(text: &str, sub: &Sub, nl: bool) -> String {
    let mut out = text.to_string();
    if nl {
        out = out.replace("{sel_syn}", synonym_of(sub.sel.0));
        out = out.replace("{fil_syn}", synonym_of(sub.fil.0));
        out = out.replace("{sel_nl}", sub.sel.1);
        out = out.replace("{fil_nl}", sub.fil.1);
    }
    out = out.replace("{sel}", sub.sel.0);
    out = out.replace("{fil}", sub.fil.0);
    out = out.replace("{PH}", sub.fil.2);
    out
}

fn build_queries() -> Vec<PatientsQuery> {
    let mut out = Vec::with_capacity(399);
    for base in base_items() {
        let needs_numeric_sel = base.sql.contains("AVG({sel})")
            || base.sql.contains("SUM({sel})")
            || base.sql.contains("ORDER BY {sel}");
        let variant_set = if needs_numeric_sel {
            variants_numeric()
        } else {
            variants()
        };
        for sub in &variant_set {
            // Variant 3 filters on `disease`; numeric comparisons against
            // a text filter would be ill-typed, so variant 3 falls back to
            // the AGE filter on comparison-based bases.
            let sub = if base.sql.contains("{fil} >")
                || base.sql.contains("{fil} <")
                || base.sql.contains("BETWEEN")
            {
                Sub {
                    sel: sub.sel,
                    fil: ("length_of_stay", "length of stay", "LENGTH_OF_STAY"),
                }
            } else {
                Sub {
                    sel: sub.sel,
                    fil: sub.fil,
                }
            };
            let sql_text = substitute(base.sql, &sub, false);
            let gold = parse_query(&sql_text)
                .unwrap_or_else(|e| panic!("bad benchmark SQL `{sql_text}`: {e}"));
            let alternatives: Vec<Query> = base
                .alternatives
                .iter()
                .map(|alt| {
                    let t = substitute(alt, &sub, false);
                    parse_query(&t).unwrap_or_else(|e| panic!("bad alternative `{t}`: {e}"))
                })
                .collect();
            for (i, category) in LinguisticCategory::ALL.into_iter().enumerate() {
                // NL frame order in BaseItem is Table 3's order.
                let frame = base.nls[i];
                out.push(PatientsQuery {
                    category,
                    nl: substitute(frame, &sub, true),
                    gold: gold.clone(),
                    alternatives: alternatives.clone(),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_exactly_399_queries() {
        let bench = PatientsBenchmark::new();
        assert_eq!(bench.queries().len(), 399);
    }

    #[test]
    fn each_category_has_57_queries() {
        let bench = PatientsBenchmark::new();
        for cat in LinguisticCategory::ALL {
            assert_eq!(bench.queries_in(cat).len(), 57, "category {cat:?}");
        }
    }

    #[test]
    fn all_gold_queries_execute() {
        let bench = PatientsBenchmark::new();
        let bindings = standard_bindings(bench.schema());
        for q in bench.queries() {
            let bound = bind_constants(&q.gold, &bindings)
                .unwrap_or_else(|e| panic!("binding failed for `{}`: {e}", q.gold));
            bench
                .database()
                .execute(&bound)
                .unwrap_or_else(|e| panic!("execution failed for `{bound}`: {e}"));
        }
    }

    #[test]
    fn nl_placeholders_match_sql() {
        let bench = PatientsBenchmark::new();
        for q in bench.queries() {
            for ph in q.gold.placeholders() {
                assert!(
                    q.nl.to_uppercase().contains(&format!("@{ph}")),
                    "[{:?}] @{ph} missing from `{}` (gold {})",
                    q.category,
                    q.nl,
                    q.gold
                );
            }
        }
    }

    #[test]
    fn alternatives_are_semantically_equal_to_gold() {
        let bench = PatientsBenchmark::new();
        let bindings = standard_bindings(bench.schema());
        for q in bench.queries() {
            for alt in &q.alternatives {
                let g = bind_constants(&q.gold, &bindings).unwrap();
                let a = bind_constants(alt, &bindings).unwrap();
                let rg = bench.database().execute(&g).unwrap();
                let ra = bench.database().execute(&a).unwrap();
                assert!(
                    rg.semantically_equal(&ra),
                    "alternative `{alt}` differs from gold `{}` on the benchmark data",
                    q.gold
                );
            }
        }
    }

    #[test]
    fn equivalence_accepts_alternative_formulation() {
        let bench = PatientsBenchmark::new();
        // Find a superlative query and test its nested alternative.
        let q = bench
            .queries()
            .iter()
            .find(|q| !q.alternatives.is_empty() && q.gold.limit == Some(1))
            .expect("superlative base exists");
        assert!(bench.is_equivalent(&q.alternatives[0], q));
    }

    #[test]
    fn equivalence_rejects_wrong_query() {
        let bench = PatientsBenchmark::new();
        let q = &bench.queries()[0];
        let wrong = parse_query("SELECT COUNT(*) FROM patients").unwrap();
        assert!(!bench.is_equivalent(&wrong, q));
    }

    #[test]
    fn naive_frames_differ_from_other_categories() {
        let bench = PatientsBenchmark::new();
        let naive: Vec<&str> = bench
            .queries_in(LinguisticCategory::Naive)
            .iter()
            .map(|q| q.nl.as_str())
            .collect();
        for cat in [
            LinguisticCategory::Syntactic,
            LinguisticCategory::Semantic,
            LinguisticCategory::Missing,
        ] {
            let other: Vec<&str> = bench
                .queries_in(cat)
                .iter()
                .map(|q| q.nl.as_str())
                .collect();
            let same = naive.iter().zip(&other).filter(|(a, b)| a == b).count();
            assert_eq!(same, 0, "{cat:?} duplicates naive phrasings");
        }
    }
}
