//! The three training configurations of the paper's evaluation (§6.1.2)
//! and reusable experiment entry points.
//!
//! * **Baseline** — the model trained only on the (simulated) Spider
//!   crowd-annotated training pairs.
//! * **DBPal (Train)** — baseline data *plus* synthetic corpora generated
//!   by the pipeline for the *training* schemas only.
//! * **DBPal (Full)** — additionally, synthetic corpora for the *test*
//!   schemas ("DBPal never sees actual NL-SQL pairs from the test set
//!   during the training process, only the schemas").

use crate::eval::{
    evaluate_coverage, evaluate_spider, pattern_set, CoverageBucket, DifficultyReport, EvalOutcome,
};
use crate::geoquery::GeoQueryBench;
use crate::patients::{LinguisticCategory, PatientsBenchmark};
use crate::spider::{SpiderBench, SpiderConfig};
use dbpal_core::{
    catalog_subset, evaluate_exact, GenerationConfig, RandomSearch, TrainOptions, TrainingCorpus,
    TrainingPipeline, TranslationModel, TrialResult,
};
use dbpal_model::SketchModel;
use std::collections::BTreeMap;
use std::fmt;

/// One of the paper's three training configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Configuration {
    /// Crowd training pairs only.
    Baseline,
    /// + DBPal synthetic data for the training schemas.
    DbpalTrain,
    /// + DBPal synthetic data for the test schemas too.
    DbpalFull,
}

impl Configuration {
    /// The three configurations in table order.
    pub const ALL: [Configuration; 3] = [
        Configuration::Baseline,
        Configuration::DbpalTrain,
        Configuration::DbpalFull,
    ];

    /// Row label matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            Configuration::Baseline => "SyntaxSQLNet",
            Configuration::DbpalTrain => "DBPal (Train)",
            Configuration::DbpalFull => "DBPal (Full)",
        }
    }
}

impl fmt::Display for Configuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The Spider experiment: benchmark + pipeline + model training.
pub struct SpiderExperiment {
    /// The generated benchmark.
    pub bench: SpiderBench,
    /// Pipeline configuration for synthetic data.
    pub gen_config: GenerationConfig,
    /// Model training options.
    pub train_opts: TrainOptions,
}

impl SpiderExperiment {
    /// The full-scale experiment used by the table-reproducing binaries.
    pub fn full() -> Self {
        SpiderExperiment {
            bench: SpiderBench::generate(&SpiderConfig::default()),
            gen_config: GenerationConfig {
                size_slot_fills: 10,
                ..GenerationConfig::default()
            },
            train_opts: TrainOptions {
                epochs: 6,
                seed: 11,
                max_pairs: None,
                verbose: false,
            },
        }
    }

    /// A scaled-down experiment for unit/integration tests.
    pub fn quick() -> Self {
        SpiderExperiment {
            bench: SpiderBench::generate(&SpiderConfig::quick()),
            gen_config: GenerationConfig {
                size_slot_fills: 3,
                num_para: 1,
                num_missing: 1,
                ..GenerationConfig::default()
            },
            train_opts: TrainOptions {
                epochs: 3,
                seed: 11,
                max_pairs: Some(4000),
                verbose: false,
            },
        }
    }

    /// Set the pipeline worker-thread count (0 = all available). Never
    /// changes the generated corpora, only wall-clock time.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.gen_config.threads = threads;
        self
    }

    /// Synthetic corpus for the training schemas.
    pub fn synthetic_train_corpus(&self) -> TrainingCorpus {
        let pipeline = TrainingPipeline::new(self.gen_config.clone());
        pipeline.generate_multi(&self.bench.train_schemas.iter().collect::<Vec<_>>())
    }

    /// Synthetic corpus for the test schemas (only their *schemas* are
    /// used — never the test NL-SQL pairs).
    pub fn synthetic_test_corpus(&self) -> TrainingCorpus {
        let mut config = self.gen_config.clone();
        config.seed ^= 0xF0F0;
        let pipeline = TrainingPipeline::new(config);
        pipeline.generate_multi(&self.bench.test_schemas.iter().collect::<Vec<_>>())
    }

    /// The training corpus for a configuration.
    pub fn corpus_for(&self, config: Configuration) -> TrainingCorpus {
        let mut corpus = TrainingCorpus::new();
        corpus.extend(clone_corpus(&self.bench.train_pairs));
        if config >= Configuration::DbpalTrain {
            corpus.extend(self.synthetic_train_corpus());
        }
        if config == Configuration::DbpalFull {
            corpus.extend(self.synthetic_test_corpus());
        }
        corpus.dedup();
        corpus
    }

    /// Train the sketch model under a configuration.
    pub fn train_model(&self, config: Configuration) -> SketchModel {
        let mut model = SketchModel::new(self.bench.all_schemas());
        let corpus = self.corpus_for(config);
        model.train(&corpus, &self.train_opts);
        model
    }

    /// Reproduce Table 2: per-difficulty accuracy for each configuration.
    pub fn run_table2(&self) -> BTreeMap<Configuration, DifficultyReport> {
        Configuration::ALL
            .into_iter()
            .map(|c| {
                let model = self.train_model(c);
                (c, evaluate_spider(&model, &self.bench.test_examples))
            })
            .collect()
    }

    /// Reproduce Table 4: pattern-coverage breakdown per configuration.
    pub fn run_table4(&self) -> BTreeMap<Configuration, BTreeMap<CoverageBucket, EvalOutcome>> {
        let spider_patterns = self.bench.train_pattern_set();
        // DBPal's pattern set comes from its synthetic data (train side —
        // the seed templates are schema-independent, so the pattern space
        // is the same for the Full configuration).
        let dbpal_patterns = pattern_set(&self.synthetic_train_corpus());
        Configuration::ALL
            .into_iter()
            .map(|c| {
                let model = self.train_model(c);
                (
                    c,
                    evaluate_coverage(
                        &model,
                        &self.bench.test_examples,
                        &spider_patterns,
                        &dbpal_patterns,
                    ),
                )
            })
            .collect()
    }
}

/// Clone a corpus (TrainingCorpus is move-oriented; experiments need the
/// crowd pairs in every configuration).
fn clone_corpus(corpus: &TrainingCorpus) -> TrainingCorpus {
    TrainingCorpus::from_pairs(corpus.pairs().to_vec())
}

/// The Patients experiment (Table 3, Figure 3): the Spider-like corpus
/// plays the role of the generic training data, and DBPal (Full)
/// additionally generates synthetic data for the Patients schema itself.
pub struct PatientsExperiment {
    /// The Spider-side experiment supplying generic training data.
    pub spider: SpiderExperiment,
    /// The Patients benchmark.
    pub patients: PatientsBenchmark,
}

impl PatientsExperiment {
    /// Full-scale experiment.
    pub fn full() -> Self {
        PatientsExperiment {
            spider: SpiderExperiment::full(),
            patients: PatientsBenchmark::new(),
        }
    }

    /// Scaled-down experiment for tests.
    pub fn quick() -> Self {
        PatientsExperiment {
            spider: SpiderExperiment::quick(),
            patients: PatientsBenchmark::new(),
        }
    }

    /// Set the pipeline worker-thread count (0 = all available). Never
    /// changes the generated corpora, only wall-clock time.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.spider.gen_config.threads = threads;
        self
    }

    /// Synthetic corpus for the Patients schema, optionally restricted to
    /// a fraction of the seed templates (Figure 3).
    pub fn synthetic_patients_corpus(&self, template_fraction: f64) -> TrainingCorpus {
        self.synthetic_patients_corpus_seeded(template_fraction, 0xF163)
    }

    /// As [`Self::synthetic_patients_corpus`] with an explicit subset
    /// seed (Figure 3 averages over several random subsets).
    pub fn synthetic_patients_corpus_seeded(
        &self,
        template_fraction: f64,
        subset_seed: u64,
    ) -> TrainingCorpus {
        let mut config = self.spider.gen_config.clone();
        config.seed ^= 0xBEEF;
        let pipeline = TrainingPipeline::new(config);
        let templates = catalog_subset(template_fraction, subset_seed);
        pipeline.generate_with_templates(self.patients.schema(), &templates)
    }

    /// The training corpus for a configuration.
    pub fn corpus_for(&self, config: Configuration) -> TrainingCorpus {
        let mut corpus = TrainingCorpus::new();
        corpus.extend(clone_corpus(&self.spider.bench.train_pairs));
        if config >= Configuration::DbpalTrain {
            corpus.extend(self.spider.synthetic_train_corpus());
        }
        if config == Configuration::DbpalFull {
            corpus.extend(self.synthetic_patients_corpus(1.0));
        }
        corpus.dedup();
        corpus
    }

    /// Train the sketch model (targeting the Patients schema) on a
    /// configuration's corpus.
    pub fn train_model(&self, config: Configuration) -> SketchModel {
        let mut model = SketchModel::new(vec![self.patients.schema().clone()]);
        let corpus = self.corpus_for(config);
        model.train(&corpus, &self.spider.train_opts);
        model
    }

    /// Reproduce Table 3: per-category accuracy for each configuration.
    pub fn run_table3(
        &self,
    ) -> BTreeMap<Configuration, (BTreeMap<LinguisticCategory, EvalOutcome>, EvalOutcome)> {
        Configuration::ALL
            .into_iter()
            .map(|c| {
                let model = self.train_model(c);
                (c, self.patients.evaluate(&model))
            })
            .collect()
    }

    /// Reproduce Figure 3: overall Patients accuracy for each seed-
    /// template fraction. Following §6.3.2, every run trains "the same
    /// SyntaxSQLNet model using the previously mentioned Spider training
    /// data" plus Patients-schema data generated from a random template
    /// subset — so the 0% point is the plain Spider-trained baseline.
    pub fn run_fig3(&self, fractions: &[f64]) -> Vec<(f64, f64)> {
        let base = clone_corpus(&self.spider.bench.train_pairs);
        // Random subsets vary a lot at small fractions; average over a
        // few subset seeds as the random-selection analogue of the
        // paper's single draw.
        const SUBSET_SEEDS: [u64; 3] = [0xF163, 0xF164, 0xF165];
        fractions
            .iter()
            .map(|&fraction| {
                let seeds: &[u64] = if fraction > 0.0 && fraction < 1.0 {
                    &SUBSET_SEEDS
                } else {
                    &SUBSET_SEEDS[..1]
                };
                let mut total = 0.0;
                for &seed in seeds {
                    let mut corpus = clone_corpus(&base);
                    if fraction > 0.0 {
                        corpus.extend(self.synthetic_patients_corpus_seeded(fraction, seed));
                    }
                    corpus.dedup();
                    let mut model = SketchModel::new(vec![self.patients.schema().clone()]);
                    model.train(&corpus, &self.spider.train_opts);
                    let (_, overall) = self.patients.evaluate(&model);
                    total += overall.accuracy();
                }
                (fraction, total / seeds.len() as f64)
            })
            .collect()
    }
}

/// The hyperparameter-tuning experiment (Figure 4): random search over ϕ,
/// evaluating `Generate(D, T, ϕ)` with D the GeoQuery schema and T the
/// GeoQuery-like workload (§6.3.3).
pub struct GeoTuningExperiment {
    /// The tuning workload.
    pub geo: GeoQueryBench,
    /// Model training options per trial.
    pub train_opts: TrainOptions,
}

impl GeoTuningExperiment {
    /// Build the experiment.
    pub fn new() -> Self {
        GeoTuningExperiment {
            geo: GeoQueryBench::new(),
            train_opts: TrainOptions {
                epochs: 4,
                seed: 17,
                max_pairs: Some(6000),
                verbose: false,
            },
        }
    }

    /// One trial: generate with ϕ, train, return accuracy on T.
    pub fn generate(&self, config: &GenerationConfig) -> f64 {
        // The outer random search already saturates the cores when run
        // through `run_parallel`, so each trial's pipeline runs
        // single-threaded to avoid oversubscription.
        let config = GenerationConfig {
            threads: 1,
            ..config.clone()
        };
        let pipeline = TrainingPipeline::new(config);
        let corpus = pipeline.generate(self.geo.schema());
        let mut model = SketchModel::new(vec![self.geo.schema().clone()]);
        model.train(&corpus, &self.train_opts);
        evaluate_exact(&model, self.geo.examples())
    }

    /// Run the full random search (the paper samples 68 candidates).
    pub fn run(&self, trials: usize, seed: u64) -> Vec<TrialResult> {
        RandomSearch::new(trials, seed).run(|cfg| self.generate(cfg))
    }

    /// Parallel random search: trials are independent `Generate(D, T, ϕ)`
    /// runs, so they scale across cores.
    pub fn run_parallel(&self, trials: usize, seed: u64, threads: usize) -> Vec<TrialResult> {
        RandomSearch::new(trials, seed).run_parallel(threads, |cfg| self.generate(cfg))
    }
}

impl Default for GeoTuningExperiment {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configurations_are_ordered() {
        assert!(Configuration::Baseline < Configuration::DbpalTrain);
        assert!(Configuration::DbpalTrain < Configuration::DbpalFull);
    }

    #[test]
    fn corpora_grow_across_configurations() {
        let exp = SpiderExperiment::quick();
        let base = exp.corpus_for(Configuration::Baseline).len();
        let train = exp.corpus_for(Configuration::DbpalTrain).len();
        let full = exp.corpus_for(Configuration::DbpalFull).len();
        assert!(base < train, "{base} !< {train}");
        assert!(train < full, "{train} !< {full}");
    }

    #[test]
    fn baseline_corpus_is_crowd_only() {
        let exp = SpiderExperiment::quick();
        let corpus = exp.corpus_for(Configuration::Baseline);
        assert!(corpus
            .pairs()
            .iter()
            .all(|p| p.provenance == dbpal_core::Provenance::Manual));
    }

    #[test]
    fn quick_experiment_shows_dbpal_improvement() {
        // The headline claim at reduced scale: DBPal (Full) must beat the
        // baseline on overall accuracy.
        let exp = SpiderExperiment::quick();
        let baseline = evaluate_spider(
            &exp.train_model(Configuration::Baseline),
            &exp.bench.test_examples,
        );
        let full = evaluate_spider(
            &exp.train_model(Configuration::DbpalFull),
            &exp.bench.test_examples,
        );
        assert!(
            full.overall.accuracy() > baseline.overall.accuracy(),
            "full {} !> baseline {}",
            full.overall,
            baseline.overall
        );
    }
}
