#![warn(missing_docs)]
//! Benchmarks and evaluation harness for DBPal.
//!
//! This crate builds every workload the paper evaluates on (§6):
//!
//! * [`spider`] — a Spider-shaped multi-domain benchmark: many schemas
//!   with an exclusive train/test split, gold NL–SQL pairs in four
//!   hardness tiers, and held-out phrasing styles in the test split
//!   (DESIGN.md substitution #2).
//! * [`patients`] — the *Patients* linguistic-robustness benchmark
//!   (ParaphraseBench): 399 queries in seven categories (§6.2).
//! * [`geoquery`] — the GeoQuery-like tuning workload (280 pairs, §6.3.3).
//! * [`eval`] — accuracy scoring: exact set match, semantic equivalence
//!   via result comparison, per-difficulty and pattern-coverage
//!   breakdowns.
//! * [`runner`] — the three training configurations of §6.1.2 (baseline,
//!   DBPal (Train), DBPal (Full)) and entry points that regenerate each
//!   table/figure.

pub mod crowd;
pub mod domains;
pub mod eval;
pub mod geoquery;
pub mod patients;
pub mod runner;
pub mod spider;

pub use domains::{populate, SchemaGenerator};
pub use eval::{CoverageBucket, DifficultyReport, EvalOutcome};
pub use geoquery::GeoQueryBench;
pub use patients::{LinguisticCategory, PatientsBenchmark};
pub use runner::{Configuration, GeoTuningExperiment, PatientsExperiment, SpiderExperiment};
pub use spider::{SpiderBench, SpiderConfig, SpiderExample};
