//! The Spider-shaped benchmark (DESIGN.md substitution #2).
//!
//! Mirrors the properties of Spider the paper's evaluation relies on
//! (§6.1.1): many schemas across distinct domains; *exclusive* train/test
//! schema split ("a database schema is used exclusively for either
//! training or testing, but not both"); gold pairs tiered by SQL
//! component count; and crowd-style NL phrasings, with additional
//! held-out styles appearing only in the test split.

use crate::crowd;
use crate::domains::SchemaGenerator;
use dbpal_core::{
    GenerationConfig, Generator, Provenance, SeedTemplate, TrainingCorpus, TrainingPair,
};
use dbpal_nlp::Lemmatizer;
use dbpal_schema::Schema;
use dbpal_sql::{Query, QueryPattern};
use std::collections::HashSet;

/// Spider-benchmark generation parameters.
#[derive(Debug, Clone)]
pub struct SpiderConfig {
    /// Number of training schemas (distinct domains).
    pub train_schemas: usize,
    /// Number of test schemas (distinct domains, disjoint from training).
    pub test_schemas: usize,
    /// Crowd-pair instances per template per training schema.
    pub train_instances: usize,
    /// Test-example instances per template per test schema.
    pub test_instances: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SpiderConfig {
    fn default() -> Self {
        SpiderConfig {
            train_schemas: 8,
            test_schemas: 4,
            train_instances: 4,
            test_instances: 2,
            seed: 2020,
        }
    }
}

impl SpiderConfig {
    /// A reduced configuration for unit tests.
    pub fn quick() -> Self {
        SpiderConfig {
            train_schemas: 3,
            test_schemas: 2,
            train_instances: 2,
            test_instances: 1,
            seed: 7,
        }
    }
}

/// One test example.
#[derive(Debug, Clone)]
pub struct SpiderExample {
    /// Index into [`SpiderBench::test_schemas`].
    pub schema_idx: usize,
    /// The (pre-anonymized) NL question.
    pub nl: String,
    /// Gold SQL with placeholders.
    pub gold: Query,
    /// Spider hardness tier.
    pub difficulty: dbpal_sql::Difficulty,
}

/// The generated benchmark.
#[derive(Debug, Clone)]
pub struct SpiderBench {
    /// Training-split schemas.
    pub train_schemas: Vec<Schema>,
    /// Test-split schemas (domains disjoint from the training split).
    pub test_schemas: Vec<Schema>,
    /// Crowd-annotated training pairs (lemmatized), provenance `Manual`.
    pub train_pairs: TrainingCorpus,
    /// Test examples across the test schemas.
    pub test_examples: Vec<SpiderExample>,
}

impl SpiderBench {
    /// Generate the benchmark.
    pub fn generate(cfg: &SpiderConfig) -> SpiderBench {
        let mut schema_gen = SchemaGenerator::new(cfg.seed);
        let total = cfg.train_schemas + cfg.test_schemas;
        assert!(
            total <= schema_gen.domain_count(),
            "requested {total} schemas but only {} disjoint domains exist",
            schema_gen.domain_count()
        );
        let mut all = schema_gen.generate(total);
        let test_schemas = all.split_off(cfg.train_schemas);
        let train_schemas = all;

        let lemmatizer = Lemmatizer::new();
        // Crowd training pairs: crowd style A on the training schemas.
        let train_templates = crowd::train_catalog();
        let mut train_pairs = TrainingCorpus::new();
        for (i, schema) in train_schemas.iter().enumerate() {
            let pairs = instantiate_catalog(
                schema,
                &train_templates,
                cfg.train_instances,
                cfg.seed ^ (0x51D3 + i as u64),
            );
            for (nl, sql, tmpl) in pairs {
                let mut pair = TrainingPair::new(nl, sql, tmpl, Provenance::Manual);
                pair.nl_lemmas = lemmatizer.lemmatize_sentence(&pair.nl);
                train_pairs.push(pair);
            }
        }
        train_pairs.dedup();

        // Test examples: crowd style A + held-out style B + uncovered
        // classes, on the test schemas.
        let mut test_templates = crowd::train_catalog();
        test_templates.extend(crowd::test_extra_catalog());
        let mut test_examples = Vec::new();
        let mut seen = HashSet::new();
        for (schema_idx, schema) in test_schemas.iter().enumerate() {
            let pairs = instantiate_catalog(
                schema,
                &test_templates,
                cfg.test_instances,
                cfg.seed ^ (0x7E57 + schema_idx as u64),
            );
            for (nl, gold, _) in pairs {
                if !seen.insert(format!("{nl}\u{1}{gold}")) {
                    continue;
                }
                let difficulty = QueryPattern::of(&gold).difficulty();
                test_examples.push(SpiderExample {
                    schema_idx,
                    nl,
                    gold,
                    difficulty,
                });
            }
        }

        SpiderBench {
            train_schemas,
            test_schemas,
            train_pairs,
            test_examples,
        }
    }

    /// All schemas (train then test), for model construction.
    pub fn all_schemas(&self) -> Vec<Schema> {
        let mut out = self.train_schemas.clone();
        out.extend(self.test_schemas.clone());
        out
    }

    /// Pattern signatures present in the crowd training pairs (the
    /// "Spider training set" side of Table 4).
    pub fn train_pattern_set(&self) -> HashSet<String> {
        self.train_pairs
            .pairs()
            .iter()
            .map(|p| QueryPattern::of(&p.sql).signature().to_string())
            .collect()
    }
}

/// Instantiate each template up to `instances` times against a schema.
fn instantiate_catalog(
    schema: &Schema,
    templates: &[SeedTemplate],
    instances: usize,
    seed: u64,
) -> Vec<(String, Query, String)> {
    let config = GenerationConfig {
        size_slot_fills: instances,
        join_boost: 1.0,
        agg_boost: 1.0,
        nest_boost: 1.0,
        group_by_p: 0.0,
        num_para: 0,
        num_missing: 0,
        rand_drop_p: 0.0,
        seed,
        ..GenerationConfig::default()
    };
    let mut generator = Generator::new(schema, &config);
    let mut out = Vec::new();
    let mut seen = HashSet::new();
    for tmpl in templates {
        let mut produced = 0;
        let mut attempts = instances * 6 + 6;
        while produced < instances && attempts > 0 {
            attempts -= 1;
            let Some((nl, sql)) = generator.instantiate(tmpl) else {
                continue;
            };
            if seen.insert(format!("{nl}\u{1}{sql}")) {
                out.push((nl, sql, tmpl.id.clone()));
                produced += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbpal_sql::QueryPattern;

    #[test]
    fn generates_disjoint_schema_splits() {
        let bench = SpiderBench::generate(&SpiderConfig::quick());
        let train: HashSet<&str> = bench.train_schemas.iter().map(|s| s.name()).collect();
        let test: HashSet<&str> = bench.test_schemas.iter().map(|s| s.name()).collect();
        assert!(train.is_disjoint(&test));
        // Domains disjoint too (names are `domain_i`).
        let dom = |n: &str| n.rsplit_once('_').map(|(d, _)| d.to_string()).unwrap();
        let train_d: HashSet<String> = train.iter().map(|n| dom(n)).collect();
        let test_d: HashSet<String> = test.iter().map(|n| dom(n)).collect();
        assert!(train_d.is_disjoint(&test_d));
    }

    #[test]
    fn train_pairs_are_lemmatized_manual() {
        let bench = SpiderBench::generate(&SpiderConfig::quick());
        assert!(bench.train_pairs.len() > 50);
        for p in bench.train_pairs.pairs() {
            assert_eq!(p.provenance, Provenance::Manual);
            assert!(!p.nl_lemmas.is_empty());
        }
    }

    #[test]
    fn test_examples_cover_all_difficulties() {
        let bench = SpiderBench::generate(&SpiderConfig::default());
        let difficulties: HashSet<_> = bench.test_examples.iter().map(|e| e.difficulty).collect();
        assert!(difficulties.len() >= 3, "only {difficulties:?}");
    }

    #[test]
    fn test_split_contains_unseen_patterns() {
        let bench = SpiderBench::generate(&SpiderConfig::default());
        let train_patterns = bench.train_pattern_set();
        let unseen = bench
            .test_examples
            .iter()
            .filter(|e| !train_patterns.contains(QueryPattern::of(&e.gold).signature()))
            .count();
        assert!(unseen > 0, "no held-out patterns in the test split");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SpiderBench::generate(&SpiderConfig::quick());
        let b = SpiderBench::generate(&SpiderConfig::quick());
        assert_eq!(a.test_examples.len(), b.test_examples.len());
        for (x, y) in a.test_examples.iter().zip(&b.test_examples) {
            assert_eq!(x.nl, y.nl);
            assert_eq!(x.gold, y.gold);
        }
    }

    #[test]
    fn gold_queries_parse_and_have_placeholder_consistency() {
        let bench = SpiderBench::generate(&SpiderConfig::quick());
        for e in &bench.test_examples {
            for ph in e.gold.placeholders() {
                assert!(
                    e.nl.to_uppercase().contains(&format!("@{ph}")),
                    "placeholder @{ph} missing from `{}`",
                    e.nl
                );
            }
        }
    }
}
