//! "Crowd" phrasing templates: the human-annotation substitute.
//!
//! The real Spider corpus is crowd-sourced; its questions use phrasings
//! DBPal's seed templates never produce. This module defines two template
//! catalogs with deliberately different sentence frames:
//!
//! * [`train_catalog`] — the phrasing styles of the (simulated) Spider
//!   *training* annotations. It also covers query classes DBPal's seed
//!   catalog lacks (`NOT LIKE`, `COUNT(DISTINCT)`) so Table 4's
//!   "Spider-only" bucket is populated.
//! * [`test_extra_catalog`] — *held-out* phrasing styles plus query
//!   classes no training corpus covers (`TopN`, `NOT BETWEEN` → the
//!   "Unseen" bucket) and classes only DBPal covers (`IS NULL`,
//!   `EXISTS` → the "DBPal-only" bucket).
//!
//! Both catalogs are instantiated by the ordinary
//! [`dbpal_core::Generator`], which guarantees well-formed SQL.

use dbpal_core::{PatternCategory, QueryClass, SeedTemplate};

fn t(id: &str, class: QueryClass, pattern: &'static str) -> SeedTemplate {
    SeedTemplate {
        id: format!("crowd.{id}"),
        class,
        pattern,
        category: PatternCategory::Direct,
    }
}

/// Phrasing styles of the simulated Spider training annotations.
pub fn train_catalog() -> Vec<SeedTemplate> {
    use QueryClass::*;
    vec![
        // -- common classes, crowd style A --
        t("sa0", SelectAll, "could you list all the {table} please"),
        t("sa1", SelectAll, "i would like to see every {table}"),
        t("saw0", SelectAllWhere, "could you show the {table} that have {filter}"),
        t("saw1", SelectAllWhere, "please find the {table} with {filter}"),
        t("sc0", SelectCol, "could you tell me the {att} of each {table}"),
        t("sc1", SelectCol, "i need the {att} of the {table}"),
        t("scw0", SelectColWhere, "could you tell me the {att} of the {table} with {filter}"),
        t("scw1", SelectColWhere, "please give the {att} of those {table} that have {filter}"),
        t("scw2", SelectColWhere, "i would like to know the {att} of {table} with {filter}"),
        t("scw3", SelectColWhere, "what would be the {att} of a {table} with {filter}"),
        t("scw2f", SelectColWhere2, "could you find the {att} of {table} with {filter} and also {filter2}"),
        t("scols", SelectColsWhere, "please list the {att} plus the {att2} of {table} with {filter}"),
        t("dst0", Distinct, "could you list the {distinct} {att} among the {table}"),
        t("agg0", Agg, "could you work out {agg} {att} across the {table}"),
        t("agg1", Agg, "i want to know {agg} {att} of the {table}"),
        t("aggw0", AggWhere, "could you work out {agg} {att} of the {table} with {filter}"),
        t("aggw1", AggWhere, "what would be {agg} {att} for {table} that have {filter}"),
        t("cnt0", CountAll, "could you count how many {table} there are"),
        t("cnt1", CountAll, "what would be the total number of {table}"),
        t("cntw0", CountWhere, "could you count the {table} that have {filter}"),
        t("cntw1", CountWhere, "how many of the {table} have {filter}"),
        t("grp0", GroupBy, "could you report {agg} {att} of the {table} {grpphrase} {group}"),
        t("grp1", GroupBy, "i want {agg} {att} broken out {grpphrase} {group} of the {table}"),
        t("grpc0", GroupByCount, "could you count the {table} {grpphrase} {group}"),
        t("hav0", GroupByHaving, "could you find the {group} that have more than @CNT {table}"),
        t("top0", TopOne, "could you find the {table} that has {supmax} {natt}"),
        t("top1", TopOne, "which single {table} has {supmax} {natt}"),
        t("bot0", BottomOne, "could you find the {table} that has {supmin} {natt}"),
        t("ord0", OrderBy { desc: false }, "could you list the {att} of the {table} {ordasc} {natt}"),
        t("ord1", OrderBy { desc: true }, "could you list the {att} of the {table} {orddesc} {natt}"),
        t("btw0", Between, "could you show the {att} of {table} whose {natt} lies between @LOW and @HIGH"),
        t("inl0", InList, "could you show the {att} of {table} whose {catt} is either @V1 or @V2"),
        t("neq0", Neq, "could you show the {att} of {table} whose {catt} is not @V1"),
        t("dis0", Disjunction, "could you show the {att} of {table} that have {filter} or instead {filter2}"),
        t("lik0", Like, "could you show the {att} of {table} whose {tatt} is {like} @PAT"),
        t("js0", JoinSelect, "could you give the {attq} of the {table} belonging to the {table2} with {filter2q}"),
        t("js1", JoinSelect, "i want the {attq} of every {table} whose {table2} has {filter2q}"),
        t("ja0", JoinAgg, "could you work out {agg} {attq} of the {table} of the {table2} with {filter2q}"),
        t("jg0", JoinGroupBy, "could you report {agg} {attq} of the {table} {grpphrase} {groupq} of the {table2}"),
        t("nmax0", NestedScalar { max: true }, "among {table} with {filter} , could you find the one with the very highest {natt} and give its {att}"),
        t("nmin0", NestedScalar { max: false }, "among {table} with {filter} , could you find the one with the very lowest {natt} and give its {att}"),
        t("nin0", NestedIn, "could you show the {att} of {table} that also shows up in {table2} with {filter2q}"),
        // -- Spider-only classes (no DBPal seed template) --
        t("nlik0", NotLike, "could you show the {att} of {table} whose {tatt} is not {like} @PAT"),
        t("nlik1", NotLike, "please list the {att} of {table} where the {tatt} does not look like @PAT"),
        t("cdst0", CountDistinct, "could you count the {distinct} {att} of the {table}"),
        t("cdst1", CountDistinct, "how many different {att} do the {table} have in total"),
    ]
}

/// Held-out phrasing styles plus uncovered classes for the test split.
pub fn test_extra_catalog() -> Vec<SeedTemplate> {
    use QueryClass::*;
    vec![
        // -- common classes, held-out crowd style B --
        t("xsa0", SelectAll, "pull up the complete list of {table}"),
        t(
            "xsaw0",
            SelectAllWhere,
            "out of all {table} , pull up those with {filter}",
        ),
        t(
            "xscw0",
            SelectColWhere,
            "regarding {table} with {filter} , report the {att}",
        ),
        t(
            "xscw1",
            SelectColWhere,
            "the {att} is needed for any {table} showing {filter}",
        ),
        t("xagg0", Agg, "report {agg} {att} taken over every {table}"),
        t(
            "xaggw0",
            AggWhere,
            "restricted to {table} with {filter} , report {agg} {att}",
        ),
        t("xcnt0", CountAll, "report the headcount of {table}"),
        t(
            "xcntw0",
            CountWhere,
            "report the tally of {table} showing {filter}",
        ),
        t(
            "xgrp0",
            GroupBy,
            "report {agg} {att} of {table} , one figure {grpphrase} {group}",
        ),
        t(
            "xtop0",
            TopOne,
            "report the {table} holding {supmax} {natt}",
        ),
        t(
            "xbtw0",
            Between,
            "report the {att} of {table} whose {natt} falls in the @LOW to @HIGH range",
        ),
        t(
            "xjs0",
            JoinSelect,
            "report the {attq} of {table} attached to the {table2} with {filter2q}",
        ),
        t(
            "xja0",
            JoinAgg,
            "report {agg} {attq} of the {table} attached to the {table2} with {filter2q}",
        ),
        t(
            "xnmax0",
            NestedScalar { max: true },
            "restricted to {table} with {filter} , report the {att} of the one with peak {natt}",
        ),
        // -- Spider-only classes in held-out style --
        t(
            "xnlik0",
            NotLike,
            "report the {att} of {table} whose {tatt} fails to match @PAT",
        ),
        t(
            "xcdst0",
            CountDistinct,
            "report how many distinct {att} appear among the {table}",
        ),
        // -- DBPal-only classes (covered by seed templates, absent from
        //    the crowd training annotations) --
        t(
            "xnull0",
            IsNull,
            "report the {att} of {table} {nullphrase} {tatt}",
        ),
        t(
            "xexi0",
            NestedExists,
            "report the {att} of all {table} whenever some {table2} has {filter2q}",
        ),
        // -- Unseen classes (in no training corpus) --
        t(
            "xtopn0",
            TopN { limit: 3 },
            "report the @N {table} holding {supmax} {natt}",
        ),
        t(
            "xnbtw0",
            NotBetween,
            "report the {att} of {table} whose {natt} falls outside the @LOW to @HIGH range",
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn catalogs_have_unique_ids() {
        let mut ids = HashSet::new();
        for tmpl in train_catalog().iter().chain(test_extra_catalog().iter()) {
            assert!(ids.insert(tmpl.id.clone()), "duplicate id {}", tmpl.id);
        }
    }

    #[test]
    fn train_catalog_covers_spider_only_classes() {
        let classes: HashSet<_> = train_catalog().iter().map(|t| t.class).collect();
        assert!(classes.contains(&QueryClass::NotLike));
        assert!(classes.contains(&QueryClass::CountDistinct));
        // But not the DBPal-only classes.
        assert!(!classes.contains(&QueryClass::IsNull));
        assert!(!classes.contains(&QueryClass::NestedExists));
    }

    #[test]
    fn test_extra_covers_unseen_classes() {
        let classes: HashSet<_> = test_extra_catalog().iter().map(|t| t.class).collect();
        assert!(classes.contains(&QueryClass::TopN { limit: 3 }));
        assert!(classes.contains(&QueryClass::NotBetween));
        assert!(classes.contains(&QueryClass::IsNull));
    }

    #[test]
    fn crowd_phrasings_disjoint_from_seed_patterns() {
        let seed: HashSet<&str> = dbpal_core::catalog().iter().map(|t| t.pattern).collect();
        for tmpl in train_catalog().iter().chain(test_extra_catalog().iter()) {
            assert!(
                !seed.contains(tmpl.pattern),
                "crowd pattern duplicates a seed template: {}",
                tmpl.pattern
            );
        }
    }

    #[test]
    fn crowd_patterns_instantiate() {
        use dbpal_core::{GenerationConfig, Generator};
        use dbpal_schema::{SchemaBuilder, SemanticDomain, SqlType};
        let schema = SchemaBuilder::new("hospital")
            .table("patients", |t| {
                t.column("name", SqlType::Text)
                    .column_with("age", SqlType::Integer, |c| c.domain(SemanticDomain::Age))
                    .column("disease", SqlType::Text)
                    .column("doctor_id", SqlType::Integer)
            })
            .table("doctors", |t| {
                t.column("id", SqlType::Integer)
                    .column("name", SqlType::Text)
                    .column("specialty", SqlType::Text)
            })
            .foreign_key("patients", "doctor_id", "doctors", "id")
            .build()
            .unwrap();
        let config = GenerationConfig::small();
        let mut g = Generator::new(&schema, &config);
        for tmpl in train_catalog().iter().chain(test_extra_catalog().iter()) {
            let mut ok = false;
            for _ in 0..12 {
                if let Some((nl, sql)) = g.instantiate(tmpl) {
                    assert!(!nl.contains('{'), "unfilled slot in {nl} ({})", tmpl.id);
                    assert!(dbpal_sql::parse_query(&sql.to_string()).is_ok());
                    ok = true;
                    break;
                }
            }
            assert!(ok, "template {} never instantiated", tmpl.id);
        }
    }
}
