//! Hermeticity guard: the workspace must never depend on the crates.io
//! registry (or any git source). Every dependency in every manifest has
//! to be an in-repo `path` crate — that is what keeps
//! `cargo build --offline` working from a clean checkout with an empty
//! registry cache. This test scans each `Cargo.toml` by hand (no TOML
//! crate, for the same reason) and fails if a registry dependency
//! silently returns.

use std::fs;
use std::path::{Path, PathBuf};

/// All Cargo.toml files in the workspace: the root manifest plus one
/// per `crates/*` member.
fn workspace_manifests() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut manifests = vec![root.join("Cargo.toml")];
    for entry in fs::read_dir(root.join("crates")).expect("crates dir") {
        let dir = entry.expect("dir entry").path();
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            manifests.push(manifest);
        }
    }
    assert!(manifests.len() >= 10, "workspace members went missing");
    manifests
}

/// True for section headers that declare dependencies, including
/// target-specific tables like
/// `[target.'cfg(unix)'.dependencies]`.
fn is_dependency_section(header: &str) -> bool {
    header.ends_with("dependencies]")
}

/// Check one `name = …` line inside a dependency section. Returns an
/// error description for anything that is not a pure path dependency.
fn check_dependency_line(line: &str) -> Result<(), String> {
    // `foo.workspace = true` inherits from [workspace.dependencies],
    // which this test also scans — so inheritance itself is fine.
    if line.contains(".workspace") {
        return Ok(());
    }
    let Some((name, spec)) = line.split_once('=') else {
        return Err("unparseable dependency line".to_string());
    };
    let (name, spec) = (name.trim(), spec.trim());
    if spec.starts_with('"') {
        return Err(format!(
            "`{name}` is a registry dependency (bare version string)"
        ));
    }
    if spec.starts_with('{') {
        for banned in ["version", "git", "registry"] {
            if spec.contains(&format!("{banned} =")) || spec.contains(&format!("{banned}=")) {
                return Err(format!("`{name}` uses `{banned}` (non-path source)"));
            }
        }
        if !spec.contains("path") {
            return Err(format!("`{name}` has no `path` key"));
        }
        return Ok(());
    }
    Err(format!(
        "`{name}` has an unrecognized dependency spec: {spec}"
    ))
}

#[test]
fn workspace_has_only_path_dependencies() {
    let mut violations = Vec::new();
    for manifest in workspace_manifests() {
        let text = fs::read_to_string(&manifest)
            .unwrap_or_else(|e| panic!("read {}: {e}", manifest.display()));
        let mut in_deps = false;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') {
                in_deps = is_dependency_section(line);
                continue;
            }
            if in_deps {
                if let Err(why) = check_dependency_line(line) {
                    violations.push(format!("{}:{}: {why}", manifest.display(), lineno + 1));
                }
            }
        }
    }
    assert!(
        violations.is_empty(),
        "non-path dependencies found — the workspace must stay hermetic \
         (build and test offline with an empty registry cache):\n{}",
        violations.join("\n")
    );
}

#[test]
fn guard_rejects_registry_specs() {
    // The guard itself must flag the shapes a registry dep can take.
    assert!(check_dependency_line(r#"rand = "0.8""#).is_err());
    assert!(check_dependency_line(r#"serde = { version = "1", features = ["derive"] }"#).is_err());
    assert!(check_dependency_line(r#"x = { git = "https://example.com/x" }"#).is_err());
    assert!(check_dependency_line(r#"dbpal-util = { path = "crates/util" }"#).is_ok());
    assert!(check_dependency_line("dbpal-util.workspace = true").is_ok());
}
