//! Scaled-down runs of every paper experiment, asserting the result
//! *shapes* the paper reports (orderings, not absolute numbers).

use dbpal::benchsuite::eval::evaluate_spider;
use dbpal::benchsuite::{Configuration, GeoTuningExperiment, PatientsExperiment, SpiderExperiment};
use dbpal::core::{accuracy_stats, GenerationConfig};

#[test]
fn table2_shape_dbpal_beats_baseline() {
    let exp = SpiderExperiment::quick();
    let baseline = evaluate_spider(
        &exp.train_model(Configuration::Baseline),
        &exp.bench.test_examples,
    );
    let full = evaluate_spider(
        &exp.train_model(Configuration::DbpalFull),
        &exp.bench.test_examples,
    );
    assert!(
        full.overall.accuracy() > baseline.overall.accuracy(),
        "DBPal (Full) {} must beat baseline {}",
        full.overall,
        baseline.overall
    );
}

#[test]
fn table3_shape_dbpal_beats_baseline_on_patients() {
    let exp = PatientsExperiment::quick();
    let (_, baseline) = exp
        .patients
        .evaluate(&exp.train_model(Configuration::Baseline));
    let (per, full) = exp
        .patients
        .evaluate(&exp.train_model(Configuration::DbpalFull));
    assert!(
        full.accuracy() > baseline.accuracy() + 0.1,
        "DBPal (Full) {} must clearly beat baseline {}",
        full,
        baseline
    );
    // Naive is the easiest category for DBPal (its templates cover it
    // directly) — it must be at least as good as the overall accuracy.
    let naive = per[&dbpal::benchsuite::LinguisticCategory::Naive];
    assert!(
        naive.accuracy() >= full.accuracy() - 1e-9,
        "naive {} below overall {}",
        naive,
        full
    );
}

#[test]
fn table4_shape_dbpal_bucket_requires_dbpal_data() {
    let exp = SpiderExperiment::quick();
    let results = exp.run_table4();
    let baseline = &results[&Configuration::Baseline];
    // Patterns only DBPal covers are unanswerable without DBPal data.
    if let Some(outcome) = baseline.get(&dbpal::benchsuite::CoverageBucket::DbpalOnly) {
        assert_eq!(
            outcome.correct, 0,
            "baseline cannot know DBPal-only patterns"
        );
    }
}

#[test]
fn fig3_shape_more_templates_help() {
    let exp = PatientsExperiment::quick();
    let results = exp.run_fig3(&[0.0, 1.0]);
    let zero = results[0].1;
    let full = results[1].1;
    assert!(
        full > zero + 0.05,
        "full templates {full:.3} must clearly beat none {zero:.3}"
    );
}

#[test]
fn fig4_shape_parameters_matter() {
    // A small random search must show real spread across configurations
    // (the paper's Figure 4 point: ϕ materially affects accuracy).
    let exp = GeoTuningExperiment::new();
    let results = exp.run(4, 9);
    let (min, max, mean, _std) = accuracy_stats(&results);
    assert!(max > 0.0, "all trials scored zero");
    assert!(mean > 0.0 && mean <= 1.0);
    assert!(max >= min);
}

#[test]
fn generate_function_signature_matches_paper() {
    // Acc = Generate(D, T, phi): one trial end to end.
    let exp = GeoTuningExperiment::new();
    let acc = exp.generate(&GenerationConfig::small());
    assert!((0.0..=1.0).contains(&acc));
}
