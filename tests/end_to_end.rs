//! End-to-end integration tests spanning every crate: schema → pipeline →
//! model → runtime → engine, exercising the lifecycle of paper Figure 1.

use dbpal::core::{GenerationConfig, TrainOptions};
use dbpal::engine::Database;
use dbpal::model::{RetrievalModel, SketchModel};
use dbpal::runtime::Nlidb;
use dbpal::schema::{Schema, SchemaBuilder, SemanticDomain, SqlType, Value};

fn hospital_schema() -> Schema {
    SchemaBuilder::new("hospital")
        .table("patients", |t| {
            t.synonym("people")
                .column("name", SqlType::Text)
                .column_with("age", SqlType::Integer, |c| c.domain(SemanticDomain::Age))
                .column_with("disease", SqlType::Text, |c| c.synonym("illness"))
                .column("doctor_id", SqlType::Integer)
        })
        .table("doctors", |t| {
            t.column("id", SqlType::Integer)
                .column("dname", SqlType::Text)
                .primary_key("id")
        })
        .foreign_key("patients", "doctor_id", "doctors", "id")
        .build()
        .unwrap()
}

fn hospital_db() -> Database {
    let mut db = Database::new(hospital_schema());
    for (n, a, d, doc) in [
        ("Ann", 80, "influenza", 1),
        ("Bob", 35, "asthma", 1),
        ("Cat", 64, "influenza", 2),
        ("Dan", 80, "diabetes", 2),
        ("Eve", 12, "asthma", 1),
    ] {
        db.insert(
            "patients",
            vec![n.into(), Value::Int(a), d.into(), Value::Int(doc)],
        )
        .unwrap();
    }
    for (id, n) in [(1, "House"), (2, "Grey")] {
        db.insert("doctors", vec![Value::Int(id), n.into()])
            .unwrap();
    }
    db
}

fn bootstrapped_nlidb() -> Nlidb<SketchModel> {
    let db = hospital_db();
    let model = SketchModel::new(vec![db.schema().clone()]);
    let mut nlidb = Nlidb::new(db, model);
    nlidb.bootstrap(
        GenerationConfig {
            size_slot_fills: 15,
            ..GenerationConfig::default()
        },
        &TrainOptions {
            epochs: 6,
            seed: 5,
            max_pairs: None,
            verbose: false,
        },
    );
    nlidb
}

#[test]
fn paper_figure1_lifecycle() {
    // "Show me the name of all patients with age 80": anonymize,
    // translate, post-process, execute, return a table.
    let nlidb = bootstrapped_nlidb();
    let resp = nlidb
        .answer("Show me the name of all patients with age 80")
        .expect("answerable");
    assert_eq!(
        resp.anonymized_nl,
        "Show me the name of all patients with age @AGE"
    );
    let names: Vec<String> = resp
        .result
        .rows()
        .iter()
        .map(|r| r[0].to_string())
        .collect();
    assert_eq!(resp.result.row_count(), 2, "sql was {}", resp.final_sql);
    assert!(names.contains(&"Ann".to_string()));
    assert!(names.contains(&"Dan".to_string()));
}

#[test]
fn string_constants_and_counts() {
    let nlidb = bootstrapped_nlidb();
    let resp = nlidb
        .answer("How many patients have influenza?")
        .expect("answerable");
    assert_eq!(
        resp.result.rows()[0][0],
        Value::Int(2),
        "sql: {}",
        resp.final_sql
    );
}

#[test]
fn aggregates_over_schema_vocabulary() {
    let nlidb = bootstrapped_nlidb();
    let resp = nlidb
        .answer("What is the average age of patients?")
        .expect("answerable");
    assert_eq!(
        resp.result.rows()[0][0],
        Value::Float((80 + 35 + 64 + 80 + 12) as f64 / 5.0),
        "sql: {}",
        resp.final_sql
    );
}

#[test]
fn synonym_questions_answered() {
    // "illness" is a schema annotation; it reaches the model through the
    // generated training data.
    let nlidb = bootstrapped_nlidb();
    let resp = nlidb
        .answer("How many patients have asthma?")
        .expect("answerable");
    assert_eq!(
        resp.result.rows()[0][0],
        Value::Int(2),
        "sql: {}",
        resp.final_sql
    );
}

#[test]
fn data_updates_need_no_retraining() {
    // Placeholders decouple the model from database content (§3.1).
    // A brand-new disease value appears...
    let mut db2 = hospital_db();
    db2.insert(
        "patients",
        vec![
            "Finn".into(),
            Value::Int(50),
            "malaria".into(),
            Value::Int(1),
        ],
    )
    .unwrap();
    // Rebuild the NLIDB around the updated data; the value-index refresh
    // makes the new constant anonymizable without retraining the model.
    let mut nlidb = Nlidb::new(db2, SketchModel::new(vec![hospital_schema()]));
    nlidb.bootstrap(GenerationConfig::small(), &TrainOptions::fast());
    nlidb.refresh_index();
    let resp = nlidb
        .answer("How many patients have malaria?")
        .expect("answerable");
    assert_eq!(
        resp.result.rows()[0][0],
        Value::Int(1),
        "sql: {}",
        resp.final_sql
    );
}

#[test]
fn pluggable_model_swap() {
    // The same pipeline trains a completely different model family.
    let db = hospital_db();
    let mut nlidb = Nlidb::new(db, RetrievalModel::new());
    nlidb.bootstrap(GenerationConfig::small(), &TrainOptions::default());
    // Retrieval can at least answer a question phrased like its training
    // data.
    let resp = nlidb.answer("show the name of all patients");
    assert!(resp.is_ok(), "retrieval model failed: {:?}", resp.err());
}

#[test]
fn unanswerable_is_an_error_not_a_panic() {
    let nlidb = bootstrapped_nlidb();
    // Gibberish may translate to *something* (the model is forgiving) but
    // must never panic; if it fails it fails with TranslationFailed.
    let _ = nlidb.answer("colorless green ideas sleep furiously");
}

#[test]
fn lemmatized_variants_answered_identically() {
    let nlidb = bootstrapped_nlidb();
    let a = nlidb.answer("Show the names of all patients with age 80");
    let b = nlidb.answer("Showing the name of all patients with age 80");
    if let (Ok(a), Ok(b)) = (a, b) {
        assert!(a.result.rows_equal_unordered(&b.result));
    }
}
