//! End-to-end determinism: DBPal's pipeline is a pure function of
//! `GenerationConfig` (paper §3 — seeded template instantiation), and
//! the JSON exporter is byte-stable, so a seed fully identifies a
//! training corpus.

use dbpal::core::{corpus_to_json, GenerationConfig, TrainingPipeline};
use dbpal::schema::{Schema, SchemaBuilder, SemanticDomain, SqlType};

fn schema() -> Schema {
    SchemaBuilder::new("hospital")
        .table("patients", |t| {
            t.synonym("people")
                .column("name", SqlType::Text)
                .column_with("age", SqlType::Integer, |c| c.domain(SemanticDomain::Age))
                .column("disease", SqlType::Text)
                .column("doctor_id", SqlType::Integer)
        })
        .table("doctors", |t| {
            t.column("id", SqlType::Integer)
                .column("name", SqlType::Text)
                .primary_key("id")
        })
        .foreign_key("patients", "doctor_id", "doctors", "id")
        .build()
        .unwrap()
}

fn export(seed: u64) -> String {
    let config = GenerationConfig {
        seed,
        ..GenerationConfig::small()
    };
    let corpus = TrainingPipeline::new(config).generate(&schema());
    corpus_to_json(&corpus).expect("export")
}

#[test]
fn same_seed_yields_byte_identical_exports() {
    let a = export(0xD_E7E_C7);
    let b = export(0xD_E7E_C7);
    assert!(!a.is_empty());
    assert_eq!(a, b, "same seed must reproduce the exact corpus bytes");
}

#[test]
fn different_seeds_yield_different_corpora() {
    let a = export(1);
    let b = export(2);
    assert_ne!(
        a, b,
        "different seeds must vary slot fills / augmentation choices"
    );
}
