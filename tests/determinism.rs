//! End-to-end determinism: DBPal's pipeline is a pure function of
//! `GenerationConfig` (paper §3 — seeded template instantiation), and
//! the JSON exporter is byte-stable, so a seed fully identifies a
//! training corpus.

use dbpal::core::{corpus_to_json, GenerationConfig, TrainingPipeline};
use dbpal::schema::{Schema, SchemaBuilder, SemanticDomain, SqlType};

fn schema() -> Schema {
    SchemaBuilder::new("hospital")
        .table("patients", |t| {
            t.synonym("people")
                .column("name", SqlType::Text)
                .column_with("age", SqlType::Integer, |c| c.domain(SemanticDomain::Age))
                .column("disease", SqlType::Text)
                .column("doctor_id", SqlType::Integer)
        })
        .table("doctors", |t| {
            t.column("id", SqlType::Integer)
                .column("name", SqlType::Text)
                .primary_key("id")
        })
        .foreign_key("patients", "doctor_id", "doctors", "id")
        .build()
        .unwrap()
}

fn geo_schema() -> Schema {
    SchemaBuilder::new("geo")
        .table("cities", |t| {
            t.column("name", SqlType::Text)
                .column_with("population", SqlType::Integer, |c| {
                    c.domain(SemanticDomain::Population)
                })
                .column("state", SqlType::Text)
        })
        .build()
        .unwrap()
}

fn export(seed: u64) -> String {
    let config = GenerationConfig {
        seed,
        ..GenerationConfig::small()
    };
    let corpus = TrainingPipeline::new(config).generate(&schema());
    corpus_to_json(&corpus).expect("export")
}

#[test]
fn same_seed_yields_byte_identical_exports() {
    let a = export(0x00DE_7EC7);
    let b = export(0x00DE_7EC7);
    assert!(!a.is_empty());
    assert_eq!(a, b, "same seed must reproduce the exact corpus bytes");
}

#[test]
fn different_seeds_yield_different_corpora() {
    let a = export(1);
    let b = export(2);
    assert_ne!(
        a, b,
        "different seeds must vary slot fills / augmentation choices"
    );
}

/// The parallel-pipeline contract: `threads` changes wall-clock time
/// only, never output bytes. Every stage re-keys its randomness per
/// work unit and merges shards in input order, so 1, 2, and 8 workers
/// must export the identical corpus.
#[test]
fn thread_count_never_changes_exported_bytes() {
    let export_with = |threads: usize| {
        let config = GenerationConfig {
            seed: 0x00DE_7EC7,
            threads,
            ..GenerationConfig::small()
        };
        let corpus = TrainingPipeline::new(config).generate(&schema());
        corpus_to_json(&corpus).expect("export")
    };
    let one = export_with(1);
    let two = export_with(2);
    let eight = export_with(8);
    assert!(!one.is_empty());
    assert_eq!(one, two, "2 threads diverged from the single-thread corpus");
    assert_eq!(
        one, eight,
        "8 threads diverged from the single-thread corpus"
    );
}

/// The same contract for the multi-schema merge path.
#[test]
fn thread_count_never_changes_multi_schema_bytes() {
    let s1 = schema();
    let s2 = geo_schema();
    let export_with = |threads: usize| {
        let config = GenerationConfig {
            seed: 0x00DE_7EC7,
            threads,
            ..GenerationConfig::small()
        };
        let corpus = TrainingPipeline::new(config).generate_multi(&[&s1, &s2]);
        corpus_to_json(&corpus).expect("export")
    };
    let one = export_with(1);
    let two = export_with(2);
    let eight = export_with(8);
    assert_eq!(one, two, "2 threads diverged on the multi-schema merge");
    assert_eq!(one, eight, "8 threads diverged on the multi-schema merge");
}

/// FNV-1a over the exported corpus bytes; tiny, dependency-free, and
/// stable across platforms, which is all a golden pin needs.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// The golden corpus pins: (seed, byte length, FNV-1a digest, pair
/// count) of the exported corpus for two fixed seeds. Shared by the
/// classic one-shot test and the streaming-path test below — both
/// production paths must land on the same artifact.
const GOLDEN: [(u64, usize, u64, usize); 2] = [
    (0x00DE_7EC7, 2_333_908, 0x856d_ab8d_79d6_fa4f, 5256),
    (0x5EED, 2_339_561, 0x8b3e_01e2_6029_232e, 5272),
];

/// Golden-bytes pin: the exported corpus for a fixed seed is not just
/// run-to-run stable, it is *this exact artifact*. Any intentional
/// change to generation, augmentation, lemmatization, dedup, analysis,
/// or the JSON exporter shows up here and forces a conscious re-pin
/// (update the constants after verifying the diff is intended).
#[test]
fn golden_corpus_bytes_for_fixed_seeds() {
    for (seed, len, digest, pairs) in GOLDEN {
        let config = GenerationConfig {
            seed,
            ..GenerationConfig::small()
        };
        let corpus = TrainingPipeline::new(config).generate(&schema());
        let json = corpus_to_json(&corpus).expect("export");
        println!(
            "seed {seed:#x}: len {}, fnv1a 0x{:016x}, pairs {}",
            json.len(),
            fnv1a(json.as_bytes()),
            corpus.len()
        );
        assert_eq!(
            (json.len(), fnv1a(json.as_bytes()), corpus.len()),
            (len, digest, pairs),
            "exported corpus for seed {seed:#x} drifted from its golden pin"
        );
    }
}

/// The worker-pool contract, checked against the golden pin itself:
/// whether fan-outs run on the persistent global pool, a caller-owned
/// pool of any size, or PR-2-era scoped spawns — at any thread count —
/// the exported bytes are the same artifact the goldens pin. Interning
/// is likewise invisible here: `Sym` ids never reach the exporter.
#[test]
fn par_strategy_never_changes_exported_bytes() {
    use dbpal::util::{ParStrategy, WorkerPool};
    use std::sync::Arc;

    let strategies = [
        ParStrategy::GlobalPool,
        ParStrategy::Pool(Arc::new(WorkerPool::new(2))),
        ParStrategy::Pool(Arc::new(WorkerPool::new(8))),
        ParStrategy::Scoped,
    ];
    let golden = {
        let corpus = TrainingPipeline::new(GenerationConfig {
            seed: 0x00DE_7EC7,
            ..GenerationConfig::small()
        })
        .generate(&schema());
        corpus_to_json(&corpus).expect("export")
    };
    assert_eq!(golden.len(), 2_333_908, "baseline drifted; re-pin goldens");
    for strategy in strategies {
        for threads in [1usize, 2, 8] {
            let config = GenerationConfig {
                seed: 0x00DE_7EC7,
                threads,
                par: strategy.clone(),
                ..GenerationConfig::small()
            };
            let corpus = TrainingPipeline::new(config).generate(&schema());
            let json = corpus_to_json(&corpus).expect("export");
            assert_eq!(
                fnv1a(json.as_bytes()),
                fnv1a(golden.as_bytes()),
                "strategy {strategy:?} at {threads} threads diverged from the golden corpus"
            );
        }
    }
}

/// The streaming producer is the same function: a one-round stream
/// into a memory sink must land byte-for-byte on both golden pins.
/// Since `generate` is itself a thin wrapper over this path, the test
/// proves the wrapper adds nothing and the sink drops nothing.
#[test]
fn streaming_one_shot_reproduces_golden_pins() {
    use dbpal::core::{MemorySink, StreamOptions};
    for (seed, len, digest, pairs) in GOLDEN {
        let config = GenerationConfig {
            seed,
            ..GenerationConfig::small()
        };
        let mut sink = MemorySink::new();
        let report = TrainingPipeline::new(config)
            .stream(&[&schema()], &StreamOptions::one_shot(), &mut sink)
            .expect("in-memory streaming cannot fail");
        assert_eq!(report.emitted, pairs, "seed {seed:#x}: emitted count");
        assert_eq!(report.exact_dropped + report.conflicts_resolved, 0);
        let json = corpus_to_json(&sink.into_corpus()).expect("export");
        assert_eq!(
            (json.len(), fnv1a(json.as_bytes())),
            (len, digest),
            "streamed corpus for seed {seed:#x} drifted from its golden pin"
        );
    }
}

/// Thread invariance for the streaming JSONL path: a multi-round run
/// writes the identical byte stream (same running digest) at 1 and 8
/// worker threads.
#[test]
fn streaming_jsonl_digest_is_thread_invariant() {
    use dbpal::core::{JsonlSink, StreamOptions};
    let digest_at = |threads: usize| {
        let config = GenerationConfig {
            seed: 0x00DE_7EC7,
            threads,
            ..GenerationConfig::small()
        };
        let opts = StreamOptions {
            max_rounds: 2,
            ..StreamOptions::corpus(0)
        };
        let mut sink = JsonlSink::new(Vec::new());
        TrainingPipeline::new(config)
            .stream(&[&schema(), &geo_schema()], &opts, &mut sink)
            .expect("in-memory streaming cannot fail");
        assert!(sink.pairs() > 0);
        sink.digest()
    };
    let one = digest_at(1);
    assert_eq!(one, digest_at(8), "8 threads diverged from 1 thread");
}

/// Regression test for per-schema seed derivation. The seed for schema
/// `i` used to be `base + i`, so base seed `s` at schema index 1
/// collided with base seed `s + 1` at schema index 0 — two nominally
/// different runs shared a corpus. Schema seeds now come from
/// `stream_seed(base, i)`, which keeps adjacent (seed, index) pairs
/// distinct.
#[test]
fn adjacent_seed_schema_index_pairs_differ() {
    let s1 = schema();
    let s2 = geo_schema();
    let base = 0x00DE_7EC7u64;

    let multi = TrainingPipeline::new(GenerationConfig {
        seed: base,
        ..GenerationConfig::small()
    })
    .generate_multi(&[&s1, &s2]);
    let geo_portion: Vec<String> = multi
        .pairs()
        .iter()
        .filter(|p| p.sql_text().contains("cities"))
        .map(|p| p.nl.clone())
        .collect();
    assert!(!geo_portion.is_empty());

    let solo = TrainingPipeline::new(GenerationConfig {
        seed: base + 1,
        ..GenerationConfig::small()
    })
    .generate_multi(&[&s2]);
    let solo_portion: Vec<String> = solo.pairs().iter().map(|p| p.nl.clone()).collect();

    assert_ne!(
        geo_portion,
        solo_portion,
        "seed {base} at schema index 1 must not reuse seed {} at index 0",
        base + 1
    );
}
