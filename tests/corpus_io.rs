//! Integration tests for corpus interchange and the manual-data
//! complement (paper §1: manually curated data "can still be used to
//! complement our proposed data generation pipeline").

use dbpal::core::{
    corpus_from_json, corpus_to_json, manual_corpus_from_tsv, GenerationConfig, Provenance,
    TrainOptions, TrainingPipeline, TranslationModel,
};
use dbpal::model::SketchModel;
use dbpal::nlp::Lemmatizer;
use dbpal::schema::{Schema, SchemaBuilder, SemanticDomain, SqlType};

fn schema() -> Schema {
    SchemaBuilder::new("hospital")
        .table("patients", |t| {
            t.column("name", SqlType::Text)
                .column_with("age", SqlType::Integer, |c| c.domain(SemanticDomain::Age))
                .column("disease", SqlType::Text)
        })
        .build()
        .unwrap()
}

#[test]
fn generated_corpus_survives_json_round_trip() {
    let pipeline = TrainingPipeline::new(GenerationConfig::small());
    let corpus = pipeline.generate(&schema());
    let json = corpus_to_json(&corpus).unwrap();
    let back = corpus_from_json(&json).unwrap();
    assert_eq!(back.len(), corpus.len());
    // Full fidelity: every field of every pair survives the trip.
    for (a, b) in corpus.pairs().iter().zip(back.pairs()) {
        assert_eq!(a.nl, b.nl);
        assert_eq!(a.nl_lemmas, b.nl_lemmas);
        assert_eq!(a.sql, b.sql);
        assert_eq!(a.template_id, b.template_id);
        assert_eq!(a.provenance, b.provenance);
    }
    // Training on the re-imported corpus behaves identically.
    let opts = TrainOptions::fast();
    let mut a = SketchModel::new(vec![schema()]);
    a.train(&corpus, &opts);
    let mut b = SketchModel::new(vec![schema()]);
    b.train(&back, &opts);
    let lem = Lemmatizer::new();
    let q = lem.lemmatize_sentence("show the name of all patients with age @AGE");
    assert_eq!(
        a.translate(&q).map(|q| q.to_string()),
        b.translate(&q).map(|q| q.to_string())
    );
}

#[test]
fn manual_data_complements_the_pipeline() {
    // A question style the templates never produce...
    let exotic_nl = "yo dbpal gimme the patient count pronto";
    let tsv = format!("{exotic_nl}\tSELECT COUNT(*) FROM patients\n");
    let manual = manual_corpus_from_tsv(&tsv).unwrap();
    assert_eq!(manual.pairs()[0].provenance, Provenance::Manual);

    let pipeline = TrainingPipeline::new(GenerationConfig::small());
    let mut corpus = pipeline.generate(&schema());
    corpus.extend(manual);

    let mut model = SketchModel::new(vec![schema()]);
    model.train(
        &corpus,
        &TrainOptions {
            epochs: 6,
            seed: 3,
            max_pairs: None,
            verbose: false,
        },
    );
    let lem = Lemmatizer::new();
    let pred = model
        .translate(&lem.lemmatize_sentence(exotic_nl))
        .expect("manual pair learned");
    assert!(pred.to_string().contains("COUNT"), "got {pred}");
}
