//! # DBPal — a fully pluggable NL2SQL training pipeline
//!
//! This crate is the facade over the DBPal workspace, a from-scratch Rust
//! reproduction of *DBPal: A Fully Pluggable NL2SQL Training Pipeline*
//! (Weir et al., SIGMOD 2020).
//!
//! DBPal synthesizes NL→SQL training data from a database schema alone,
//! using weak supervision: seed templates are instantiated against the
//! schema, augmented for linguistic robustness (paraphrasing, word
//! dropout, domain-specific comparatives), and lemmatized. Any
//! [`core::TranslationModel`] implementation can then be trained on the
//! output.
//!
//! ## Layout
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`schema`] | `dbpal-schema` | catalog, annotations, join graph |
//! | [`sql`] | `dbpal-sql` | SQL AST, parser, printer, equivalence |
//! | [`analyze`] | `dbpal-analyze` | schema-aware static semantic analyzer |
//! | [`engine`] | `dbpal-engine` | in-memory relational executor |
//! | [`fuzz`] | `dbpal-fuzz` | deterministic fuzzing & differential oracles |
//! | [`nlp`] | `dbpal-nlp` | tokenizer, lemmatizer, paraphrase store |
//! | [`core`] | `dbpal-core` | templates, generator, augmentation, optimizer |
//! | [`model`] | `dbpal-model` | pluggable translation models |
//! | [`runtime`] | `dbpal-runtime` | NLIDB runtime (pre/post-processing) |
//! | [`serve`] | `dbpal-serve` | concurrent serving: cache, admission control, metrics |
//! | [`benchsuite`] | `dbpal-benchsuite` | Spider-like, Patients, GeoQuery benchmarks |
//! | [`util`] | `dbpal-util` | seeded PRNG, JSON, check + bench harnesses |
//!
//! The workspace is hermetic: every dependency is an in-repo `path`
//! crate, so `cargo build --release --offline && cargo test -q --offline`
//! works with an empty registry cache (see README, "Hermetic build &
//! determinism").
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` for the end-to-end flow: define a schema,
//! generate a training corpus, train a model, and answer NL questions.

pub use dbpal_analyze as analyze;
pub use dbpal_benchsuite as benchsuite;
pub use dbpal_core as core;
pub use dbpal_engine as engine;
pub use dbpal_fuzz as fuzz;
pub use dbpal_model as model;
pub use dbpal_nlp as nlp;
pub use dbpal_runtime as runtime;
pub use dbpal_schema as schema;
pub use dbpal_serve as serve;
pub use dbpal_sql as sql;
pub use dbpal_util as util;

/// The crate version of this DBPal build.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
