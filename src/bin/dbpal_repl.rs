//! Interactive DBPal REPL: the paper's Figure 1 frontend in a terminal.
//!
//! Boots a demo hospital database, generates synthetic training data from
//! its schema, trains the sketch model, and then answers natural-language
//! questions from stdin.
//!
//! ```text
//! cargo run --release --bin dbpal_repl
//! dbpal> Show me the name of all patients with age 80
//! dbpal> :sql SELECT COUNT(*) FROM patients
//! dbpal> :help
//! ```

use dbpal::core::{GenerationConfig, TrainOptions};
use dbpal::engine::Database;
use dbpal::model::SketchModel;
use dbpal::runtime::Nlidb;
use dbpal::schema::{SchemaBuilder, SemanticDomain, SqlType, Value};
use std::io::{BufRead, Write};

fn demo_database() -> Database {
    let schema = SchemaBuilder::new("hospital")
        .table("patients", |t| {
            t.synonym("people")
                .column("name", SqlType::Text)
                .column_with("age", SqlType::Integer, |c| c.domain(SemanticDomain::Age))
                .column_with("disease", SqlType::Text, |c| c.synonym("illness"))
                .column_with("length_of_stay", SqlType::Integer, |c| {
                    c.domain(SemanticDomain::Duration)
                        .readable("length of stay")
                        .synonym("stay")
                })
                .column("doctor_id", SqlType::Integer)
        })
        .table("doctors", |t| {
            t.synonym("physicians")
                .column("id", SqlType::Integer)
                .column("name", SqlType::Text)
                .column("specialty", SqlType::Text)
                .primary_key("id")
        })
        .foreign_key("patients", "doctor_id", "doctors", "id")
        .build()
        .expect("demo schema is valid");

    let mut db = Database::new(schema);
    let patients: &[(&str, i64, &str, i64, i64)] = &[
        ("Ann", 80, "influenza", 12, 1),
        ("Bob", 35, "asthma", 3, 1),
        ("Cat", 64, "influenza", 7, 2),
        ("Dan", 80, "diabetes", 9, 2),
        ("Eve", 12, "asthma", 2, 1),
        ("Finn", 47, "migraine", 1, 3),
        ("Grace", 71, "diabetes", 15, 3),
        ("Hugo", 29, "influenza", 4, 2),
    ];
    for (n, a, d, s, doc) in patients {
        db.insert(
            "patients",
            vec![
                (*n).into(),
                Value::Int(*a),
                (*d).into(),
                Value::Int(*s),
                Value::Int(*doc),
            ],
        )
        .expect("row fits");
    }
    for (id, n, spec) in [
        (1, "House", "diagnostics"),
        (2, "Grey", "surgery"),
        (3, "Wilson", "oncology"),
    ] {
        db.insert("doctors", vec![Value::Int(id), n.into(), spec.into()])
            .expect("row fits");
    }
    db
}

fn print_help() {
    println!("Ask a question in plain English, or use a command:");
    println!("  :sql <query>      run raw SQL against the database");
    println!("  :explain <query>  show the execution plan for raw SQL");
    println!("  :schema           show the schema");
    println!("  :export <path>    write the synthetic training corpus as JSON");
    println!("  :help             this message");
    println!("  :quit             exit");
}

fn main() {
    println!("DBPal demo — hospital database");
    println!("bootstrapping (synthesizing training data + training the model)...");
    let db = demo_database();
    let schema = db.schema().clone();
    // Keep the generated corpus around for `:export`.
    let pipeline = dbpal::core::TrainingPipeline::new(GenerationConfig::default());
    let corpus = pipeline.generate(&schema);
    let mut model = SketchModel::new(vec![schema]);
    dbpal::core::TranslationModel::train(&mut model, &corpus, &TrainOptions::default());
    let nlidb = Nlidb::new(db, model);
    println!(
        "ready ({} training pairs generated). Type :help for commands.\n",
        corpus.len()
    );

    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    loop {
        print!("dbpal> ");
        stdout.flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == ":quit" || line == ":q" || line == "exit" {
            break;
        }
        if line == ":help" {
            print_help();
            continue;
        }
        if line == ":schema" {
            for table in nlidb.database().schema().tables() {
                let cols: Vec<String> = table
                    .columns()
                    .iter()
                    .map(|c| format!("{} {}", c.name(), c.sql_type()))
                    .collect();
                println!("  {}({})", table.name(), cols.join(", "));
            }
            continue;
        }
        if let Some(sql) = line.strip_prefix(":explain ") {
            match dbpal::sql::parse_query(sql) {
                Ok(q) => match nlidb.database().explain(&q) {
                    Ok(plan) => print!("{plan}"),
                    Err(e) => println!("explain error: {e}"),
                },
                Err(e) => println!("parse error: {e}"),
            }
            continue;
        }
        if let Some(path) = line.strip_prefix(":export ") {
            match dbpal::core::corpus_to_json(&corpus) {
                Ok(json) => match std::fs::write(path.trim(), json) {
                    Ok(()) => println!("wrote {} pairs to {}", corpus.len(), path.trim()),
                    Err(e) => println!("write error: {e}"),
                },
                Err(e) => println!("serialization error: {e}"),
            }
            continue;
        }
        if let Some(sql) = line.strip_prefix(":sql ") {
            match dbpal::sql::parse_query(sql) {
                Ok(q) => match nlidb.database().execute(&q) {
                    Ok(result) => print!("{result}"),
                    Err(e) => println!("execution error: {e}"),
                },
                Err(e) => println!("parse error: {e}"),
            }
            continue;
        }
        match nlidb.answer(line) {
            Ok(resp) => {
                println!("SQL: {}", resp.final_sql);
                print!("{}", resp.result);
            }
            Err(e) => println!("sorry, {e}"),
        }
    }
    println!("bye");
}
