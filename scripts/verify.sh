#!/usr/bin/env sh
# Tier-1 verification: the workspace must build and test fully offline.
# The --offline flags double as a hermeticity check — any registry
# dependency that sneaks back in fails resolution immediately (see also
# tests/hermetic.rs, which reports the offending manifest line).
set -eu
cd "$(dirname "$0")/.."

# Per-gate wall-time accounting: every stage below reports how long it
# took, so a CI slowdown points at its stage instead of the whole run.
GATE_T0=$(date +%s)
gate_time() {
    GATE_NOW=$(date +%s)
    echo "[verify] $1: $((GATE_NOW - GATE_T0))s"
    GATE_T0=$GATE_NOW
}

# Fast CI profile: cap property-test cases per property unless the
# caller pins their own value. A plain `cargo test` (outside this
# script) keeps the full default of 64 cases; the coverage smoke test
# in crates/core/tests/proptest_pipeline.rs guards that this reduced
# profile still exercises every query class.
DBPAL_CHECK_CASES="${DBPAL_CHECK_CASES:-16}"
export DBPAL_CHECK_CASES

# Static hygiene first: a determinism hazard invalidates everything the
# test run would tell us about reproducibility. lint_gate (dbpal-lint)
# lexes every workspace source, applies the L### rule catalog under the
# justified allowlist (scripts/lint_allowlist.txt), checks for stale
# entries, and writes BENCH_lint.json for the report lint at the end.
DBPAL_BENCH_JSON="$PWD/BENCH_lint.json" \
  cargo run --release --offline -p dbpal-bench --bin lint_gate
cargo fmt --check
gate_time "lint_gate + fmt"

cargo build --release --offline --workspace
gate_time "build"
cargo test -q --offline --workspace
gate_time "test"

# Fast-profile generation under the default Reject analyzer policy:
# every generated pair must analyze clean (zero rejects, zero E-codes).
cargo run --release --offline -p dbpal-bench --bin analyze_gate -- --quick
gate_time "analyze_gate"

# Seeded fixed-budget fuzz over the three differential oracles
# (roundtrip, canonicalizer soundness, analyzer coherence). Runs the
# same budget at 1 and 8 worker threads and requires byte-identical
# reports; any finding prints its minimized corpus case and fails.
DBPAL_FUZZ_ITERS="${DBPAL_FUZZ_ITERS:-200}"
export DBPAL_FUZZ_ITERS
cargo run --release --offline -p dbpal-bench --bin fuzz_smoke
gate_time "fuzz_smoke"

# Serving-layer gate: seeded mixed workload through dbpal-serve must hit
# the cache above the seeded floor, shed nothing at the default queue
# depth, export byte-identical deterministic metrics at 1 and 8 workers
# (for the single-tenant workload and the interleaved three-tenant one),
# and shed exactly the over-limit tail (typed errors) under saturation.
cargo run --release --offline -p dbpal-bench --bin serve_gate -- --quick
gate_time "serve_gate"

# Multi-tenant gate: the seeded three-tenant workload must export
# deterministic per-tenant counters at any worker count, quota sheds
# must be exact (typed TenantOverloaded, neighbors untouched), and a
# database hot-swap must invalidate only the swapped tenant's cache
# shard. Writes BENCH_tenant.json with the `tenants` section the lint
# below requires.
DBPAL_BENCH_JSON="$PWD/BENCH_tenant.json" \
  cargo run --release --offline -p dbpal-bench --bin tenant_gate -- --quick
gate_time "tenant_gate"

# Machine-readable perf trajectory: regenerate the bench reports in
# quick mode and lint them against the schema in DESIGN.md with the
# in-repo JSON parser. (cargo bench runs binaries with the package dir
# as cwd, so the output paths are pinned via DBPAL_BENCH_JSON.)
# The committed baselines are snapshotted first so the compare gate
# below can diff fresh-vs-committed after regeneration overwrites them.
BASELINE_DIR="$(mktemp -d)"
trap 'rm -rf "$BASELINE_DIR"' EXIT
cp BENCH_pipeline.json BENCH_serve.json BENCH_corpus.json "$BASELINE_DIR/"
DBPAL_BENCH_JSON="$PWD/BENCH_pipeline.json" \
  cargo bench --offline -q -p dbpal-bench --bench pipeline -- --quick
DBPAL_BENCH_JSON="$PWD/BENCH_serve.json" \
  cargo bench --offline -q -p dbpal-bench --bench serve -- --quick
DBPAL_BENCH_JSON="$PWD/BENCH_corpus.json" \
  cargo bench --offline -q -p dbpal-bench --bench corpus -- --quick
gate_time "bench regen"

# Network load gate: closed-loop clients against a live dbpal-server
# socket, twice. Requires zero protocol errors / mismatches / sheds, a
# byte-identical deterministic payload across the two runs, and the QPS
# floor (DBPAL_LOAD_QPS_FLOOR, default 200). Merges the `load` section
# into BENCH_serve.json, which the lint below then requires and checks.
# DBPAL_LOAD_CLIENTS / _WARMUP / _REQUESTS / _BATCH / _SEED tune the
# reduced --quick profile.
DBPAL_BENCH_JSON="$PWD/BENCH_serve.json" \
  cargo run --release --offline -p dbpal-bench --bin load_gate -- --quick
gate_time "load_gate"

# Streaming-corpus gate: bounded-memory multi-round generation into a
# JSONL sink. Asserts the pair target (10k quick; DBPAL_CORPUS_PAIRS
# overrides, 100k default for full runs), zero analyzer rejects, the
# DBPAL_CORPUS_MEM_MB ceiling against the kernel's VmRSS, byte-identical
# JSONL digests at 1 vs 8 threads and across chunk sizes, a JSONL
# round-trip, and deterministic provenance-weighted splits. Merges the
# `corpus` section into BENCH_corpus.json, which the lint below
# requires for the corpus group.
DBPAL_BENCH_JSON="$PWD/BENCH_corpus.json" \
  cargo run --release --offline -p dbpal-bench --bin corpus_gate -- --quick
gate_time "corpus_gate"

cargo run --release --offline -p dbpal-bench --bin bench_json_lint -- \
  BENCH_pipeline.json BENCH_serve.json BENCH_tenant.json BENCH_lint.json \
  BENCH_corpus.json

# Perf regression gate: the fresh medians must sit within their group's
# tolerance band (default x3; wider x4 for the whole-run corpus group;
# DBPAL_BENCH_TOLERANCE / DBPAL_BENCH_TOLERANCE_<GROUP> override, both
# directions) of the committed baselines, and the thread-scaling pairs
# must satisfy threads4 <= threads1 x DBPAL_BENCH_PARITY (default
# x1.05) — the persistent worker pool keeps fan-out from costing
# wall-clock.
cargo run --release --offline -p dbpal-bench --bin bench_json_lint -- --compare \
  "$BASELINE_DIR/BENCH_pipeline.json" BENCH_pipeline.json \
  "$BASELINE_DIR/BENCH_serve.json" BENCH_serve.json \
  "$BASELINE_DIR/BENCH_corpus.json" BENCH_corpus.json
gate_time "bench lint + compare"
