#!/usr/bin/env sh
# Tier-1 verification: the workspace must build and test fully offline.
# The --offline flags double as a hermeticity check — any registry
# dependency that sneaks back in fails resolution immediately (see also
# tests/hermetic.rs, which reports the offending manifest line).
set -eu
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace
