#!/usr/bin/env sh
# Determinism lint: the corpus contract ("byte-identical per seed at any
# thread count") dies by a thousand innocent-looking cuts. This script
# greps workspace sources for the three hazard classes that have bitten
# similar pipelines, and fails the build on any hit not recorded in
# scripts/determinism_allowlist.txt.
#
#   TIME      wall-clock reads (SystemTime / Instant). Allowed only in
#             the bench harness and the pipeline's stage-timing report,
#             which never feed generated data.
#   SPAWN     raw thread creation (thread::spawn / thread::scope).
#             All fan-out must go through dbpal_util::par, whose
#             order-preserving merge is what keeps output stable.
#   HASHITER  HashMap/HashSet in a file that also serializes (Json::Obj,
#             to_json, to_tsv): iteration order would leak into output.
#             Use BTreeMap/BTreeSet in serializing modules.
#
# Allowlist format: one `CLASS<space>path` per line, `#` comments.
# Usage: scripts/lint_determinism.sh  (exit 0 clean, 1 on violations)
set -eu
cd "$(dirname "$0")/.."

ALLOWLIST=scripts/determinism_allowlist.txt
fail=0

allowed() {
    # allowed CLASS path — is this hit allowlisted?
    grep -q "^$1 $2\$" "$ALLOWLIST" 2>/dev/null
}

report() {
    echo "determinism lint: [$1] $2" >&2
    echo "  $3" >&2
    fail=1
}

# Sources under the contract: every crate plus the facade. Benches are
# timing code by definition and stay out of scope.
SRC_FILES=$(find crates/*/src src -name '*.rs' -type f | sort)

for f in $SRC_FILES; do
    # TIME — \b keeps `Instantiate`/`Instantiation` from matching.
    if grep -nE '\bSystemTime\b|\bInstant\b' "$f" >/dev/null; then
        if ! allowed TIME "$f"; then
            hit=$(grep -nE '\bSystemTime\b|\bInstant\b' "$f" | head -1)
            report TIME "$f" "$hit"
        fi
    fi

    # SPAWN
    if grep -nE 'thread::spawn|thread::scope' "$f" >/dev/null; then
        if ! allowed SPAWN "$f"; then
            hit=$(grep -nE 'thread::spawn|thread::scope' "$f" | head -1)
            report SPAWN "$f" "$hit"
        fi
    fi

    # HASHITER — hash collections co-resident with serialization.
    if grep -nE 'HashMap<|HashSet<' "$f" >/dev/null \
        && grep -nE 'Json::Obj|to_json|to_tsv' "$f" >/dev/null; then
        if ! allowed HASHITER "$f"; then
            hit=$(grep -nE 'HashMap<|HashSet<' "$f" | head -1)
            report HASHITER "$f" "$hit"
        fi
    fi
done

# Stale allowlist entries rot into blind spots: every entry must still
# match a real hit, or it has to be deleted.
grep -v '^#' "$ALLOWLIST" | grep -v '^[[:space:]]*$' | while read -r class path; do
    case "$class" in
        TIME)     pat='\bSystemTime\b|\bInstant\b' ;;
        SPAWN)    pat='thread::spawn|thread::scope' ;;
        HASHITER) pat='HashMap<|HashSet<' ;;
        *) echo "determinism lint: unknown allowlist class '$class'" >&2; exit 1 ;;
    esac
    if [ ! -f "$path" ] || ! grep -qE "$pat" "$path"; then
        echo "determinism lint: stale allowlist entry '$class $path'" >&2
        exit 1
    fi
done || fail=1

if [ "$fail" -ne 0 ]; then
    echo "determinism lint: FAILED (add justified entries to $ALLOWLIST)" >&2
    exit 1
fi
echo "determinism lint: clean"
